#!/usr/bin/env python
"""Quickstart: run one SD-VBS application with kernel profiling.

Computes a dense disparity map on a synthetic stereo pair, checks it
against the ground truth the generator embedded, and prints the same
per-kernel breakdown the paper's Figure 3 reports.

Run:  python examples/quickstart.py
"""

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import stereo_pair
from repro.disparity import dense_disparity, disparity_error


def main() -> None:
    # A rectified stereo pair at the suite's QCIF size (176x144), with
    # known per-band disparity.
    pair = stereo_pair(InputSize.QCIF, variant=0)
    print(f"stereo pair: {pair.left.shape[1]}x{pair.left.shape[0]} pixels, "
          f"true disparities up to {pair.true_disparity.max()} px")

    profiler = KernelProfiler()
    with profiler.run():
        result = dense_disparity(
            pair.left, pair.right, max_disparity=16, window=9,
            profiler=profiler,
        )

    error = disparity_error(result, pair.true_disparity)
    print(f"mean absolute disparity error: {error:.3f} px")
    print(f"total wall time: {profiler.total_seconds * 1000:.1f} ms\n")

    print("kernel occupancy (the paper's Figure 3 decomposition):")
    total = profiler.total_seconds
    for kernel, seconds in sorted(
        profiler.kernel_seconds.items(), key=lambda kv: -kv[1]
    ):
        share = 100.0 * seconds / total
        print(f"  {kernel:<14} {seconds * 1000:7.2f} ms  {share:5.1f}%  "
              + "#" * int(share / 2))
    residual = total - sum(profiler.kernel_seconds.values())
    print(f"  {'NonKernelWork':<14} {residual * 1000:7.2f} ms  "
          f"{100.0 * residual / total:5.1f}%")


if __name__ == "__main__":
    main()
