#!/usr/bin/env python
"""Image-stitch walkthrough: corners -> matches -> RANSAC -> panorama.

Generates two overlapping views of one synthetic scene, runs the full
registration pipeline, compares the recovered transform against the known
camera offset, and renders the blended panorama as ASCII art.

Run:  python examples/panorama_stitch.py
"""

import numpy as np

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import overlapping_pair
from repro.stitch import registration_error, stitch_pair

ASCII_RAMP = " .:-=+*#%@"


def ascii_render(image: np.ndarray, width: int = 72) -> str:
    """Downsample an image to terminal-sized ASCII art."""
    rows, cols = image.shape
    out_cols = min(width, cols)
    out_rows = max(1, rows * out_cols // (2 * cols))  # chars are ~2x tall
    rr = (np.arange(out_rows) * rows // out_rows).clip(0, rows - 1)
    cc = (np.arange(out_cols) * cols // out_cols).clip(0, cols - 1)
    small = image[np.ix_(rr, cc)]
    lo, hi = small.min(), small.max()
    normalized = (small - lo) / (hi - lo) if hi > lo else small * 0
    indices = (normalized * (len(ASCII_RAMP) - 1)).astype(int)
    return "\n".join("".join(ASCII_RAMP[i] for i in row) for row in indices)


def main() -> None:
    pair = overlapping_pair(InputSize.QCIF, variant=1)
    dy, dx = pair.true_offset
    print(f"two {pair.first.shape[1]}x{pair.first.shape[0]} views; the "
          f"second camera is offset by ({dy}, {dx}) pixels\n")

    profiler = KernelProfiler()
    with profiler.run():
        result = stitch_pair(pair.first, pair.second, seed=1,
                             profiler=profiler)

    print(f"corners detected:  {result.n_corners[0]} / {result.n_corners[1]}")
    print(f"ratio-test matches: {result.n_matches}")
    if result.ransac:
        print(f"RANSAC inliers:     {result.ransac.n_inliers} "
              f"(of {result.n_matches} matches)")
    print(f"estimated translation: "
          f"({result.model.translation[0]:+.2f}, "
          f"{result.model.translation[1]:+.2f})  "
          f"[truth: ({-dy}, {-dx})]")
    print(f"registration error: "
          f"{registration_error(result.model, pair.true_offset):.3f} px")
    if result.homography is not None:
        print("DLT homography (should be near-affine):")
        with np.printoptions(precision=4, suppress=True):
            print(result.homography)
    print(f"\npanorama canvas: {result.panorama.image.shape[1]}x"
          f"{result.panorama.image.shape[0]}, "
          f"{result.panorama.coverage * 100:.0f}% covered")
    print(f"pipeline time: {profiler.total_seconds * 1000:.0f} ms "
          f"({', '.join(f'{k} {v * 1000:.0f}ms' for k, v in profiler.kernel_seconds.items())})")
    print("\nblended panorama:")
    print(ascii_render(result.panorama.image))


if __name__ == "__main__":
    main()
