#!/usr/bin/env python
"""Regenerate the paper's tables and figures in one run.

Runs every application at every input size (one variant, for speed),
then prints Tables I-IV and Figures 2-3 exactly as the benchmark harness
writes them to ``benchmarks/results/``.  This is the full characterization
pass of the paper, end to end.

Run:  python examples/suite_report.py            # whole suite (~1 min)
      python examples/suite_report.py disparity  # selected benchmarks
"""

import sys
import time

from repro import (
    render_figure2,
    render_figure3,
    render_suite_summary,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    run_suite,
)


def main() -> None:
    slugs = sys.argv[1:] or None
    print(render_table1())
    print()
    print(render_table2())
    print()
    print(render_table3())
    print()
    print(render_table4())
    print()

    label = ", ".join(slugs) if slugs else "all nine applications"
    print(f"profiling {label} across SQCIF/QCIF/CIF ...\n")
    started = time.time()
    result = run_suite(slugs, variants=[0])
    print(render_suite_summary(result))
    print()
    print(render_figure2(result, slugs))
    print()
    print(render_figure3(result))
    print(f"\nsuite characterization took {time.time() - started:.1f}s")


if __name__ == "__main__":
    main()
