#!/usr/bin/env python
"""Parametric vs. non-parametric texture synthesis, side by side.

Synthesizes the same exemplar two ways — the suite's Portilla-Simoncelli-
style statistic matching and the Efros-Leung non-parametric baseline —
and compares statistic residual and wall time.  The trade the paper's
benchmark embodies: the parametric path is orders of magnitude cheaper
per pixel, at the cost of looser structure.

Run:  python examples/texture_comparison.py
"""

import time

import numpy as np

from repro.core import InputSize
from repro.core.inputs import texture_sample
from repro.texture import analyze, synthesize_efros_leung, \
    synthesize_from_exemplar

ASCII_RAMP = " .:-=+*#%@"


def ascii_block(image: np.ndarray, width: int = 36) -> list:
    rows, cols = image.shape
    out_cols = min(width, cols)
    out_rows = max(1, rows * out_cols // (2 * cols))
    rr = (np.arange(out_rows) * rows // out_rows).clip(0, rows - 1)
    cc = (np.arange(out_cols) * cols // out_cols).clip(0, cols - 1)
    small = image[np.ix_(rr, cc)]
    lo, hi = small.min(), small.max()
    normalized = (small - lo) / (hi - lo) if hi > lo else small * 0
    indices = (normalized * (len(ASCII_RAMP) - 1)).astype(int)
    return ["".join(ASCII_RAMP[i] for i in row) for row in indices]


def main() -> None:
    exemplar = texture_sample(InputSize.SQCIF, 0, "structural")[:28, :28]
    target = analyze(exemplar, n_levels=2)
    print(f"exemplar: {exemplar.shape[1]}x{exemplar.shape[0]} structural "
          "texture\n")

    started = time.time()
    parametric = synthesize_from_exemplar(
        exemplar, out_shape=(36, 36), n_levels=2, iterations=6, seed=0
    )
    parametric_time = time.time() - started
    parametric_stats = analyze(parametric.texture, n_levels=2)

    started = time.time()
    nonparametric = synthesize_efros_leung(exemplar, (36, 36), window=7,
                                           seed=0)
    nonparametric_time = time.time() - started
    nonparametric_stats = analyze(nonparametric.texture, n_levels=2)

    noise_stats = analyze(np.random.default_rng(0).random((36, 36)),
                          n_levels=2)

    print(f"{'method':<24} {'stat residual':>14} {'time':>9}")
    print(f"{'parametric (suite)':<24} "
          f"{target.distance(parametric_stats):>14.3f} "
          f"{parametric_time * 1000:>7.0f}ms")
    print(f"{'Efros-Leung (baseline)':<24} "
          f"{target.distance(nonparametric_stats):>14.3f} "
          f"{nonparametric_time * 1000:>7.0f}ms")
    print(f"{'white noise (control)':<24} "
          f"{target.distance(noise_stats):>14.3f} {'-':>9}")

    blocks = [
        ("exemplar", ascii_block(exemplar)),
        ("parametric", ascii_block(parametric.texture)),
        ("efros-leung", ascii_block(nonparametric.texture)),
    ]
    height = max(len(b) for _n, b in blocks)
    print()
    print("   ".join(f"{name:<36}" for name, _b in blocks))
    for line in range(height):
        print("   ".join(
            (block[line] if line < len(block) else "").ljust(36)
            for _name, block in blocks
        ))


if __name__ == "__main__":
    main()
