#!/usr/bin/env python
"""KLT feature tracking across a translating image sequence.

Extracts "good features to track" from each frame and follows them with
the pyramidal Lucas-Kanade tracker, then compares the recovered motion
against the sequence's known camera pan.

Run:  python examples/feature_tracking.py
"""

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import sequence
from repro.tracking import good_features, median_motion, track_features


def main() -> None:
    seq = sequence(InputSize.QCIF, variant=0, n_frames=5)
    dy, dx = seq.true_motion
    print(f"{len(seq.frames)} frames of {seq.frames[0].shape[1]}x"
          f"{seq.frames[0].shape[0]}; true inter-frame motion "
          f"({dy:+.0f}, {dx:+.0f}) px\n")

    profiler = KernelProfiler()
    with profiler.run():
        for index in range(len(seq.frames) - 1):
            prev_frame = seq.frames[index]
            next_frame = seq.frames[index + 1]
            features = good_features(prev_frame, max_features=48,
                                     profiler=profiler)
            tracks = track_features(prev_frame, next_frame, features,
                                    profiler=profiler)
            converged = [t for t in tracks if t.converged]
            est_dy, est_dx = median_motion(converged)
            residual = sum(t.residual for t in converged) / len(converged)
            print(f"frame {index}->{index + 1}: {len(features)} features, "
                  f"{len(converged)} tracked, motion "
                  f"({est_dy:+.2f}, {est_dx:+.2f}), "
                  f"mean residual {residual:.4f}")

    print(f"\ntotal time: {profiler.total_seconds * 1000:.0f} ms")
    print("kernel breakdown:")
    for kernel, seconds in sorted(profiler.kernel_seconds.items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {kernel:<16} {seconds * 1000:7.1f} ms")


if __name__ == "__main__":
    main()
