#!/usr/bin/env python
"""Monte Carlo localization demo with a live ASCII map.

A robot drives a noisy trajectory through a walled grid world.  The
particle filter starts with no idea where it is (uniform particles over
free space) and converges as range scans arrive.  The map is printed at a
few checkpoints: ``#`` walls, ``.`` particles, ``R`` the true robot,
``E`` the filter's estimate.

Run:  python examples/robot_localization.py
"""

import math

import numpy as np

from repro.core import InputSize
from repro.core.inputs import robot_world
from repro.localization import MonteCarloLocalizer, default_particle_count


def render(world, localizer, true_pose, estimate) -> str:
    grid = world.grid
    rows, cols = grid.shape
    canvas = [[("#" if grid[r, c] else " ") for c in range(cols)]
              for r in range(rows)]
    px = localizer.particles.x.astype(int).clip(0, cols - 1)
    py = localizer.particles.y.astype(int).clip(0, rows - 1)
    for r, c in zip(py, px):
        if canvas[r][c] == " ":
            canvas[r][c] = "."
    er, ec = int(estimate[1]), int(estimate[0])
    if 0 <= er < rows and 0 <= ec < cols:
        canvas[er][ec] = "E"
    tr, tc = int(true_pose[1]), int(true_pose[0])
    canvas[tr][tc] = "R"
    return "\n".join("".join(row) for row in canvas)


def main() -> None:
    world = robot_world(InputSize.SQCIF, variant=0, n_steps=32)
    n_particles = default_particle_count(world)
    print(f"map: {world.grid.shape[0]}x{world.grid.shape[1]} cells, "
          f"{n_particles} particles, {len(world.controls)} steps, "
          f"{world.n_beams} range beams\n")

    localizer = MonteCarloLocalizer(world=world, n_particles=n_particles,
                                    seed=0)
    checkpoints = {0, 4, 12, len(world.controls) - 1}
    for step, (control, ranges) in enumerate(
        zip(world.controls, world.measurements)
    ):
        estimate = localizer.step(control, ranges)
        truth = world.true_poses[step]
        error = math.hypot(estimate[0] - truth[0], estimate[1] - truth[1])
        spread = float(
            np.std(localizer.particles.x) + np.std(localizer.particles.y)
        )
        if step in checkpoints:
            print(f"--- step {step}: position error {error:.2f} cells, "
                  f"particle spread {spread:.2f} ---")
            print(render(world, localizer, truth, estimate))
            print()
    print(f"final error: {error:.2f} cells "
          f"(converged: {'yes' if error < 1.0 else 'no'})")


if __name__ == "__main__":
    main()
