#!/usr/bin/env python
"""Viola-Jones walkthrough: train a cascade, scan a scene, evaluate.

Trains the Haar/AdaBoost cascade on synthetic face patches (cached),
detects faces in a cluttered scene, marks them on an ASCII rendering, and
prints the detector's precision/recall operating curve.

Run:  python examples/face_detection.py
"""

import numpy as np

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import face_scene
from repro.face import (
    detect_faces,
    evaluate_detector,
    operating_curve,
    trained_cascade,
)

ASCII_RAMP = " .:-=+*#%@"


def render_with_boxes(image, detections, truth):
    rows, cols = image.shape
    out_cols = 72
    out_rows = max(1, rows * out_cols // (2 * cols))
    rr = (np.arange(out_rows) * rows // out_rows).clip(0, rows - 1)
    cc = (np.arange(out_cols) * cols // out_cols).clip(0, cols - 1)
    small = image[np.ix_(rr, cc)]
    lo, hi = small.min(), small.max()
    normalized = (small - lo) / (hi - lo) if hi > lo else small * 0
    canvas = [
        [ASCII_RAMP[int(v * (len(ASCII_RAMP) - 1))] for v in row]
        for row in normalized
    ]

    def mark(r, c, side, symbol):
        r0 = int(r * out_rows / rows)
        c0 = int(c * out_cols / cols)
        r1 = min(out_rows - 1, int((r + side) * out_rows / rows))
        c1 = min(out_cols - 1, int((c + side) * out_cols / cols))
        for cc_i in range(c0, c1 + 1):
            canvas[r0][cc_i] = symbol
            canvas[r1][cc_i] = symbol
        for rr_i in range(r0, r1 + 1):
            canvas[rr_i][c0] = symbol
            canvas[rr_i][c1] = symbol

    for tr, tc, ts in truth:
        mark(tr, tc, ts, "o")
    for det in detections:
        mark(det.row, det.col, det.side, "+")
    return "\n".join("".join(row) for row in canvas)


def main() -> None:
    cascade = trained_cascade(0)
    print(f"cascade: {len(cascade.stages)} stages, "
          f"{sum(len(s.stumps) for s in cascade.stages)} stumps over "
          f"{len(cascade.features)} candidate Haar features\n")

    scene = face_scene(InputSize.QCIF, variant=0, n_faces=3)
    profiler = KernelProfiler()
    with profiler.run():
        detections = detect_faces(cascade, scene.image, profiler=profiler)
    print(f"scan: {profiler.total_seconds * 1000:.0f} ms, "
          f"{len(detections)} detections for {len(scene.true_boxes)} faces")
    print("scene ('o' = ground truth, '+' = detection):")
    print(render_with_boxes(scene.image, detections, scene.true_boxes))

    scenes = [
        (s.image, s.true_boxes)
        for s in (face_scene(InputSize.QCIF, v) for v in range(3))
    ]
    overall = evaluate_detector(cascade, scenes)
    print(f"\nover 3 scenes: precision {overall.precision:.2f}, "
          f"recall {overall.recall:.2f}, F1 {overall.f1:.2f}")
    print("\noperating curve (stage-threshold offset -> P / R):")
    for offset, ev in operating_curve(cascade, scenes,
                                      offsets=(-0.5, 0.0, 0.5, 1.5)):
        print(f"  {offset:+.2f}:  P={ev.precision:.2f}  R={ev.recall:.2f}")


if __name__ == "__main__":
    main()
