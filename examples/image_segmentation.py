#!/usr/bin/env python
"""Normalized-cuts segmentation: k-way vs. recursive two-way.

Segments a synthetic multi-region image both ways, scores each against
the generator's ground-truth regions, and renders the label maps as
ASCII.  Also demonstrates the occupancy-mapping extension: the robot
world's grid is reconstructed from its own scans.

Run:  python examples/image_segmentation.py
"""

import time

import numpy as np

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import robot_world, segmentation_image
from repro.localization import map_from_trace, map_quality
from repro.segmentation import label_purity, segment_image, segment_recursive

LABEL_CHARS = ".:*#%@+="


def render_labels(labels: np.ndarray, width: int = 64) -> str:
    rows, cols = labels.shape
    out_cols = min(width, cols)
    out_rows = max(1, rows * out_cols // (2 * cols))
    rr = (np.arange(out_rows) * rows // out_rows).clip(0, rows - 1)
    cc = (np.arange(out_cols) * cols // out_cols).clip(0, cols - 1)
    small = labels[np.ix_(rr, cc)]
    return "\n".join(
        "".join(LABEL_CHARS[v % len(LABEL_CHARS)] for v in row)
        for row in small
    )


def main() -> None:
    image, truth = segmentation_image(InputSize.QCIF, variant=0,
                                      n_regions=4)
    print(f"input: {image.shape[1]}x{image.shape[0]}, 4 true regions\n")

    profiler = KernelProfiler()
    started = time.time()
    with profiler.run():
        kway = segment_image(image, n_segments=4, profiler=profiler)
    kway_time = time.time() - started
    print(f"k-way Yu-Shi discretization: purity "
          f"{label_purity(kway.labels, truth):.3f} in {kway_time:.2f}s "
          f"(Eigensolve "
          f"{100 * profiler.kernel_seconds['Eigensolve'] / profiler.total_seconds:.0f}%"
          " of runtime)")

    started = time.time()
    recursive = segment_recursive(image, n_segments=4)
    rec_time = time.time() - started
    print(f"recursive two-way cuts:      purity "
          f"{label_purity(recursive.labels, truth):.3f} in {rec_time:.2f}s "
          f"(cut values: "
          + ", ".join(f"{v:.4f}" for v in recursive.cut_values) + ")")

    print("\nground truth           | k-way result")
    truth_lines = render_labels(truth, 32).splitlines()
    kway_lines = render_labels(kway.labels, 32).splitlines()
    for t_line, k_line in zip(truth_lines, kway_lines):
        print(f"{t_line} | {k_line}")

    # Bonus: occupancy mapping from the localization world's own scans.
    world = robot_world(InputSize.SQCIF, variant=0, n_steps=40)
    mapper = map_from_trace(world)
    recall, precision = map_quality(mapper, world.grid)
    print(f"\noccupancy mapping from {len(world.true_poses)} scans: "
          f"wall recall {recall:.2f}, free-space precision {precision:.2f}, "
          f"{mapper.known_fraction() * 100:.0f}% of cells observed")
    estimate = mapper.binary_map()
    print("reconstructed map ('#' walls, ' ' free, '?' unobserved):")
    observed = mapper.log_odds != 0.0
    lines = []
    for r in range(world.grid.shape[0]):
        line = ""
        for c in range(world.grid.shape[1]):
            if not observed[r, c]:
                line += "?"
            elif estimate[r, c]:
                line += "#"
            else:
                line += " "
        lines.append(line)
    print("\n".join(lines))


if __name__ == "__main__":
    main()
