"""Backend speedup study: loop-faithful ``ref`` vs vectorized ``fast``.

For every dual-backend kernel registered in :mod:`repro.core.backend`,
this module times both implementations on the same deterministic SQCIF
workload (the equivalence harness's first case), aggregates the repeats
into :class:`~repro.core.types.RunStats`, and reports the median
ref/fast speedup per kernel with the suite's noise convention: a row is
flagged ``within noise`` when the runtime gap does not exceed twice the
combined measurement stddev (the same significance rule as
``sdvbs compare``).

The rendered table lands in ``results/backend_speedup.txt``; the paper's
hotspot claim is pinned by asserting at least three Figure-3 hotspot
kernels clear a 5x median speedup.
"""

from typing import Dict, List, Tuple

import pytest

from repro.core import RunStats, load_all_kernels, registered_kernels
from repro.core.equivalence import cases_for
from repro.core.types import InputSize

load_all_kernels()

#: Kernels whose apps dominate Figure 3's occupancy bars (SSD and the
#: integral image carry disparity; convolution carries the imgproc
#: front-ends of tracking/sift; the eigensolve carries tracking; Gram
#: construction carries svm).
HOTSPOT_KERNELS = (
    "disparity.ssd",
    "imgproc.integral_image",
    "imgproc.convolve2d",
    "imgproc.convolve_rows",
    "tracking.min_eigenvalue",
    "svm.kernel_matrix",
)

REF_REPEATS = 3
FAST_REPEATS = 7

KERNEL_NAMES = tuple(
    spec.name for spec in registered_kernels() if spec.fast is not None
)

#: kernel name -> (case label, ref stats, fast stats), filled per test.
MEASURED: Dict[str, Tuple[str, RunStats, RunStats]] = {}


def _time_repeats(fn, args: tuple, repeats: int) -> RunStats:
    import time

    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        samples.append(time.perf_counter() - start)
    return RunStats.of(samples)


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_backend_speedup(benchmark, name):
    spec = next(s for s in registered_kernels() if s.name == name)
    label, args = cases_for(spec, InputSize.SQCIF, 0)[0]
    ref_fn = spec.implementation("ref")
    fast_fn = spec.implementation("fast")

    def measure() -> Tuple[RunStats, RunStats]:
        # One warmup call per side, then the retained repeats.
        ref_fn(*args)
        fast_fn(*args)
        return (
            _time_repeats(ref_fn, args, REF_REPEATS),
            _time_repeats(fast_fn, args, FAST_REPEATS),
        )

    ref_stats, fast_stats = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0
    )
    MEASURED[name] = (label, ref_stats, fast_stats)
    assert ref_stats.median > 0.0
    assert fast_stats.median > 0.0


def _render(measured: Dict[str, Tuple[str, RunStats, RunStats]]) -> str:
    header = (
        f"{'Kernel':<26} {'Case (SQCIF)':<18} {'ref ms':>9} {'fast ms':>9} "
        f"{'speedup':>9} {'verdict':>14}"
    )
    lines = [
        "Backend speedup: loop-faithful ref vs vectorized fast "
        f"(repeats: ref={REF_REPEATS}, fast={FAST_REPEATS}, medians)",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    for name in sorted(measured):
        label, ref_stats, fast_stats = measured[name]
        speedup = ref_stats.median / fast_stats.median
        noise = (ref_stats.stddev ** 2 + fast_stats.stddev ** 2) ** 0.5
        delta = abs(ref_stats.median - fast_stats.median)
        verdict = "significant" if delta > 2.0 * noise else "within noise"
        lines.append(
            f"{name:<26} {label:<18} {ref_stats.median * 1e3:>9.2f} "
            f"{fast_stats.median * 1e3:>9.2f} {speedup:>8.1f}x "
            f"{verdict:>14}"
        )
    lines.append("-" * len(header))
    hot = [
        name for name in HOTSPOT_KERNELS
        if name in measured
        and measured[name][1].median / measured[name][2].median >= 5.0
    ]
    lines.append(
        f"Figure-3 hotspot kernels with >=5x median speedup: "
        f"{len(hot)}/{len(HOTSPOT_KERNELS)} ({', '.join(hot)})"
    )
    return "\n".join(lines)


def test_backend_speedup_render(benchmark, artifacts):
    assert len(MEASURED) == len(KERNEL_NAMES), "run the full module first"
    text = benchmark(_render, MEASURED)
    artifacts.add("backend_speedup", text)
    hotspot_wins = sum(
        1
        for name in HOTSPOT_KERNELS
        if MEASURED[name][1].median / MEASURED[name][2].median >= 5.0
    )
    # The acceptance bar: vectorization buys >=5x on at least three of
    # the Figure-3 hotspot kernels.
    assert hotspot_wins >= 3, _render(MEASURED)
