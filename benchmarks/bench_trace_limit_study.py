"""Empirical limit study: traced kernels vs. Table IV's analytic models.

Runs miniature instances of the disparity kernels on the dynamic
dataflow tracer (every scalar op recorded with its dependences), measures
work/span from the recorded graph, and writes the measured-vs-modeled
comparison to ``results/limit_study.txt``.  This is the same experiment
the paper's referenced critical-path tool performs, at toy scale.
"""

import numpy as np

from repro.core.dataflow import Chain, Op, ParMap, Seq
from repro.core.report import format_table
from repro.core.trace import (
    Tracer,
    traced_integral_reassociated,
    traced_integral_serial,
    traced_ssd,
    traced_winner_take_all,
)

SIDE = 10  # miniature image side; tracing is O(ops) Python objects


def run_study():
    rng = np.random.default_rng(0)
    image = rng.random((SIDE, SIDE)).tolist()
    other = rng.random((SIDE, SIDE)).tolist()
    rows = []

    ssd_tracer = Tracer()
    traced_ssd(ssd_tracer, image, other)
    ssd_model = ParMap(SIDE * SIDE, Op(2))
    rows.append(("SSD", ssd_tracer, ssd_model))

    serial_tracer = Tracer()
    traced_integral_serial(serial_tracer, image)
    serial_model = Seq(
        ParMap(SIDE, Chain(SIDE - 1, Op(1))),
        ParMap(SIDE, Chain(SIDE - 1, Op(1))),
    )
    rows.append(("IntegralImage (serial chains)", serial_tracer,
                 serial_model))

    ideal_tracer = Tracer()
    traced_integral_reassociated(ideal_tracer, image)
    rows.append(("IntegralImage (reassociated)", ideal_tracer, None))

    wta_tracer = Tracer()
    traced_winner_take_all(wta_tracer, rng.random((6, SIDE * SIDE // 6
                                                   )).tolist())
    wta_model = ParMap(SIDE * SIDE // 6, Chain(5, Op(1)))
    rows.append(("Sort (winner-take-all)", wta_tracer, wta_model))
    return rows


def test_limit_study(benchmark, artifacts):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1,
                              warmup_rounds=0)
    table_rows = []
    for name, tracer, model in rows:
        table_rows.append(
            (
                name,
                str(tracer.work),
                str(tracer.span),
                f"{tracer.parallelism:.1f}x",
                f"{model.parallelism:.1f}x" if model else "(no static model)",
            )
        )
    artifacts.add(
        "limit_study",
        format_table(
            ("Kernel", "Traced work", "Traced span", "Traced parallelism",
             "Model parallelism"),
            table_rows,
            title=f"Dynamic limit study on {SIDE}x{SIDE} miniatures "
            "(cf. Table IV methodology)",
        ),
    )
    by_name = {name: tracer for name, tracer, _model in rows}
    # The reassociated integral image exposes far more parallelism than
    # the serial-chain version of the *same* computation — the paper's
    # explanation for integral image's high Table IV entries.
    assert by_name["IntegralImage (reassociated)"].parallelism > \
        2 * by_name["IntegralImage (serial chains)"].parallelism
    # Models agree exactly with traced graphs where both exist.
    for name, tracer, model in rows:
        if model is not None:
            assert tracer.work == model.work, name
            assert tracer.span == model.span, name
