"""Input-variant sensitivity sweep — the paper's 65-test-vector angle.

SD-VBS ships five distinct inputs per size so researchers can run "power
and sensitivity studies".  This bench sweeps all five variants of the
fast applications at QCIF, asserts the runs stay algorithmically sound on
every variant, and checks runtime sensitivity: data-intensive disparity
should be nearly variant-insensitive (cost depends on pixel count, not
content), while stitch — whose RANSAC workload follows feature content —
may vary more.
"""

import numpy as np
import pytest

from repro.core import InputSize, get_benchmark, run_benchmark
from repro.core.report import format_table
from repro.core.types import VARIANTS_PER_SIZE

SWEPT = ("disparity", "svm", "stitch", "texture")


@pytest.mark.parametrize("slug", SWEPT)
def test_variant_sweep(benchmark, slug, artifacts):
    bench = get_benchmark(slug)

    def sweep():
        return [
            run_benchmark(bench, InputSize.QCIF, variant)
            for variant in range(VARIANTS_PER_SIZE)
        ]

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1,
                              warmup_rounds=0)
    times = np.array([run.total_seconds for run in runs])
    spread = float(times.std() / times.mean())
    artifacts.add(
        f"variants_{slug}",
        format_table(
            ("Variant", "Wall time", "Outputs"),
            [
                (run.variant, f"{run.total_seconds * 1000:.1f} ms",
                 ", ".join(f"{k}={v}" for k, v in sorted(
                     run.outputs.items())
                     if isinstance(v, (int, float)))[:60])
                for run in runs
            ],
            title=f"Five-variant sweep: {slug} @ QCIF "
            f"(relative std {spread:.2f})",
        ),
    )
    # Every variant must stay algorithmically sound.
    for run in runs:
        if slug == "disparity":
            assert run.outputs["mean_abs_error"] < 1.5
        elif slug == "svm":
            assert run.outputs["train_accuracy"] > 0.9
        elif slug == "stitch":
            assert run.outputs["registration_error"] < 2.0
        elif slug == "texture":
            assert run.outputs["final_residual"] < \
                run.outputs["initial_residual"] * 1.1
    # Data-intensive disparity: runtime follows pixels, not content.
    if slug == "disparity":
        assert spread < 0.35
