"""Figure 3: per-kernel occupancy of each application across input sizes.

The paper's central characterization: for every application, the share of
runtime spent in each named kernel at relative input sizes 1/2/4.  Each
application below is one pytest-benchmark case that profiles all three
sizes; the collected occupancies are rendered into ``results/figure3.txt``
and the paper's qualitative claims are asserted per application.
"""

from typing import Dict

import pytest

from repro.core import (
    InputSize,
    TraceRecorder,
    all_benchmarks,
    get_benchmark,
    run_benchmark,
)
from repro.core.report import render_figure3
from repro.core.runner import ALL_SIZES
from repro.core.tracing import chrome_trace_json, run_manifest
from repro.core.types import NON_KERNEL_WORK, SuiteResult

ALL_SLUGS = tuple(b.slug for b in all_benchmarks())

#: slug -> SuiteResult over the three sizes, filled by the app benches.
RESULTS: Dict[str, SuiteResult] = {}


#: Applications cheap enough to measure twice per size; the rest stay
#: single-shot to keep the harness runtime in check.
_LIGHT_SLUGS = {"disparity", "tracking", "stitch", "svm", "face", "texture"}


@pytest.mark.parametrize("slug", ALL_SLUGS)
def test_fig3_profile(benchmark, slug):
    bench = get_benchmark(slug)
    repeats = 2 if slug in _LIGHT_SLUGS else 1

    def profile_all_sizes() -> SuiteResult:
        # Aggregated path: each (size) cell is the median of ``repeats``
        # runs, so the occupancy bars in figure3.txt are stable across
        # harness invocations.
        result = SuiteResult()
        for size in ALL_SIZES:
            result.runs.append(
                run_benchmark(bench, size, variant=0, repeats=repeats)
            )
        return result

    result = benchmark.pedantic(profile_all_sizes, rounds=1, iterations=1,
                                warmup_rounds=0)
    RESULTS[slug] = result
    for size in ALL_SIZES:
        occupancy = result.mean_occupancy(slug, size)
        # Kernel attribution covers the majority of the runtime.
        assert occupancy[NON_KERNEL_WORK] < 50.0
        # The rescaled occupancy always closes the 100% budget.
        assert sum(occupancy.values()) == pytest.approx(100.0, abs=1e-9)


def test_fig3_render_and_shape(benchmark, artifacts):
    assert len(RESULTS) == len(ALL_SLUGS), "run the full module first"
    merged = SuiteResult()
    for slug in ALL_SLUGS:
        merged.runs.extend(RESULTS[slug].runs)
    text = benchmark(render_figure3, merged)
    artifacts.add("figure3", text)

    def share(slug: str, size: InputSize, kernel: str) -> float:
        return RESULTS[slug].mean_occupancy(slug, size).get(kernel, 0.0)

    # Disparity: the four data kernels dominate at every size.
    for size in ALL_SIZES:
        attributed = 100.0 - share("disparity", size, NON_KERNEL_WORK)
        assert attributed > 60.0
    # Segmentation: compute-intensive — occupancy is dominated by the
    # eigensolve and stays roughly flat as the input grows (paper: "the
    # occupancy of individual kernels remain constant across sizes").
    eigen_small = share("segmentation", InputSize.SQCIF, "Eigensolve")
    eigen_large = share("segmentation", InputSize.CIF, "Eigensolve")
    assert eigen_small > 50.0
    assert abs(eigen_small - eigen_large) < 25.0
    # SIFT: the SIFT kernel is the majority of runtime (paper: SIFT +
    # interpolation account for ~65%).
    assert share("sift", InputSize.SQCIF, "SIFT") > 50.0
    # Localization: ParticleFilter + Sampling account for ~all runtime.
    pf = share("localization", InputSize.SQCIF, "ParticleFilter")
    samp = share("localization", InputSize.SQCIF, "Sampling")
    assert pf + samp > 90.0


def test_fig3_trace_artifact(benchmark, artifacts):
    """The call-granular view behind the Figure 3 aggregate.

    One traced disparity run: every kernel invocation becomes a span, the
    summed exclusive span time must reproduce the profiler's attribution
    exactly, and the trace lands in ``results/`` as Chrome trace-event
    JSON (loadable in chrome://tracing / Perfetto).
    """
    bench = get_benchmark("disparity")
    recorder = TraceRecorder()

    def traced_run():
        return run_benchmark(bench, InputSize.SQCIF, variant=0,
                             recorder=recorder)

    run = benchmark.pedantic(traced_run, rounds=1, iterations=1,
                             warmup_rounds=0)
    sums = recorder.kernel_self_seconds()
    assert set(sums) == set(run.kernel_seconds)
    for name, seconds in run.kernel_seconds.items():
        assert sums[name] == pytest.approx(seconds, abs=1e-9)
    # Call granularity: the shift loop makes every kernel multi-call.
    assert all(count > 1 for count in run.kernel_calls.values())
    artifacts.add(
        "figure3_trace_disparity",
        chrome_trace_json(recorder.spans,
                          run_manifest(argv=["bench_fig3_hotspots"])),
        suffix=".json",
    )
