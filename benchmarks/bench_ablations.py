"""Ablation benches for the per-application claims in section III.

Each bench isolates one knob the paper calls out:

* segmentation time follows the number of segments, not the image size;
* disparity cost grows with the search range (its data-intensive loop);
* texture-synthesis runtime is iteration-bound, insensitive to texture
  class;
* localization cost follows the particle count, not the input label;
* face-detection scan cost drops when the cascade rejects early (the
  attentional-cascade effect).
"""

import numpy as np
import pytest

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import (
    face_scene,
    robot_world,
    segmentation_image,
    stereo_pair,
    texture_sample,
)
from repro.disparity import dense_disparity
from repro.face import detect_faces, trained_cascade
from repro.localization import MonteCarloLocalizer
from repro.segmentation import segment_image
from repro.texture import synthesize_from_exemplar


class TestSegmentationScaling:
    """Paper: "segmentation is constrained by the number of image
    segments and not by the image size"."""

    @pytest.mark.parametrize("n_segments", [2, 4, 6])
    def test_segments_knob(self, benchmark, n_segments):
        image, _truth = segmentation_image(InputSize.SQCIF, 0,
                                           n_regions=n_segments)
        benchmark.pedantic(
            segment_image, args=(image,),
            kwargs={"n_segments": n_segments},
            rounds=1, iterations=1, warmup_rounds=0,
        )

    @pytest.mark.parametrize("size", [InputSize.SQCIF, InputSize.CIF],
                             ids=lambda s: s.name)
    def test_size_knob(self, benchmark, size):
        image, _truth = segmentation_image(size, 0, n_regions=4)
        benchmark.pedantic(
            segment_image, args=(image,), kwargs={"n_segments": 4},
            rounds=1, iterations=1, warmup_rounds=0,
        )


class TestDisparitySearchRange:
    """Disparity's dominant loop is over candidate shifts: cost is linear
    in the search range."""

    @pytest.mark.parametrize("max_disparity", [8, 16, 32])
    def test_search_range(self, benchmark, max_disparity):
        pair = stereo_pair(InputSize.QCIF, 0)
        benchmark.pedantic(
            dense_disparity, args=(pair.left, pair.right),
            kwargs={"max_disparity": max_disparity},
            rounds=2, iterations=1, warmup_rounds=0,
        )


class TestTextureClassInsensitivity:
    """Paper: "The execution time for all the image types is almost
    similar due to the fixed number of iterations"."""

    @pytest.mark.parametrize("kind", ["stochastic", "structural"])
    def test_texture_class(self, benchmark, kind):
        exemplar = texture_sample(InputSize.SQCIF, 0, kind)
        benchmark.pedantic(
            synthesize_from_exemplar, args=(exemplar,),
            kwargs={"iterations": 4, "seed": 0},
            rounds=2, iterations=1, warmup_rounds=0,
        )


class TestLocalizationParticles:
    """Localization cost follows the particle count."""

    @pytest.mark.parametrize("n_particles", [200, 800])
    def test_particles_knob(self, benchmark, n_particles):
        world = robot_world(InputSize.SQCIF, 0, n_steps=12)

        def run():
            localizer = MonteCarloLocalizer(
                world=world, n_particles=n_particles, seed=0
            )
            for control, ranges in zip(world.controls, world.measurements):
                localizer.step(control, ranges)

        benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)


class TestCascadeEarlyExit:
    """The attentional cascade's early rejection: scanning a clutter-only
    scene costs less than scanning one full of faces."""

    @pytest.mark.parametrize("n_faces", [0, 6])
    def test_scan_cost(self, benchmark, n_faces):
        cascade = trained_cascade(0)
        scene = face_scene(InputSize.QCIF, 0, n_faces=n_faces)
        profiler = KernelProfiler()
        benchmark.pedantic(
            detect_faces, args=(cascade, scene.image),
            kwargs={"profiler": profiler},
            rounds=1, iterations=1, warmup_rounds=0,
        )
        if n_faces:
            assert profiler.kernel_seconds["ExtractFaces"] > 0
