"""Baseline comparisons for the design choices DESIGN.md calls out.

Each pair benches the suite's chosen algorithm against the classic
alternative on the same workload, and asserts both produce acceptable
results (the speed relation is visible in the benchmark table):

* texture: parametric Portilla-Simoncelli projection vs. Efros-Leung
  non-parametric sampling;
* segmentation: k-way Yu-Shi discretization vs. recursive two-way cuts;
* SVM: interior-point dual solve vs. SMO;
* disparity: SSD vs. SAD block costs.
"""

import numpy as np
import pytest

from repro.core import InputSize
from repro.core.inputs import segmentation_image, stereo_pair, svm_dataset, \
    texture_sample
from repro.disparity import (
    dense_disparity,
    dense_disparity_sad,
    disparity_error,
)
from repro.segmentation import label_purity, segment_image, segment_recursive
from repro.svm import gram_matrix, linear_kernel, solve_svm_dual, \
    solve_svm_dual_smo
from repro.texture import analyze, synthesize_efros_leung, \
    synthesize_from_exemplar


class TestTextureParametricVsNonparametric:
    def test_parametric(self, benchmark):
        exemplar = texture_sample(InputSize.SQCIF, 0, "structural")
        result = benchmark.pedantic(
            synthesize_from_exemplar, args=(exemplar,),
            kwargs={"iterations": 4, "seed": 0},
            rounds=1, iterations=1, warmup_rounds=0,
        )
        assert result.final_residual < result.residuals[0] * 1.05

    def test_nonparametric(self, benchmark):
        # EL is per-pixel Python: a much smaller instance keeps the bench
        # tractable while showing the asymptotic gap in the table.
        exemplar = texture_sample(InputSize.SQCIF, 0, "structural")[:24, :24]
        result = benchmark.pedantic(
            synthesize_efros_leung, args=(exemplar, (32, 32)),
            kwargs={"window": 7, "seed": 0},
            rounds=1, iterations=1, warmup_rounds=0,
        )
        target = analyze(exemplar, n_levels=2)
        synth = analyze(result.texture, n_levels=2)
        noise_stats = analyze(
            np.random.default_rng(0).random((32, 32)), n_levels=2
        )
        assert target.distance(synth) < target.distance(noise_stats)


class TestSegmentationKWayVsRecursive:
    def test_kway(self, benchmark):
        image, truth = segmentation_image(InputSize.SQCIF, 0, n_regions=4)
        result = benchmark.pedantic(
            segment_image, args=(image,), kwargs={"n_segments": 4},
            rounds=1, iterations=1, warmup_rounds=0,
        )
        assert label_purity(result.labels, truth) > 0.85

    def test_recursive(self, benchmark):
        image, truth = segmentation_image(InputSize.SQCIF, 0, n_regions=4)
        result = benchmark.pedantic(
            segment_recursive, args=(image,), kwargs={"n_segments": 4},
            rounds=1, iterations=1, warmup_rounds=0,
        )
        assert label_purity(result.labels, truth) > 0.75


class TestSvmIpmVsSmo:
    def _problem(self):
        data = svm_dataset(InputSize.QCIF, 0, dim=16)
        gram = gram_matrix(linear_kernel(), data.train_x)
        return gram, data.train_y

    def test_interior_point(self, benchmark):
        gram, labels = self._problem()
        signed = gram * np.outer(labels, labels)
        result = benchmark.pedantic(
            solve_svm_dual, args=(signed, labels), kwargs={"c": 1.0},
            rounds=2, iterations=1, warmup_rounds=0,
        )
        assert abs(labels @ result.alpha) < 1e-6

    def test_smo(self, benchmark):
        gram, labels = self._problem()
        result = benchmark.pedantic(
            solve_svm_dual_smo, args=(gram, labels), kwargs={"c": 1.0},
            rounds=2, iterations=1, warmup_rounds=0,
        )
        assert abs(labels @ result.alpha) < 1e-6

    def test_solvers_agree(self, benchmark):
        gram, labels = self._problem()
        signed = gram * np.outer(labels, labels)

        def both():
            ipm = solve_svm_dual(signed, labels, c=1.0)
            smo = solve_svm_dual_smo(gram, labels, c=1.0)
            return ipm.alpha, smo.alpha

        ipm_alpha, smo_alpha = benchmark.pedantic(
            both, rounds=1, iterations=1, warmup_rounds=0
        )

        def objective(a):
            return 0.5 * a @ signed @ a - a.sum()

        assert objective(ipm_alpha) == pytest.approx(
            objective(smo_alpha), abs=0.1
        )


class TestDisparitySsdVsSad:
    @pytest.mark.parametrize("metric", ["ssd", "sad"])
    def test_metric(self, benchmark, metric):
        pair = stereo_pair(InputSize.QCIF, 0, max_disparity=12)
        matcher = dense_disparity if metric == "ssd" else dense_disparity_sad
        result = benchmark.pedantic(
            matcher, args=(pair.left, pair.right),
            kwargs={"max_disparity": 16},
            rounds=2, iterations=1, warmup_rounds=0,
        )
        assert disparity_error(result, pair.true_disparity) < 1.0


class TestTrackingSparseVsDense:
    """Sparse KLT follows a few dozen features; dense LK solves every
    pixel.  Both must agree on the global motion."""

    def test_sparse(self, benchmark):
        from repro.core.inputs import sequence
        from repro.tracking import good_features, median_motion, \
            track_features

        seq = sequence(InputSize.QCIF, 0, n_frames=2)

        def run():
            features = good_features(seq.frames[0], max_features=48)
            tracks = track_features(seq.frames[0], seq.frames[1], features)
            return median_motion([t for t in tracks if t.converged])

        dy, dx = benchmark.pedantic(run, rounds=2, iterations=1,
                                    warmup_rounds=0)
        assert dy == pytest.approx(seq.true_motion[0], abs=0.2)
        assert dx == pytest.approx(seq.true_motion[1], abs=0.2)

    def test_dense(self, benchmark):
        from repro.core.inputs import sequence
        from repro.tracking import iterative_dense_flow

        seq = sequence(InputSize.QCIF, 0, n_frames=2)
        field = benchmark.pedantic(
            iterative_dense_flow, args=(seq.frames[0], seq.frames[1]),
            kwargs={"iterations": 4},
            rounds=2, iterations=1, warmup_rounds=0,
        )
        dy, dx = field.median_motion()
        assert dy == pytest.approx(seq.true_motion[0], abs=0.5)
        assert dx == pytest.approx(seq.true_motion[1], abs=0.5)
