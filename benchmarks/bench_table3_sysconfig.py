"""Table III: configuration of the profiling system (this host)."""

from repro import render_table3
from repro.core.sysinfo import system_configuration


def test_table3_system_configuration(benchmark, artifacts):
    text = benchmark(render_table3)
    artifacts.add("table3", text)
    config = system_configuration()
    # The paper's table documents OS, processor, caches, memory.
    assert "Operating System" in config
    assert "Processors" in config
    assert "Memory" in config
