"""Shared fixtures for the SD-VBS benchmark harness.

Each bench module both *times* its workload through pytest-benchmark and
*renders* the corresponding paper table/figure.  Rendered text is
collected by the session-scoped ``artifacts`` fixture and written to
``benchmarks/results/`` at the end of the session, so a
``pytest benchmarks/ --benchmark-only`` run leaves the regenerated
tables and figures on disk alongside the timing table.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class ArtifactStore:
    """Collects rendered table/figure text, keyed by artifact name."""

    def __init__(self) -> None:
        self.artifacts: Dict[str, str] = {}

    def add(self, name: str, text: str) -> None:
        self.artifacts[name] = text

    def flush(self) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        for name, text in self.artifacts.items():
            path = os.path.join(RESULTS_DIR, f"{name}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")


@pytest.fixture(scope="session")
def artifacts():
    store = ArtifactStore()
    yield store
    store.flush()
