"""Shared fixtures for the SD-VBS benchmark harness.

Each bench module both *times* its workload through pytest-benchmark and
*renders* the corresponding paper table/figure.  Rendered text is
collected by the session-scoped ``artifacts`` fixture and written to
``benchmarks/results/`` at the end of the session, so a
``pytest benchmarks/ --benchmark-only`` run leaves the regenerated
tables and figures on disk alongside the timing table.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class ArtifactStore:
    """Collects rendered table/figure text, keyed by artifact name.

    ``suffix`` lets trace artifacts land as ``.json``/``.jsonl`` next to
    the ``.txt`` tables; text artifacts keep a trailing newline, data
    files are written verbatim.
    """

    def __init__(self) -> None:
        self.artifacts: Dict[str, Tuple[str, str]] = {}

    def add(self, name: str, text: str, suffix: str = ".txt") -> None:
        self.artifacts[name] = (text, suffix)

    def flush(self) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        for name, (text, suffix) in self.artifacts.items():
            path = os.path.join(RESULTS_DIR, f"{name}{suffix}")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text if text.endswith("\n") else text + "\n")


@pytest.fixture(scope="session")
def artifacts():
    store = ArtifactStore()
    yield store
    store.flush()
