"""Table IV: per-kernel parallelism from critical-path analysis.

The paper estimates, at the smallest input size, the ideal dataflow
speedup (work / critical-path span) of every major kernel.  This bench
evaluates the work/span models of all nine applications, renders the
table, and checks the paper's signature orderings.
"""

from repro.core import InputSize, table4_benchmarks
from repro.core.report import render_table4
from repro.core.types import ParallelismClass


def _rows():
    rows = {}
    for bench in table4_benchmarks():
        for est in bench.parallelism(InputSize.SQCIF):
            rows[(est.benchmark, est.kernel)] = est
    return rows


def test_table4_parallelism(benchmark, artifacts):
    rows = benchmark(_rows)
    artifacts.add("table4", render_table4())

    # Paper Table IV rows exist for these five benchmarks (we add models
    # for the remaining four as well).
    benchmarks_covered = {key[0] for key in rows}
    assert {"disparity", "tracking", "sift", "stitch", "svm"} <= \
        benchmarks_covered

    # Signature shape 1: dense, regular kernels show orders-of-magnitude
    # parallelism.
    assert rows[("disparity", "SSD")].parallelism > 1000
    assert rows[("stitch", "LSSolver")].parallelism > 1000
    # Shape 2: tracking's matrix inversion tops its benchmark (paper:
    # 171,000x, by far the largest tracking entry).
    tracking = {k: r for (b, k), r in rows.items() if b == "tracking"}
    assert max(tracking, key=lambda k: tracking[k].parallelism) == \
        "MatrixInversion"
    # Shape 3: SIFT's integral image (16,000x) far above detection (180x).
    assert rows[("sift", "IntegralImage")].parallelism > \
        10 * rows[("sift", "SIFT")].parallelism
    # Shape 4: SVM ordering MatrixOps > Learning > ConjugateMatrix.
    assert rows[("svm", "MatrixOps")].parallelism > \
        rows[("svm", "Learning")].parallelism > \
        rows[("svm", "ConjugateMatrix")].parallelism
    # Parallelism classes match the paper's labels.
    assert rows[("disparity", "SSD")].parallelism_class == \
        ParallelismClass.DLP
    assert rows[("tracking", "Gradient")].parallelism_class == \
        ParallelismClass.ILP
    assert rows[("sift", "IntegralImage")].parallelism_class == \
        ParallelismClass.TLP


def test_table4_grows_with_input(benchmark):
    """Paper: "there are yet larger amounts of inherent parallelism" at
    bigger inputs — dense-kernel estimates must grow with size."""

    def measure():
        small = {}
        large = {}
        for bench in table4_benchmarks():
            for est in bench.parallelism(InputSize.SQCIF):
                small[(est.benchmark, est.kernel)] = est.parallelism
            for est in bench.parallelism(InputSize.CIF):
                large[(est.benchmark, est.kernel)] = est.parallelism
        return small, large

    small, large = benchmark(measure)
    for key in (("disparity", "SSD"), ("tracking", "GaussianFilter"),
                ("stitch", "Blend")):
        assert large[key] > small[key]
