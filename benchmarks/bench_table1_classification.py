"""Table I: benchmark classification by concentration area.

A metadata table in the paper; the bench times its rendering (trivially
fast) and regenerates the rows into ``results/table1.txt``.
"""

from repro import all_benchmarks, render_table1
from repro.core.types import ConcentrationArea


def test_table1_classification(benchmark, artifacts):
    text = benchmark(render_table1)
    artifacts.add("table1", text)
    # Paper structure: 9 benchmarks across 4 concentration areas, with
    # 2-3 benchmarks per area.
    benches = all_benchmarks()
    assert len(benches) == 9
    per_area = {area: 0 for area in ConcentrationArea}
    for bench in benches:
        per_area[bench.area] += 1
    assert all(2 <= count <= 3 for count in per_area.values())
