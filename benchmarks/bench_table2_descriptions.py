"""Table II: descriptions, workload characteristics, application domains."""

from repro import all_benchmarks, render_table2
from repro.core.types import Characteristic


def test_table2_descriptions(benchmark, artifacts):
    text = benchmark(render_table2)
    artifacts.add("table2", text)
    benches = {b.slug: b for b in all_benchmarks()}
    # Paper Table II characteristics.
    assert benches["disparity"].characteristic == \
        Characteristic.DATA_INTENSIVE
    assert benches["tracking"].characteristic == \
        Characteristic.DATA_INTENSIVE
    assert benches["stitch"].characteristic == \
        Characteristic.DATA_AND_COMPUTE
    compute = [
        "segmentation", "sift", "localization", "svm", "face", "texture",
    ]
    for slug in compute:
        assert benches[slug].characteristic == \
            Characteristic.COMPUTE_INTENSIVE
