"""Figure 2: execution time versus input size.

The paper plots, for six applications (disparity, tracking, SIFT, stitch,
localization, segmentation), the relative increase in execution time as
the input grows 1x -> 2x -> 4x.  Each (application, size) cell below is a
pytest-benchmark case; the final test assembles the normalized series and
checks the paper's qualitative shape:

* data-intensive applications (disparity, tracking) scale with pixel
  count;
* localization is driven by its trace, not the image size;
* segmentation is bounded by its working-grid/segment count, so it is
  nearly flat across sizes.
"""

from typing import Dict, Tuple

import pytest

from repro.core import InputSize, TraceRecorder, get_benchmark, run_benchmark
from repro.core.report import format_table
from repro.core.runner import ALL_SIZES
from repro.core.tracing import events_to_jsonl, run_manifest

FIG2_SLUGS = (
    "disparity",
    "tracking",
    "sift",
    "stitch",
    "localization",
    "segmentation",
)

#: (slug, size) -> measured median seconds, filled by the cell benches.
MEASURED: Dict[Tuple[str, str], float] = {}


def _repeats(slug: str, size: InputSize) -> int:
    heavy = {"sift", "localization", "segmentation"}
    if slug in heavy or size == InputSize.CIF:
        return 1
    return 3


@pytest.mark.parametrize("size", ALL_SIZES, ids=lambda s: s.name)
@pytest.mark.parametrize("slug", FIG2_SLUGS)
def test_fig2_cell(benchmark, slug, size):
    bench = get_benchmark(slug)
    repeats = _repeats(slug, size)
    # The aggregated runner measures the cell: one discarded warmup run
    # (when the budget allows repeats) and the retained repeats collapse
    # to a median, so the regenerated figure2.txt stops jittering between
    # harness invocations.
    record = benchmark.pedantic(
        run_benchmark, args=(bench, size, 0),
        kwargs={"warmup": 1 if repeats > 1 else 0, "repeats": repeats},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    MEASURED[(slug, size.name)] = float(record.total_seconds)
    assert record.total_seconds > 0
    assert record.stats is not None
    assert record.stats.repeats == repeats


def test_fig2_series(benchmark, artifacts):
    """Assemble Figure 2 from the measured cells and check its shape."""
    assert len(MEASURED) == len(FIG2_SLUGS) * len(ALL_SIZES), \
        "run the full module so every cell is measured"

    def render() -> str:
        headers = ["Benchmark"] + [
            f"{s.relative}x ({s.name})" for s in ALL_SIZES
        ]
        rows = []
        for slug in FIG2_SLUGS:
            base = MEASURED[(slug, "SQCIF")]
            rows.append(
                [slug]
                + [
                    f"{MEASURED[(slug, s.name)] / base:.2f}x"
                    for s in ALL_SIZES
                ]
            )
        return format_table(
            headers, rows,
            title="Figure 2. Execution time versus input size "
            "(normalized to SQCIF)",
        )

    text = benchmark(render)
    artifacts.add("figure2", text)

    def ratio(slug: str) -> float:
        return MEASURED[(slug, "CIF")] / MEASURED[(slug, "SQCIF")]

    # Data-intensive applications scale steeply with pixels (paper:
    # roughly linear in working-set size, ~8x at 4x the label since CIF
    # has ~9x SQCIF's pixels).
    assert ratio("disparity") > 2.5
    # Localization: "the increase in input size does not scale the
    # execution time accordingly" — far below disparity's growth.
    assert ratio("localization") < ratio("disparity")
    # Segmentation's fixed working grid keeps it nearly flat.
    assert ratio("segmentation") < 2.0


def test_fig2_trace_events_artifact(benchmark, artifacts):
    """Call-granular event log behind one Figure 2 row.

    Traces disparity across the three sizes into a single recorder; the
    per-call spans (tagged with their size) land in ``results/`` as a
    JSONL event log, so the scaling behaviour is inspectable per kernel
    *invocation*, not just per run total.
    """
    bench = get_benchmark("disparity")
    recorder = TraceRecorder()

    def trace_all_sizes():
        for size in ALL_SIZES:
            run_benchmark(bench, size, 0, recorder=recorder)

    benchmark.pedantic(trace_all_sizes, rounds=1, iterations=1,
                       warmup_rounds=0)
    sizes_seen = {span.attrs.get("size") for span in recorder.spans}
    assert sizes_seen == {size.name for size in ALL_SIZES}
    artifacts.add(
        "figure2_events_disparity",
        events_to_jsonl(recorder.spans,
                        run_manifest(argv=["bench_fig2_scaling"])),
        suffix=".jsonl",
    )
