"""Multi-scale oriented decomposition for texture analysis.

A simplified steerable-pyramid stand-in: a Laplacian (band-pass) pyramid
whose levels are further split into oriented responses by steerable
first-derivative filters at K orientations.  This captures the
scale-and-orientation energy structure the Portilla-Simoncelli statistics
are built on, using only the suite's own filtering kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..imgproc.convolution import convolve2d
from ..imgproc.filters import gaussian_blur
from ..imgproc.interpolate import downsample2, resize


@dataclass(frozen=True)
class OrientedPyramid:
    """Band-pass levels, their oriented splits, and the final low-pass.

    ``bands[l][k]`` is level ``l``'s response to orientation ``k``;
    ``bandpass[l]`` the unoriented band; ``lowpass`` the residual.
    """

    bandpass: List[np.ndarray]
    bands: List[List[np.ndarray]]
    lowpass: np.ndarray
    n_orientations: int


def oriented_kernel(theta: float, size: int = 5) -> np.ndarray:
    """First-derivative-of-Gaussian kernel steered to angle ``theta``."""
    if size % 2 == 0:
        raise ValueError("kernel size must be odd")
    half = size // 2
    yy, xx = np.mgrid[-half : half + 1, -half : half + 1].astype(np.float64)
    sigma = max(1.0, half / 2.0)
    gauss = np.exp(-(xx * xx + yy * yy) / (2.0 * sigma * sigma))
    directional = xx * math.cos(theta) + yy * math.sin(theta)
    kernel = directional * gauss
    kernel -= kernel.mean()
    norm = np.abs(kernel).sum()
    return kernel / (norm if norm > 0 else 1.0)


def build_pyramid(image: np.ndarray, n_levels: int = 3,
                  n_orientations: int = 4) -> OrientedPyramid:
    """Decompose ``image`` into ``n_levels`` oriented band-pass levels."""
    if n_levels < 1:
        raise ValueError("need at least one level")
    if n_orientations < 1:
        raise ValueError("need at least one orientation")
    image = np.asarray(image, dtype=np.float64)
    kernels = [
        oriented_kernel(math.pi * k / n_orientations)
        for k in range(n_orientations)
    ]
    bandpass: List[np.ndarray] = []
    bands: List[List[np.ndarray]] = []
    current = image
    for _ in range(n_levels):
        if min(current.shape) < 8:
            break
        blurred = gaussian_blur(current, 1.0)
        down = downsample2(blurred)
        # Laplacian band against the same resize used at reconstruction,
        # so reconstruct(build_pyramid(x)) == x exactly.
        band = current - resize(down, *current.shape)
        bandpass.append(band)
        bands.append([convolve2d(band, k) for k in kernels])
        current = down
    return OrientedPyramid(
        bandpass=bandpass,
        bands=bands,
        lowpass=current,
        n_orientations=n_orientations,
    )


def reconstruct(pyramid: OrientedPyramid,
                shape: tuple) -> np.ndarray:
    """Collapse band-pass levels + low-pass back to ``shape``.

    The oriented splits are analysis-only (statistics are measured on
    them); reconstruction sums the unoriented band-pass levels, so
    ``reconstruct(build_pyramid(x)) == x`` up to resampling error.
    """
    out = np.zeros(shape)
    # Upsample the lowpass back through every level.
    current = pyramid.lowpass
    for band in reversed(pyramid.bandpass):
        current = resize(current, *band.shape)
        current = current + band
    return resize(current, *shape) if current.shape != tuple(shape) else current
