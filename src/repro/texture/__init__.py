"""Texture Synthesis: parametric statistic-matching synthesis."""

from .benchmark import BENCHMARK, ITERATIONS, KERNELS, N_LEVELS, N_ORIENTATIONS
from .decompose import OrientedPyramid, build_pyramid, oriented_kernel, reconstruct
from .efros_leung import EfrosLeungResult, synthesize_efros_leung
from .stats import TextureStatistics, analyze, autocorrelation, moments
from .synthesis import (
    SynthesisResult,
    impose_moments,
    impose_spectrum,
    match_histogram,
    synthesize,
    synthesize_from_exemplar,
)

__all__ = [
    "BENCHMARK",
    "ITERATIONS",
    "KERNELS",
    "N_LEVELS",
    "N_ORIENTATIONS",
    "EfrosLeungResult",
    "OrientedPyramid",
    "SynthesisResult",
    "TextureStatistics",
    "analyze",
    "autocorrelation",
    "build_pyramid",
    "impose_moments",
    "impose_spectrum",
    "match_histogram",
    "moments",
    "oriented_kernel",
    "reconstruct",
    "synthesize",
    "synthesize_efros_leung",
    "synthesize_from_exemplar",
]
