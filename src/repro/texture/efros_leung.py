"""Efros-Leung non-parametric texture synthesis — the baseline method.

The paper's texture benchmark cites two synthesis families: the
parametric Portilla-Simoncelli model it implements (our
:mod:`repro.texture.synthesis`) and Efros & Leung's non-parametric
sampling [ICCV 1999].  This module implements the latter as a comparison
baseline: grow the output pixel by pixel, each time matching the known
neighbourhood against every exemplar window and sampling among the
closest matches.

The ablation bench compares the two on quality (statistic residual) and
cost (non-parametric synthesis is quadratic-ish in exemplar area per
output pixel — exactly why the parametric method exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler


@dataclass(frozen=True)
class EfrosLeungResult:
    """Synthesized texture plus bookkeeping."""

    texture: np.ndarray
    seed_box: Tuple[int, int, int]  # (row, col, side) copied from exemplar
    pixels_synthesized: int


def _exemplar_windows(exemplar: np.ndarray, window: int) -> np.ndarray:
    """All ``window x window`` patches as a (n, window*window) matrix."""
    rows, cols = exemplar.shape
    n_r = rows - window + 1
    n_c = cols - window + 1
    out = np.empty((n_r * n_c, window * window))
    index = 0
    for r in range(n_r):
        for c in range(n_c):
            out[index] = exemplar[r : r + window, c : c + window].ravel()
            index += 1
    return out


def synthesize_efros_leung(
    exemplar: np.ndarray,
    out_shape: Tuple[int, int],
    window: int = 9,
    error_tolerance: float = 0.1,
    seed: int = 0,
    profiler: Optional[KernelProfiler] = None,
) -> EfrosLeungResult:
    """Grow a texture of ``out_shape`` from ``exemplar`` pixel by pixel.

    A seed block from the exemplar initializes the output centre; the
    frontier pixel with the most known neighbours is synthesized next, by
    measuring Gaussian-weighted SSD between its known neighbourhood and
    every exemplar window and sampling uniformly among windows within
    ``(1 + error_tolerance)`` of the best match.
    """
    profiler = ensure_profiler(profiler)
    exemplar = np.asarray(exemplar, dtype=np.float64)
    if window % 2 == 0 or window < 3:
        raise ValueError("window must be an odd integer >= 3")
    if min(exemplar.shape) < window:
        raise ValueError("exemplar smaller than the matching window")
    rows, cols = out_shape
    if rows < window or cols < window:
        raise ValueError("output smaller than the matching window")
    rng = np.random.default_rng(seed)
    half = window // 2

    with profiler.kernel("Sampling"):
        windows = _exemplar_windows(exemplar, window)
        centers = windows[:, (window * window) // 2]
        out = np.zeros(out_shape)
        known = np.zeros(out_shape, dtype=bool)
        # Seed: copy a random exemplar block into the output centre.
        seed_side = window
        sr = int(rng.integers(0, exemplar.shape[0] - seed_side + 1))
        sc = int(rng.integers(0, exemplar.shape[1] - seed_side + 1))
        or0 = (rows - seed_side) // 2
        oc0 = (cols - seed_side) // 2
        out[or0 : or0 + seed_side, oc0 : oc0 + seed_side] = exemplar[
            sr : sr + seed_side, sc : sc + seed_side
        ]
        known[or0 : or0 + seed_side, oc0 : oc0 + seed_side] = True

        yy, xx = np.mgrid[-half : half + 1, -half : half + 1]
        gauss = np.exp(-(yy * yy + xx * xx) / (2.0 * (window / 6.4) ** 2))
        gauss = gauss.ravel()

        synthesized = 0
        total_unknown = int((~known).sum())
        for _ in range(total_unknown):
            # Frontier pixel with the most known neighbours.
            frontier = _best_frontier(known)
            if frontier is None:
                break
            r, c = frontier
            # Build the (padded) known neighbourhood around (r, c).
            patch = np.zeros((window, window))
            mask = np.zeros((window, window), dtype=bool)
            r0, c0 = r - half, c - half
            for dr in range(window):
                for dc in range(window):
                    rr_idx, cc_idx = r0 + dr, c0 + dc
                    if 0 <= rr_idx < rows and 0 <= cc_idx < cols and \
                            known[rr_idx, cc_idx]:
                        patch[dr, dc] = out[rr_idx, cc_idx]
                        mask[dr, dc] = True
            weights = gauss * mask.ravel()
            weight_total = weights.sum()
            if weight_total == 0.0:
                continue
            diffs = windows - patch.ravel()[None, :]
            ssd = (diffs * diffs) @ weights / weight_total
            best = ssd.min()
            candidates = np.nonzero(ssd <= best * (1.0 + error_tolerance)
                                    + 1e-12)[0]
            pick = int(candidates[rng.integers(0, candidates.size)])
            out[r, c] = centers[pick]
            known[r, c] = True
            synthesized += 1
    return EfrosLeungResult(
        texture=out,
        seed_box=(or0, oc0, seed_side),
        pixels_synthesized=synthesized,
    )


def _best_frontier(known: np.ndarray) -> Optional[Tuple[int, int]]:
    """Unknown pixel adjacent to known pixels, maximizing known neighbours."""
    rows, cols = known.shape
    padded = np.zeros((rows + 2, cols + 2), dtype=np.int64)
    padded[1:-1, 1:-1] = known
    neighbour_count = (
        padded[:-2, :-2] + padded[:-2, 1:-1] + padded[:-2, 2:]
        + padded[1:-1, :-2] + padded[1:-1, 2:]
        + padded[2:, :-2] + padded[2:, 1:-1] + padded[2:, 2:]
    )
    neighbour_count[known] = -1
    best = int(neighbour_count.argmax())
    if neighbour_count.flat[best] <= 0:
        return None
    return divmod(best, cols)
