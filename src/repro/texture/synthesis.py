"""Iterative statistic-matching texture synthesis.

Starting from seeded noise, each iteration alternately imposes the
exemplar's statistics (the Portilla-Simoncelli projection loop):

1. spectral magnitude (full autocorrelation) — ``MatrixOps``;
2. per-band variance via pyramid-domain rescaling — ``Sampling``;
3. pixel moments and the exact intensity histogram — ``Kurtosis`` /
   ``Sampling``.

Convergence is tracked by :meth:`TextureStatistics.distance`; for
stochastic exemplars a handful of iterations reaches a small residual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from .decompose import build_pyramid, reconstruct
from .stats import TextureStatistics, analyze, moments


@dataclass(frozen=True)
class SynthesisResult:
    """Synthesized texture plus the per-iteration statistic residuals."""

    texture: np.ndarray
    residuals: List[float]
    target: TextureStatistics

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("inf")


def match_histogram(values: np.ndarray, sorted_target: np.ndarray) -> np.ndarray:
    """Exact histogram transfer: rank-map ``values`` onto the target.

    The target array must be sorted ascending.  Sizes may differ; target
    quantiles are interpolated.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    order = np.argsort(flat, kind="stable")
    n = flat.size
    positions = (np.arange(n) + 0.5) / n
    source_quantiles = np.interp(
        positions,
        (np.arange(sorted_target.size) + 0.5) / sorted_target.size,
        sorted_target,
    )
    out = np.empty(n)
    out[order] = source_quantiles
    return out.reshape(np.asarray(values).shape)


def impose_spectrum(image: np.ndarray, target_magnitude: np.ndarray) -> np.ndarray:
    """Replace the Fourier magnitude, keeping the current phase."""
    image = np.asarray(image, dtype=np.float64)
    mean = image.mean()
    transform = np.fft.rfft2(image - mean)
    magnitude = np.abs(transform)
    phase = np.where(magnitude > 1e-12, transform / np.maximum(magnitude, 1e-12),
                     1.0)
    if target_magnitude.shape != transform.shape:
        raise ValueError("spectrum shape mismatch")
    return np.fft.irfft2(phase * target_magnitude, s=image.shape) + mean


def impose_moments(values: np.ndarray, target: np.ndarray,
                   iterations: int = 3) -> np.ndarray:
    """Match mean/variance exactly, then nudge skew and kurtosis.

    Skew/kurtosis are adjusted with small cubic warps
    ``x + a x^2 + b x^3`` re-standardized each pass — the gradient-style
    correction Portilla-Simoncelli uses, kept first-order.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    t_mean, t_var, t_skew, t_kurt = target
    out = flat.copy()
    for _ in range(iterations):
        current = moments(out)
        std = max(current[1], 1e-18) ** 0.5
        z = (out - current[0]) / std
        skew_gap = t_skew - current[2]
        kurt_gap = t_kurt - current[3]
        out = z + 0.05 * skew_gap * (z**2 - 1.0) + 0.02 * kurt_gap * (
            z**3 - 3.0 * z
        )
    current = moments(out)
    std = max(current[1], 1e-18) ** 0.5
    out = (out - current[0]) / std
    out = out * (max(t_var, 0.0) ** 0.5) + t_mean
    return out.reshape(np.asarray(values).shape)


def synthesize(
    target: TextureStatistics,
    shape: Tuple[int, int],
    n_levels: int = 3,
    n_orientations: int = 4,
    iterations: int = 8,
    seed: int = 0,
    profiler: Optional[KernelProfiler] = None,
) -> SynthesisResult:
    """Synthesize a ``shape`` texture matching ``target`` statistics."""
    profiler = ensure_profiler(profiler)
    rng = np.random.default_rng(seed)
    current = rng.standard_normal(shape)
    residuals: List[float] = []
    for _ in range(iterations):
        # Histogram first: its rank remap perturbs second-order structure,
        # so the spectral/band projections run after it each cycle.
        with profiler.kernel("Sampling"):
            current = match_histogram(current, target.histogram)
        with profiler.kernel("MatrixOps"):
            current = impose_spectrum(current, target.spectrum)
        with profiler.kernel("Sampling"):
            pyramid = build_pyramid(current, n_levels, n_orientations)
            for level_index, target_var in enumerate(target.bandpass_energies):
                if level_index >= len(pyramid.bandpass):
                    break
                band = pyramid.bandpass[level_index]
                band_var = float(((band - band.mean()) ** 2).mean())
                if band_var > 1e-18:
                    pyramid.bandpass[level_index] = band * (
                        (target_var / band_var) ** 0.5
                    )
            current = reconstruct(pyramid, shape)
        with profiler.kernel("Kurtosis"):
            current = impose_moments(current, target.pixel_moments)
        synthesized_stats = analyze(
            current, n_levels, n_orientations, profiler=profiler
        )
        residuals.append(target.distance(synthesized_stats))
    return SynthesisResult(texture=current, residuals=residuals, target=target)


def synthesize_from_exemplar(
    exemplar: np.ndarray,
    out_shape: Optional[Tuple[int, int]] = None,
    n_levels: int = 3,
    n_orientations: int = 4,
    iterations: int = 8,
    seed: int = 0,
    profiler: Optional[KernelProfiler] = None,
) -> SynthesisResult:
    """Analyze an exemplar and synthesize a (possibly larger) texture.

    When ``out_shape`` differs from the exemplar's, the target spectrum
    is resampled to the new shape (magnitudes interpolated), which is how
    the benchmark "constructs a large digital image from a smaller
    portion".
    """
    profiler = ensure_profiler(profiler)
    exemplar = np.asarray(exemplar, dtype=np.float64)
    target = analyze(exemplar, n_levels, n_orientations, profiler=profiler)
    shape = tuple(out_shape) if out_shape is not None else exemplar.shape
    if shape != exemplar.shape:
        from ..imgproc.interpolate import resize

        scale = (shape[0] * shape[1]) / float(exemplar.size)
        spec_shape = (shape[0], shape[1] // 2 + 1)
        target.spectrum = resize(target.spectrum, *spec_shape) * scale
        # Histogram grows by tiling so exact matching has enough samples.
        reps = int(np.ceil(scale))
        target.histogram = np.sort(np.tile(target.histogram, max(1, reps)))
    return synthesize(
        target, shape, n_levels, n_orientations, iterations, seed, profiler
    )
