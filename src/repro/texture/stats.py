"""Texture statistics — the parametric model matched during synthesis.

The statistic set follows Portilla-Simoncelli's structure on our
simplified pyramid:

* pixel-domain marginals: mean, variance, skewness, kurtosis (the
  paper's "kurtosis" hotspot) and the full intensity histogram;
* per-band (scale x orientation) energies and marginals;
* cross-orientation correlation matrices per scale (whose eigenstructure
  is the benchmark's "PCA" kernel);
* low-pass autocorrelation at small lags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..linalg.eigen import jacobi_eigh
from .decompose import OrientedPyramid, build_pyramid


def moments(values: np.ndarray) -> np.ndarray:
    """(mean, variance, skewness, kurtosis) of a sample array.

    Kurtosis is the raw fourth standardized moment (Gaussian = 3).
    Degenerate (zero-variance) inputs report skew 0 and kurtosis 3.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    mean = float(flat.mean())
    centered = flat - mean
    var = float((centered**2).mean())
    if var <= 1e-18:
        return np.array([mean, var, 0.0, 3.0])
    std = var**0.5
    skew = float((centered**3).mean() / std**3)
    kurt = float((centered**4).mean() / var**2)
    return np.array([mean, var, skew, kurt])


def autocorrelation(image: np.ndarray, max_lag: int = 3) -> np.ndarray:
    """Normalized autocorrelation on a ``(2L+1)^2`` lag grid."""
    image = np.asarray(image, dtype=np.float64)
    centered = image - image.mean()
    denom = float((centered**2).sum())
    if denom <= 1e-18:
        return np.zeros((2 * max_lag + 1, 2 * max_lag + 1))
    rows, cols = image.shape
    out = np.zeros((2 * max_lag + 1, 2 * max_lag + 1))
    for dy in range(-max_lag, max_lag + 1):
        for dx in range(-max_lag, max_lag + 1):
            r0, r1 = max(0, dy), min(rows, rows + dy)
            c0, c1 = max(0, dx), min(cols, cols + dx)
            a = centered[r0:r1, c0:c1]
            b = centered[r0 - dy : r1 - dy, c0 - dx : c1 - dx]
            out[dy + max_lag, dx + max_lag] = float((a * b).sum()) / denom
    return out


@dataclass
class TextureStatistics:
    """The full statistic vector for one texture."""

    pixel_moments: np.ndarray  # (4,)
    histogram: np.ndarray  # sorted pixel values (for exact matching)
    band_moments: List[List[np.ndarray]]  # [level][orientation] -> (4,)
    band_energies: List[np.ndarray]  # [level] -> (n_orientations,)
    bandpass_energies: List[float]  # [level] -> unoriented band variance
    cross_correlations: List[np.ndarray]  # [level] -> (K, K)
    principal_axes: List[np.ndarray]  # [level] -> (K, K) eigvecs
    lowpass_autocorr: np.ndarray
    spectrum: np.ndarray  # |FFT| of the (normalized) texture

    def distance(self, other: "TextureStatistics") -> float:
        """Scale-balanced L2 distance over the statistic vector.

        Used as the synthesis convergence metric and by the tests.
        """
        terms = [
            float(np.abs(self.pixel_moments - other.pixel_moments).sum()),
            float(
                np.abs(self.lowpass_autocorr - other.lowpass_autocorr).mean()
            ),
        ]
        # Energy terms are normalized by the texture's dominant band
        # energy, not per level: near-zero fine bands of smooth textures
        # would otherwise blow up the relative error meaninglessly.
        energy_scale = max(
            (float(np.abs(e).max()) for e in other.band_energies),
            default=0.0,
        )
        energy_scale = max(energy_scale, 1e-12)
        for mine, theirs in zip(self.band_energies, other.band_energies):
            terms.append(float(np.abs(mine - theirs).mean()) / energy_scale)
        lp_scale = max((abs(e) for e in other.bandpass_energies),
                       default=0.0)
        lp_scale = max(lp_scale, 1e-12)
        for mine_e, theirs_e in zip(self.bandpass_energies,
                                    other.bandpass_energies):
            terms.append(abs(mine_e - theirs_e) / lp_scale)
        for mine_l, theirs_l in zip(self.cross_correlations,
                                    other.cross_correlations):
            terms.append(float(np.abs(mine_l - theirs_l).mean()))
        return float(sum(terms))


def analyze(
    image: np.ndarray,
    n_levels: int = 3,
    n_orientations: int = 4,
    max_lag: int = 3,
    profiler: Optional[KernelProfiler] = None,
    pyramid: Optional[OrientedPyramid] = None,
) -> TextureStatistics:
    """Measure the full statistic set of ``image``."""
    profiler = ensure_profiler(profiler)
    image = np.asarray(image, dtype=np.float64)
    if pyramid is None:
        with profiler.kernel("Sampling"):
            pyramid = build_pyramid(image, n_levels, n_orientations)
    with profiler.kernel("Kurtosis"):
        pixel_moments = moments(image)
        band_moments = [
            [moments(band) for band in level] for level in pyramid.bands
        ]
    with profiler.kernel("MatrixOps"):
        band_energies = [
            np.array([float((band**2).mean()) for band in level])
            for level in pyramid.bands
        ]
        bandpass_energies = [
            float(((band - band.mean()) ** 2).mean())
            for band in pyramid.bandpass
        ]
        cross = []
        for level in pyramid.bands:
            stacked = np.stack([band.ravel() for band in level])
            corr = (stacked @ stacked.T) / stacked.shape[1]
            cross.append(corr)
        lowpass_autocorr = autocorrelation(pyramid.lowpass, max_lag)
        spectrum = np.abs(np.fft.rfft2(image - image.mean()))
    with profiler.kernel("PCA"):
        principal_axes = []
        for corr in cross:
            _values, vectors = jacobi_eigh(corr)
            principal_axes.append(vectors)
    return TextureStatistics(
        pixel_moments=pixel_moments,
        histogram=np.sort(image.ravel()),
        band_moments=band_moments,
        band_energies=band_energies,
        bandpass_energies=bandpass_energies,
        cross_correlations=cross,
        principal_axes=principal_axes,
        lowpass_autocorr=lowpass_autocorr,
        spectrum=spectrum,
    )
