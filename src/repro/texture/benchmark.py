"""Benchmark wiring for the Texture Synthesis application."""

from __future__ import annotations

from typing import List, Mapping

from ..core.dataflow import Chain, Op, ParMap, Reduce, Seq
from ..core.inputs import texture_sample
from ..core.profiler import KernelProfiler
from ..core.registry import Benchmark
from ..core.types import (
    Characteristic,
    ConcentrationArea,
    InputSize,
    KernelInfo,
    ParallelismClass,
    ParallelismEstimate,
)
from .synthesis import synthesize_from_exemplar

N_LEVELS = 3
N_ORIENTATIONS = 4
ITERATIONS = 6

KERNELS = (
    KernelInfo("Sampling", "pyramid analysis/synthesis and histogram "
               "matching", ParallelismClass.TLP),
    KernelInfo("MatrixOps", "spectral imposition and band correlations",
               ParallelismClass.DLP),
    KernelInfo("Kurtosis", "higher-order moment measurement/adjustment",
               ParallelismClass.DLP),
    KernelInfo("PCA", "cross-band correlation eigenstructure",
               ParallelismClass.ILP),
)


def setup(size: InputSize, variant: int):
    """Build the exemplar texture (untimed).

    The exemplar alternates class by variant parity, mirroring the
    paper's stochastic/structural test-image split.
    """
    kind = "stochastic" if variant % 2 == 0 else "structural"
    return (texture_sample(size, variant, kind=kind), kind, variant)


def run(workload, profiler: KernelProfiler) -> Mapping[str, object]:
    """Analyze a prepared exemplar and synthesize a matching texture.

    As in the paper, the iteration count is fixed, so runtime barely
    moves across texture classes.
    """
    exemplar, kind, variant = workload
    result = synthesize_from_exemplar(
        exemplar,
        out_shape=exemplar.shape,
        n_levels=N_LEVELS,
        n_orientations=N_ORIENTATIONS,
        iterations=ITERATIONS,
        seed=variant,
        profiler=profiler,
    )
    return {
        "kind": kind,
        "final_residual": result.final_residual,
        "initial_residual": result.residuals[0],
    }


def parallelism_models(size: InputSize) -> List[ParallelismEstimate]:
    """Work/span models for the texture kernels.

    Texture synthesis is not in Table IV; section III calls it "an
    interesting example of TLP, where each thread exploits ILP".  The
    iteration loop is inherently serial (each projection feeds the next),
    bounding overall parallelism to what one iteration exposes.
    """
    side = max(32, min(size.height, size.width) // 2)
    pixels = side * side
    per_iter_sampling = Seq(
        ParMap(N_LEVELS * N_ORIENTATIONS, ParMap(pixels, Op(25))),
        ParMap(pixels, Op(6)),
    )
    sampling = Chain(ITERATIONS, per_iter_sampling)
    matrix_ops = Chain(
        ITERATIONS,
        Seq(ParMap(pixels, Op(10)), ParMap(N_ORIENTATIONS**2, Reduce(pixels))),
    )
    kurtosis = Chain(ITERATIONS, Seq(ParMap(pixels, Op(6)), Reduce(pixels)))
    pca = Chain(ITERATIONS * N_LEVELS, Chain(N_ORIENTATIONS**2, Op(12)))
    estimates = []
    for name, model in (
        ("Sampling", sampling),
        ("MatrixOps", matrix_ops),
        ("Kurtosis", kurtosis),
        ("PCA", pca),
    ):
        info = next(k for k in KERNELS if k.name == name)
        estimates.append(
            ParallelismEstimate(
                benchmark="texture",
                kernel=name,
                parallelism=model.parallelism,
                parallelism_class=info.parallelism_class,
                work=model.work,
                span=model.span,
            )
        )
    return estimates


BENCHMARK = Benchmark(
    name="Texture Synthesis",
    slug="texture",
    area=ConcentrationArea.IMAGE_PROCESSING_FORMATION,
    description="Construct a large digital image from a smaller portion by "
    "utilizing features of its structural content",
    characteristic=Characteristic.COMPUTE_INTENSIVE,
    application_domain="Computational photography and movie making",
    kernels=KERNELS,
    setup=setup,
    run=run,
    parallelism=parallelism_models,
)
