"""Pixel-affinity graphs on image grids — the "Adjacency matrix" kernel.

Normalized cuts views the image as a weighted graph: nodes are pixels,
edges connect pixels within a spatial radius, and weights combine
intensity similarity and spatial proximity:

    w(p, q) = exp(-(I_p - I_q)^2 / sigma_i^2) * exp(-|p - q|^2 / sigma_x^2)

Storing the full n x n matrix is quadratic in pixels, so the graph is kept
in *stencil* form: one weight plane per neighbour offset.  That preserves
the suite's computation (every pixel-pair weight within the radius is
still evaluated) while making ``W @ v`` a handful of shifted multiplies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


def stencil_offsets(radius: int) -> List[Tuple[int, int]]:
    """Unique half-plane offsets within a Euclidean ``radius``.

    Only one of each (+o, -o) pair is listed; symmetry supplies the other.
    The ordering is deterministic (row-major).
    """
    if radius < 1:
        raise ValueError("radius must be >= 1")
    offsets = []
    for dy in range(0, radius + 1):
        for dx in range(-radius, radius + 1):
            if dy == 0 and dx <= 0:
                continue  # half-plane: skip self and mirrored duplicates
            if dy * dy + dx * dx <= radius * radius:
                offsets.append((dy, dx))
    return offsets


@dataclass
class GridAffinity:
    """Symmetric pixel-affinity operator in stencil form.

    ``planes[i][r, c]`` is the weight between pixel ``(r, c)`` and pixel
    ``(r + dy_i, c + dx_i)`` (zero where the neighbour falls outside).
    """

    shape: Tuple[int, int]
    offsets: List[Tuple[int, int]]
    planes: List[np.ndarray]

    @property
    def n_nodes(self) -> int:
        return self.shape[0] * self.shape[1]

    def matvec(self, vec: np.ndarray) -> np.ndarray:
        """Apply ``W`` to a flat vector of length ``n_nodes``."""
        grid = np.asarray(vec, dtype=np.float64).reshape(self.shape)
        out = np.zeros(self.shape)
        for (dy, dx), plane in zip(self.offsets, self.planes):
            src = _slice_pair(self.shape, dy, dx)
            dst = _slice_pair(self.shape, -dy, -dx)
            w = plane[src]
            out[src] += w * grid[dst]
            out[dst] += w * grid[src]
        return out.ravel()

    def degrees(self) -> np.ndarray:
        """Row sums of ``W`` (node degrees), flat."""
        return self.matvec(np.ones(self.n_nodes))

    def dense(self) -> np.ndarray:
        """Materialize the full symmetric matrix (tests/small grids only)."""
        n = self.n_nodes
        if n > 4096:
            raise ValueError(f"refusing to densify a {n}-node affinity")
        rows, cols = self.shape
        out = np.zeros((n, n))
        for (dy, dx), plane in zip(self.offsets, self.planes):
            for r in range(rows):
                for c in range(cols):
                    r2, c2 = r + dy, c + dx
                    if 0 <= r2 < rows and 0 <= c2 < cols:
                        i, j = r * cols + c, r2 * cols + c2
                        out[i, j] = plane[r, c]
                        out[j, i] = plane[r, c]
        return out


def _slice_pair(shape: Tuple[int, int], dy: int, dx: int):
    """Region of pixels whose ``(dy, dx)`` neighbour is inside ``shape``."""
    rows, cols = shape
    rs = slice(max(0, -dy), rows - max(0, dy))
    cs = slice(max(0, -dx), cols - max(0, dx))
    return rs, cs


def build_affinity(
    image: np.ndarray,
    radius: int = 3,
    sigma_intensity: float = 0.08,
    sigma_spatial: float = 4.0,
) -> GridAffinity:
    """Construct the intensity/proximity affinity of a grayscale image."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if sigma_intensity <= 0 or sigma_spatial <= 0:
        raise ValueError("sigmas must be positive")
    shape = image.shape
    offsets = stencil_offsets(radius)
    planes = []
    inv_si2 = 1.0 / (sigma_intensity * sigma_intensity)
    inv_sx2 = 1.0 / (sigma_spatial * sigma_spatial)
    for dy, dx in offsets:
        plane = np.zeros(shape)
        src = _slice_pair(shape, dy, dx)
        dst = _slice_pair(shape, -dy, -dx)
        diff = image[src] - image[dst]
        spatial = (dy * dy + dx * dx) * inv_sx2
        plane[src] = np.exp(-diff * diff * inv_si2 - spatial)
        planes.append(plane)
    return GridAffinity(shape=shape, offsets=offsets, planes=planes)
