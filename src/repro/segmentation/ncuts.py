"""Normalized cuts segmentation (Shi & Malik) with Yu-Shi discretization.

Pipeline and kernel attribution (paper Figure 3 legend):

* ``Filterbanks`` — pre-smoothing and working-resolution reduction.
* ``Adjacencymatrix`` — pixel-pair affinity construction.
* ``Eigensolve`` — Lanczos for the smallest eigenvectors of the
  normalized Laplacian ``I - D^{-1/2} W D^{-1/2}``.
* ``QRfactorizations`` — the discretization loop, which alternates label
  assignment with orthogonal-rotation fitting via SVD (the suite's
  QR/orthogonalization stage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.filters import gaussian_blur
from ..imgproc.interpolate import resize
from ..linalg.decompose import svd_jacobi
from ..linalg.eigen import smallest_eigenvectors_operator
from .graph import GridAffinity, build_affinity


@dataclass(frozen=True)
class SegmentationResult:
    """Labels on the working grid and upsampled to the input image."""

    labels: np.ndarray  # full-resolution labels (input image shape)
    grid_labels: np.ndarray  # labels on the working grid
    eigenvectors: np.ndarray  # (n_nodes, n_segments) embedding
    n_segments: int


def normalized_embedding(
    affinity: GridAffinity,
    n_vectors: int,
    seed: int = 0,
    profiler: Optional[KernelProfiler] = None,
) -> np.ndarray:
    """Rows of ``D^{-1/2} x`` for the smallest Laplacian eigenvectors.

    Returns an ``(n_nodes, n_vectors)`` embedding whose rows cluster by
    segment; the trivial constant eigenvector is included (it carries no
    cluster information but keeps the discretization well-posed, as in
    the reference implementation).
    """
    profiler = ensure_profiler(profiler)
    degrees = affinity.degrees()
    degrees = np.maximum(degrees, 1e-12)
    inv_sqrt_d = 1.0 / np.sqrt(degrees)

    def laplacian_matvec(vec: np.ndarray) -> np.ndarray:
        return vec - inv_sqrt_d * affinity.matvec(inv_sqrt_d * vec)

    with profiler.kernel("Eigensolve"):
        _values, vectors = smallest_eigenvectors_operator(
            laplacian_matvec, affinity.n_nodes, n_vectors, seed=seed,
            scale=2.0,
        )
    return inv_sqrt_d[:, None] * vectors


def discretize(
    embedding: np.ndarray,
    seed: int = 0,
    max_iterations: int = 30,
    profiler: Optional[KernelProfiler] = None,
) -> np.ndarray:
    """Yu-Shi discretization: rotate the embedding onto indicator vectors.

    Alternates (a) hard label assignment ``argmax(X R)`` with (b) fitting
    the best orthogonal rotation ``R`` via SVD of ``X^T N`` where ``N`` is
    the normalized indicator matrix.  Converges in a few iterations.
    """
    profiler = ensure_profiler(profiler)
    x = np.asarray(embedding, dtype=np.float64)
    n, k = x.shape
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    x = x / np.maximum(norms, 1e-12)
    rng = np.random.default_rng(seed)
    # Initialize R from k well-separated rows (furthest-point style).
    rotation = np.zeros((k, k))
    idx = int(rng.integers(0, n))
    rotation[:, 0] = x[idx]
    accum = np.zeros(n)
    for j in range(1, k):
        accum += np.abs(x @ rotation[:, j - 1])
        rotation[:, j] = x[int(np.argmin(accum))]
    labels = np.zeros(n, dtype=np.int64)
    with profiler.kernel("QRfactorizations"):
        last_objective = None
        for _ in range(max_iterations):
            scores = x @ rotation
            labels = np.argmax(scores, axis=1)
            indicator = np.zeros((n, k))
            indicator[np.arange(n), labels] = 1.0
            col_norm = np.linalg.norm(indicator, axis=0)
            indicator /= np.maximum(col_norm, 1e-12)
            u, s, vt = svd_jacobi(x.T @ indicator)
            objective = float(s.sum())
            rotation = u @ vt
            if last_objective is not None and abs(objective - last_objective) < 1e-10:
                break
            last_objective = objective
    return labels


def working_resolution(shape: Tuple[int, int],
                       max_nodes: int = 2400) -> Tuple[int, int]:
    """Shrink ``shape`` proportionally so the graph has <= ``max_nodes``."""
    rows, cols = shape
    nodes = rows * cols
    if nodes <= max_nodes:
        return shape
    factor = (max_nodes / nodes) ** 0.5
    return max(8, int(rows * factor)), max(8, int(cols * factor))


def segment_image(
    image: np.ndarray,
    n_segments: int = 4,
    radius: int = 3,
    sigma_intensity: float = 0.08,
    sigma_spatial: float = 4.0,
    max_nodes: int = 2400,
    seed: int = 0,
    profiler: Optional[KernelProfiler] = None,
) -> SegmentationResult:
    """Segment a grayscale image into ``n_segments`` regions.

    The image is smoothed and reduced to a working grid of at most
    ``max_nodes`` pixels (graph nodes), segmented there, and the labels
    are nearest-neighbour upsampled back to the input resolution.
    """
    profiler = ensure_profiler(profiler)
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if n_segments < 2:
        raise ValueError("n_segments must be >= 2")
    with profiler.kernel("Filterbanks"):
        smooth = gaussian_blur(image, 1.0)
        work_shape = working_resolution(image.shape, max_nodes)
        working = (
            resize(smooth, *work_shape) if work_shape != image.shape else smooth
        )
    with profiler.kernel("Adjacencymatrix"):
        affinity = build_affinity(
            working, radius=radius,
            sigma_intensity=sigma_intensity, sigma_spatial=sigma_spatial,
        )
    embedding = normalized_embedding(affinity, n_segments, seed=seed,
                                     profiler=profiler)
    grid_labels = discretize(embedding, seed=seed, profiler=profiler).reshape(
        work_shape
    )
    rows, cols = image.shape
    rr = np.minimum(
        (np.arange(rows) * work_shape[0] // rows), work_shape[0] - 1
    )
    cc = np.minimum(
        (np.arange(cols) * work_shape[1] // cols), work_shape[1] - 1
    )
    labels = grid_labels[np.ix_(rr, cc)]
    return SegmentationResult(
        labels=labels,
        grid_labels=grid_labels,
        eigenvectors=embedding,
        n_segments=n_segments,
    )


def label_purity(predicted: np.ndarray, truth: np.ndarray) -> float:
    """Clustering purity: fraction of pixels in majority-truth agreement.

    Permutation-invariant quality metric used by the tests (predicted
    label ids need not match truth ids).
    """
    predicted = np.asarray(predicted).ravel()
    truth = np.asarray(truth).ravel()
    if predicted.shape != truth.shape:
        raise ValueError("shape mismatch")
    total = 0
    for label in np.unique(predicted):
        members = truth[predicted == label]
        if members.size:
            counts = np.bincount(members)
            total += int(counts.max())
    return total / predicted.size
