"""Benchmark wiring for the Image Segmentation (normalized cuts) application."""

from __future__ import annotations

from typing import List, Mapping

from ..core.dataflow import Chain, Op, ParMap, Reduce, Seq
from ..core.inputs import segmentation_image
from ..core.profiler import KernelProfiler
from ..core.registry import Benchmark
from ..core.types import (
    Characteristic,
    ConcentrationArea,
    InputSize,
    KernelInfo,
    ParallelismClass,
    ParallelismEstimate,
)
from .graph import stencil_offsets
from .ncuts import label_purity, segment_image, working_resolution

N_SEGMENTS = 4
RADIUS = 3
MAX_NODES = 2400

KERNELS = (
    KernelInfo("Adjacencymatrix", "pixel-pair affinity construction",
               ParallelismClass.ILP),
    KernelInfo("Eigensolve", "Lanczos on the normalized Laplacian",
               ParallelismClass.ILP),
    KernelInfo("QRfactorizations", "discretization rotation fitting",
               ParallelismClass.ILP),
    KernelInfo("Filterbanks", "pre-smoothing and resolution reduction",
               ParallelismClass.DLP),
)


def setup(size: InputSize, variant: int):
    """Build the synthetic region image (untimed)."""
    return segmentation_image(size, variant, n_regions=N_SEGMENTS)


def run(workload, profiler: KernelProfiler) -> Mapping[str, object]:
    """Segment a prepared region image and score against ground truth."""
    image, truth = workload
    result = segment_image(
        image, n_segments=N_SEGMENTS, radius=RADIUS, max_nodes=MAX_NODES,
        profiler=profiler,
    )
    return {
        "purity": label_purity(result.labels, truth),
        "n_segments": result.n_segments,
    }


def parallelism_models(size: InputSize) -> List[ParallelismEstimate]:
    """Work/span models for the segmentation kernels.

    The paper reports segmentation's parallelism as modest (its Table IV
    omits the benchmark; section III calls the similarity matrix "a
    classic candidate for ILP" with low DLP): the eigensolve's Lanczos
    recurrence and the discretization's iteration are serial chains with
    only intra-step parallelism.
    """
    work_shape = working_resolution(size.shape, MAX_NODES)
    nodes = work_shape[0] * work_shape[1]
    n_offsets = len(stencil_offsets(RADIUS))
    adjacency = ParMap(nodes * n_offsets, Op(6))
    # Lanczos: ~60 serial steps, each a matvec (parallel) + dot (tree).
    lanczos_step = Seq(ParMap(n_offsets * 2, Op(2)), Reduce(nodes))
    eigensolve = Chain(60, lanczos_step)
    # Discretization: ~10 serial rounds of assign (parallel) + small SVD.
    qr_round = Seq(ParMap(nodes, Op(2 * N_SEGMENTS)), Chain(N_SEGMENTS**2, Op(8)))
    qr = Chain(10, qr_round)
    filterbanks = ParMap(size.pixels, Op(14))
    estimates = []
    for name, model in (
        ("Adjacencymatrix", adjacency),
        ("Eigensolve", eigensolve),
        ("QRfactorizations", qr),
        ("Filterbanks", filterbanks),
    ):
        info = next(k for k in KERNELS if k.name == name)
        estimates.append(
            ParallelismEstimate(
                benchmark="segmentation",
                kernel=name,
                parallelism=model.parallelism,
                parallelism_class=info.parallelism_class,
                work=model.work,
                span=model.span,
            )
        )
    return estimates


BENCHMARK = Benchmark(
    name="Image Segmentation",
    slug="segmentation",
    area=ConcentrationArea.IMAGE_ANALYSIS,
    description="Dividing an image into conceptual regions",
    characteristic=Characteristic.COMPUTE_INTENSIVE,
    application_domain="Medical imaging, computational photography",
    kernels=KERNELS,
    setup=setup,
    run=run,
    parallelism=parallelism_models,
    in_figure2=True,
)
