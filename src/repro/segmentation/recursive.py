"""Recursive two-way normalized cuts — the original Shi-Malik strategy.

The benchmark's main path partitions into k segments at once via the
Yu-Shi discretization (:func:`repro.segmentation.ncuts.segment_image`).
Shi & Malik's original algorithm instead recursively bipartitions: find
the Fiedler vector of the normalized Laplacian, split at the threshold
minimizing the Ncut objective, and recurse into the larger pieces.

Provided as a baseline so the design choice can be measured (the
ablation bench compares quality and cost of the two strategies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.filters import gaussian_blur
from ..imgproc.interpolate import resize
from ..linalg.eigen import smallest_eigenvectors_operator
from .graph import GridAffinity, build_affinity
from .ncuts import working_resolution


@dataclass(frozen=True)
class RecursiveSegmentation:
    """Labels plus the ncut value of every accepted split."""

    labels: np.ndarray
    grid_labels: np.ndarray
    cut_values: List[float]


def ncut_value(affinity: GridAffinity, mask: np.ndarray) -> float:
    """Normalized-cut objective of a bipartition given a boolean mask.

    ``Ncut(A, B) = cut(A,B)/assoc(A,V) + cut(A,B)/assoc(B,V)``.
    """
    mask = np.asarray(mask, dtype=bool).ravel()
    if mask.size != affinity.n_nodes:
        raise ValueError("mask size mismatch")
    indicator = mask.astype(np.float64)
    degrees = affinity.degrees()
    w_indicator = affinity.matvec(indicator)
    cut = float(((1.0 - indicator) * w_indicator).sum())
    assoc_a = float((degrees * indicator).sum())
    assoc_b = float((degrees * (1.0 - indicator)).sum())
    if assoc_a <= 0.0 or assoc_b <= 0.0:
        return float("inf")
    return cut / assoc_a + cut / assoc_b


def fiedler_split(
    affinity: GridAffinity,
    node_subset: np.ndarray,
    seed: int = 0,
    n_thresholds: int = 16,
) -> Optional[np.ndarray]:
    """Best-Ncut bipartition of ``node_subset`` via the Fiedler vector.

    Builds the subgraph operator restricted to the subset, computes the
    second-smallest Laplacian eigenvector, and scans candidate thresholds
    for the split minimizing the subgraph's Ncut.  Returns the boolean
    side assignment over the subset, or ``None`` when no proper split
    exists.
    """
    subset = np.asarray(node_subset)
    n_sub = subset.size
    if n_sub < 4:
        return None
    # Restriction of W to the subset via masked matvec.
    mask = np.zeros(affinity.n_nodes)
    mask[subset] = 1.0

    def sub_matvec(vec: np.ndarray) -> np.ndarray:
        full = np.zeros(affinity.n_nodes)
        full[subset] = vec
        return affinity.matvec(full * mask)[subset]

    degrees = sub_matvec(np.ones(n_sub))
    degrees = np.maximum(degrees, 1e-12)
    inv_sqrt_d = 1.0 / np.sqrt(degrees)

    def laplacian(vec: np.ndarray) -> np.ndarray:
        return vec - inv_sqrt_d * sub_matvec(inv_sqrt_d * vec)

    _values, vectors = smallest_eigenvectors_operator(
        laplacian, n_sub, 2, seed=seed, scale=2.0,
        max_krylov=min(n_sub, 200),
    )
    fiedler = inv_sqrt_d * vectors[:, 1]
    candidates = np.quantile(
        fiedler, np.linspace(0.05, 0.95, n_thresholds)
    )
    best_mask: Optional[np.ndarray] = None
    best_value = float("inf")
    sub_affinity_mask = np.zeros(affinity.n_nodes, dtype=bool)
    for threshold in candidates:
        side = fiedler > threshold
        if side.all() or not side.any():
            continue
        sub_affinity_mask[:] = False
        sub_affinity_mask[subset[side]] = True
        # Evaluate the cut within the subgraph only: treat nodes outside
        # the subset as absent by restricting assoc to subset degrees.
        value = _subgraph_ncut(affinity, subset, side)
        if value < best_value:
            best_value = value
            best_mask = side.copy()
    if best_mask is None:
        return None
    return best_mask


def _subgraph_ncut(affinity: GridAffinity, subset: np.ndarray,
                   side: np.ndarray) -> float:
    full_a = np.zeros(affinity.n_nodes)
    full_b = np.zeros(affinity.n_nodes)
    full_a[subset[side]] = 1.0
    full_b[subset[~side]] = 1.0
    w_a = affinity.matvec(full_a)
    cut = float((full_b * w_a).sum())
    assoc_a = float((full_a * affinity.matvec(full_a + full_b)).sum())
    assoc_b = float((full_b * affinity.matvec(full_a + full_b)).sum())
    if assoc_a <= 0.0 or assoc_b <= 0.0:
        return float("inf")
    return cut / assoc_a + cut / assoc_b


def segment_recursive(
    image: np.ndarray,
    n_segments: int = 4,
    radius: int = 3,
    sigma_intensity: float = 0.08,
    sigma_spatial: float = 4.0,
    max_nodes: int = 2400,
    seed: int = 0,
    profiler: Optional[KernelProfiler] = None,
) -> RecursiveSegmentation:
    """Segment by repeated two-way cuts until ``n_segments`` pieces exist.

    The largest current segment is always split next (Shi-Malik recurse
    into "the" partition with greatest within-variation, approximated by
    size here).
    """
    profiler = ensure_profiler(profiler)
    image = np.asarray(image, dtype=np.float64)
    if n_segments < 2:
        raise ValueError("n_segments must be >= 2")
    with profiler.kernel("Filterbanks"):
        smooth = gaussian_blur(image, 1.0)
        work_shape = working_resolution(image.shape, max_nodes)
        working = (
            resize(smooth, *work_shape) if work_shape != image.shape
            else smooth
        )
    with profiler.kernel("Adjacencymatrix"):
        affinity = build_affinity(
            working, radius=radius,
            sigma_intensity=sigma_intensity, sigma_spatial=sigma_spatial,
        )
    labels = np.zeros(affinity.n_nodes, dtype=np.int64)
    cut_values: List[float] = []
    next_label = 1
    with profiler.kernel("Eigensolve"):
        while next_label < n_segments:
            # Split the largest segment.
            sizes = np.bincount(labels, minlength=next_label)
            target = int(np.argmax(sizes))
            subset = np.nonzero(labels == target)[0]
            side = fiedler_split(affinity, subset, seed=seed)
            if side is None:
                break
            labels[subset[side]] = next_label
            cut_values.append(_subgraph_ncut(affinity, subset, side))
            next_label += 1
    grid_labels = labels.reshape(work_shape)
    rows, cols = image.shape
    rr = np.minimum(np.arange(rows) * work_shape[0] // rows,
                    work_shape[0] - 1)
    cc = np.minimum(np.arange(cols) * work_shape[1] // cols,
                    work_shape[1] - 1)
    return RecursiveSegmentation(
        labels=grid_labels[np.ix_(rr, cc)],
        grid_labels=grid_labels,
        cut_values=cut_values,
    )
