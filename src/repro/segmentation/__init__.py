"""Image Segmentation: normalized cuts on pixel-affinity graphs."""

from .benchmark import BENCHMARK, KERNELS, MAX_NODES, N_SEGMENTS, RADIUS
from .graph import GridAffinity, build_affinity, stencil_offsets
from .recursive import (
    RecursiveSegmentation,
    fiedler_split,
    ncut_value,
    segment_recursive,
)
from .ncuts import (
    SegmentationResult,
    discretize,
    label_purity,
    normalized_embedding,
    segment_image,
    working_resolution,
)

__all__ = [
    "BENCHMARK",
    "KERNELS",
    "MAX_NODES",
    "N_SEGMENTS",
    "RADIUS",
    "GridAffinity",
    "RecursiveSegmentation",
    "SegmentationResult",
    "build_affinity",
    "discretize",
    "fiedler_split",
    "label_purity",
    "ncut_value",
    "normalized_embedding",
    "segment_image",
    "segment_recursive",
    "stencil_offsets",
    "working_resolution",
]
