"""Patch descriptors and feature matching for image stitch.

Descriptors are 8x8 intensity patches sampled on a stride-2 grid from the
blurred image (MOPS-style), normalized to zero mean / unit variance so
matching is exposure-invariant.  Matching uses the Lowe ratio test on
squared Euclidean distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.backend import register_kernel
from ..core.metrics import FLOAT_BYTES, WorkEstimate
from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.filters import gaussian_blur
from ..imgproc.interpolate import bilinear
from .corners import Corner

PATCH_SIDE = 8
PATCH_STRIDE = 2


@dataclass(frozen=True)
class DescribedCorner:
    """A corner plus its normalized patch descriptor."""

    corner: Corner
    descriptor: np.ndarray  # (PATCH_SIDE * PATCH_SIDE,)


def describe_corners(
    image: np.ndarray,
    corners: Sequence[Corner],
    profiler: Optional[KernelProfiler] = None,
) -> List[DescribedCorner]:
    """Sample normalized patches around each corner."""
    profiler = ensure_profiler(profiler)
    image = np.asarray(image, dtype=np.float64)
    with profiler.kernel("Convolution"):
        smooth = gaussian_blur(image, 1.5)
    described = []
    half_extent = PATCH_SIDE * PATCH_STRIDE / 2.0
    offsets = (
        np.arange(PATCH_SIDE) * PATCH_STRIDE - half_extent + PATCH_STRIDE / 2.0
    )
    for corner in corners:
        rr, cc = np.meshgrid(
            corner.row + offsets, corner.col + offsets, indexing="ij"
        )
        patch = bilinear(smooth, rr, cc).ravel()
        patch = patch - patch.mean()
        std = patch.std()
        if std > 1e-9:
            patch = patch / std
        described.append(DescribedCorner(corner=corner, descriptor=patch))
    return described


def _work_match_distances(a: np.ndarray, b: np.ndarray) -> WorkEstimate:
    """All-pairs squared distances: ~2 flops per (pair, dimension);
    read both descriptor sets, write the n x m distance matrix."""
    n, dim = np.shape(a)
    m = np.shape(b)[0]
    return WorkEstimate(
        flops=float(n) * float(m) * (2.0 * dim + 3.0),
        traffic_bytes=FLOAT_BYTES * (float(n) * dim + float(m) * dim
                                     + float(n) * float(m)),
    )


def _match_distances_ref(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Loop-faithful descriptor correlation: one scalar accumulation of
    ``sum((a_i - b_j)^2)`` per candidate pair (the C suite's match loop).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n, m = a.shape[0], b.shape[0]
    dim = a.shape[1]
    d2 = np.empty((n, m), dtype=np.float64)
    for i in range(n):
        for j in range(m):
            acc = 0.0
            for k in range(dim):
                diff = a[i, k] - b[j, k]
                acc += diff * diff
            d2[i, j] = acc
    return d2


@register_kernel(
    "stitch.match_distances",
    paper_kernel="Correlation (descriptor matching)",
    apps=("stitch", "sift"),
    ref=_match_distances_ref,
    rtol=1e-8,
    atol=1e-9,
    work=_work_match_distances,
)
def match_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs squared Euclidean distances between descriptor rows.

    Vectorized via the expansion ``|x-y|^2 = |x|^2 + |y|^2 - 2 x.y`` —
    a reassociated (and cancellation-prone) form of the reference's
    direct difference accumulation, hence the looser tolerance.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return (
        (a * a).sum(axis=1)[:, None]
        + (b * b).sum(axis=1)[None, :]
        - 2.0 * (a @ b.T)
    )


def match_features(
    first: Sequence[DescribedCorner],
    second: Sequence[DescribedCorner],
    ratio: float = 0.8,
    profiler: Optional[KernelProfiler] = None,
) -> List[Tuple[int, int]]:
    """Ratio-test matches: indices ``(i, j)`` into the two corner lists."""
    profiler = ensure_profiler(profiler)
    if not first or not second:
        return []
    with profiler.kernel("Match"):
        a = np.stack([f.descriptor for f in first])
        b = np.stack([f.descriptor for f in second])
        d2 = match_distances(a, b)
        matches = []
        for i in range(a.shape[0]):
            order = np.argsort(d2[i])
            best = int(order[0])
            if d2.shape[1] >= 2:
                runner = int(order[1])
                if d2[i, best] > ratio * ratio * d2[i, runner]:
                    continue
            matches.append((i, best))
    return matches


def match_points(
    first: Sequence[DescribedCorner],
    second: Sequence[DescribedCorner],
    matches: Sequence[Tuple[int, int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Matched coordinates as ``(n, 2)`` arrays of (row, col)."""
    src = np.array(
        [[first[i].corner.row, first[i].corner.col] for i, _ in matches],
        dtype=np.float64,
    ).reshape(-1, 2)
    dst = np.array(
        [[second[j].corner.row, second[j].corner.col] for _, j in matches],
        dtype=np.float64,
    ).reshape(-1, 2)
    return src, dst
