"""Image Stitch: feature-based alignment, RANSAC registration, blending."""

from .benchmark import BENCHMARK, KERNELS, N_FEATURES, RANSAC_ITERATIONS
from .blend import Panorama, warp_and_blend
from .corners import Corner, anms, detect_corners, harris_response, local_maxima
from .matching import (
    DescribedCorner,
    describe_corners,
    match_features,
    match_points,
)
from .multi import MultiPanorama, compose, register_chain, stitch_strip, strip_views
from .pipeline import StitchResult, registration_error, stitch_pair
from .sift_registration import SiftStitchResult, sift_match_points, stitch_pair_sift
from .ransac import (
    AffineModel,
    RansacResult,
    apply_homography,
    fit_affine,
    fit_translation,
    homography_dlt,
    ransac_affine,
)

__all__ = [
    "BENCHMARK",
    "KERNELS",
    "N_FEATURES",
    "RANSAC_ITERATIONS",
    "AffineModel",
    "Corner",
    "DescribedCorner",
    "MultiPanorama",
    "Panorama",
    "RansacResult",
    "SiftStitchResult",
    "StitchResult",
    "anms",
    "compose",
    "apply_homography",
    "describe_corners",
    "detect_corners",
    "fit_affine",
    "fit_translation",
    "harris_response",
    "homography_dlt",
    "local_maxima",
    "match_features",
    "match_points",
    "ransac_affine",
    "register_chain",
    "registration_error",
    "sift_match_points",
    "stitch_pair",
    "stitch_pair_sift",
    "stitch_strip",
    "strip_views",
]
