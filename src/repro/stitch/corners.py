"""Harris corners with adaptive non-maximal suppression (ANMS).

The stitch benchmark's feature-extraction phase: gradient filtering at
pixel granularity ("Convolution" kernel), a Harris corner response, and
the coarse-grained ANMS selection the paper calls out as the point where
"the regularity in access patterns breaks".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.filters import gaussian_blur
from ..imgproc.gradient import gradient


@dataclass(frozen=True)
class Corner:
    """A corner location with its Harris response."""

    row: int
    col: int
    response: float


def harris_response(
    image: np.ndarray,
    sigma: float = 1.5,
    kappa: float = 0.05,
    profiler: Optional[KernelProfiler] = None,
) -> np.ndarray:
    """Harris corner strength ``det(M) - kappa * trace(M)^2`` per pixel.

    The structure tensor ``M`` is gradient outer products smoothed by a
    Gaussian — all separable filtering, attributed to ``Convolution``.
    """
    profiler = ensure_profiler(profiler)
    image = np.asarray(image, dtype=np.float64)
    with profiler.kernel("Convolution"):
        smooth = gaussian_blur(image, 1.0)
        gx, gy = gradient(smooth)
        sxx = gaussian_blur(gx * gx, sigma)
        sxy = gaussian_blur(gx * gy, sigma)
        syy = gaussian_blur(gy * gy, sigma)
        det = sxx * syy - sxy * sxy
        trace = sxx + syy
        return det - kappa * trace * trace


def local_maxima(response: np.ndarray, border: int = 8,
                 threshold_ratio: float = 0.01) -> List[Corner]:
    """Strict 3x3 local maxima above ``threshold_ratio * max`` response."""
    rows, cols = response.shape
    if rows < 3 or cols < 3:
        return []
    center = response[1:-1, 1:-1]
    is_peak = np.ones(center.shape, dtype=bool)
    for dy in (0, 1, 2):
        for dx in (0, 1, 2):
            if dy == 1 and dx == 1:
                continue
            is_peak &= center > response[dy : rows - 2 + dy, dx : cols - 2 + dx]
    peak_value = float(response.max())
    if peak_value <= 0:
        return []
    is_peak &= center > threshold_ratio * peak_value
    corners = []
    for r, c in zip(*np.nonzero(is_peak)):
        row, col = int(r) + 1, int(c) + 1
        if border <= row < rows - border and border <= col < cols - border:
            corners.append(Corner(row=row, col=col,
                                  response=float(response[row, col])))
    return corners


def anms(corners: List[Corner], n_keep: int = 64,
         robustness: float = 0.9,
         profiler: Optional[KernelProfiler] = None) -> List[Corner]:
    """Adaptive non-maximal suppression (Brown et al.).

    Each corner's suppression radius is its distance to the nearest
    corner that is sufficiently (``1/robustness`` times) stronger; the
    ``n_keep`` corners with the largest radii are kept, giving a
    spatially even spread of strong features.
    """
    profiler = ensure_profiler(profiler)
    if n_keep < 1:
        raise ValueError("n_keep must be positive")
    if not corners:
        return []
    with profiler.kernel("ANMS"):
        pts = np.array([[c.row, c.col] for c in corners], dtype=np.float64)
        resp = np.array([c.response for c in corners])
        n = len(corners)
        radii = np.full(n, np.inf)
        for i in range(n):
            stronger = resp > resp[i] / robustness
            stronger[i] = False
            if stronger.any():
                d2 = ((pts[stronger] - pts[i]) ** 2).sum(axis=1)
                radii[i] = float(d2.min())
        order = np.argsort(radii)[::-1][:n_keep]
    return [corners[int(i)] for i in order]


def detect_corners(
    image: np.ndarray,
    n_keep: int = 64,
    profiler: Optional[KernelProfiler] = None,
) -> List[Corner]:
    """Full corner pipeline: Harris response -> peaks -> ANMS."""
    profiler = ensure_profiler(profiler)
    response = harris_response(image, profiler=profiler)
    candidates = local_maxima(response)
    return anms(candidates, n_keep=n_keep, profiler=profiler)
