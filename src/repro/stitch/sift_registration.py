"""SIFT-based stitch registration — cross-application composition.

The paper notes SIFT's applicability to image stitching ("object
recognition, image stitching, 3D modeling").  This module registers an
image pair using the suite's own SIFT application for features and
descriptors, instead of Harris+patches, demonstrating that the nine
applications compose: the stitch pipeline's RANSAC/blend stages are
reused unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..sift.descriptors import match_descriptors
from ..sift.sift import extract_features
from .blend import Panorama, warp_and_blend
from .ransac import AffineModel, RansacResult, fit_translation, ransac_affine


@dataclass(frozen=True)
class SiftStitchResult:
    """Registration via SIFT features plus the blended panorama."""

    model: AffineModel
    ransac: Optional[RansacResult]
    panorama: Panorama
    n_features: Tuple[int, int]
    n_matches: int


def sift_match_points(
    first: np.ndarray,
    second: np.ndarray,
    n_octaves: int = 2,
    ratio: float = 0.8,
    profiler: Optional[KernelProfiler] = None,
) -> Tuple[np.ndarray, np.ndarray, Tuple[int, int]]:
    """Matched (row, col) correspondences from SIFT features."""
    profiler = ensure_profiler(profiler)
    features_first = extract_features(first, n_octaves=n_octaves,
                                      profiler=profiler).features
    features_second = extract_features(second, n_octaves=n_octaves,
                                       profiler=profiler).features
    matches = match_descriptors(features_first, features_second, ratio=ratio)
    src = np.array(
        [
            [features_first[i].keypoint.row, features_first[i].keypoint.col]
            for i, _ in matches
        ],
        dtype=np.float64,
    ).reshape(-1, 2)
    dst = np.array(
        [
            [features_second[j].keypoint.row,
             features_second[j].keypoint.col]
            for _, j in matches
        ],
        dtype=np.float64,
    ).reshape(-1, 2)
    return src, dst, (len(features_first), len(features_second))


def stitch_pair_sift(
    first: np.ndarray,
    second: np.ndarray,
    n_octaves: int = 2,
    seed: int = 0,
    profiler: Optional[KernelProfiler] = None,
) -> SiftStitchResult:
    """Stitch two images using SIFT correspondences for registration."""
    profiler = ensure_profiler(profiler)
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    src, dst, feature_counts = sift_match_points(
        first, second, n_octaves=n_octaves, profiler=profiler
    )
    ransac_result: Optional[RansacResult] = None
    if src.shape[0] >= 3:
        ransac_result = ransac_affine(src, dst, seed=seed,
                                      profiler=profiler)
        model = ransac_result.model
    elif src.shape[0] >= 1:
        model = fit_translation(src, dst)
    else:
        model = AffineModel.identity()
    panorama = warp_and_blend(first, second, model, profiler=profiler)
    return SiftStitchResult(
        model=model,
        ransac=ransac_result,
        panorama=panorama,
        n_features=feature_counts,
        n_matches=src.shape[0],
    )
