"""Multi-image panoramas: chain pairwise registrations across a strip.

The benchmark stitches one pair; real mosaicing (the paper's motivating
"segmented panorama") composites N overlapping views.  Adjacent pairs are
registered with the same pipeline, transforms are composed into the first
image's frame, and all views are blended onto one canvas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.interpolate import bilinear
from .blend import _feather
from .corners import detect_corners
from .matching import describe_corners, match_features, match_points
from .ransac import AffineModel, ransac_affine


def compose(outer: AffineModel, inner: AffineModel) -> AffineModel:
    """The affine map applying ``inner`` first, then ``outer``.

    ``compose(g, f).apply(p) == g.apply(f.apply(p))``.
    """
    return AffineModel(
        matrix=outer.matrix @ inner.matrix,
        translation=outer.matrix @ inner.translation + outer.translation,
    )


@dataclass(frozen=True)
class MultiPanorama:
    """The blended strip plus per-image placement transforms."""

    image: np.ndarray
    # transforms[i] maps frame-0 coordinates into image-i coordinates.
    transforms: List[AffineModel]
    offset: Tuple[int, int]  # frame 0's top-left on the canvas
    coverage: float


def register_chain(
    images: Sequence[np.ndarray],
    n_features: int = 64,
    seed: int = 0,
    profiler: Optional[KernelProfiler] = None,
) -> List[AffineModel]:
    """Pairwise-register consecutive images and compose into frame 0.

    Returns one transform per image mapping frame-0 coordinates to that
    image's coordinates (identity for image 0).
    """
    profiler = ensure_profiler(profiler)
    if len(images) < 2:
        raise ValueError("need at least two images")
    transforms = [AffineModel.identity()]
    for prev_img, next_img in zip(images[:-1], images[1:]):
        corners_prev = detect_corners(prev_img, n_keep=n_features,
                                      profiler=profiler)
        corners_next = detect_corners(next_img, n_keep=n_features,
                                      profiler=profiler)
        described_prev = describe_corners(prev_img, corners_prev,
                                          profiler=profiler)
        described_next = describe_corners(next_img, corners_next,
                                          profiler=profiler)
        matches = match_features(described_prev, described_next,
                                 profiler=profiler)
        src, dst = match_points(described_prev, described_next, matches)
        if src.shape[0] < 3:
            raise ValueError("too few matches between consecutive images")
        pair_model = ransac_affine(src, dst, seed=seed,
                                   profiler=profiler).model
        transforms.append(compose(pair_model, transforms[-1]))
    return transforms


def stitch_strip(
    images: Sequence[np.ndarray],
    n_features: int = 64,
    seed: int = 0,
    profiler: Optional[KernelProfiler] = None,
) -> MultiPanorama:
    """Blend a strip of overlapping images into one panorama."""
    profiler = ensure_profiler(profiler)
    transforms = register_chain(images, n_features=n_features, seed=seed,
                                profiler=profiler)
    with profiler.kernel("Blend"):
        # Canvas bounds: every image's corners pulled into frame 0.
        all_rows: List[float] = []
        all_cols: List[float] = []
        inverses = []
        for image, model in zip(images, transforms):
            rows, cols = image.shape
            inv_a = np.linalg.inv(model.matrix)
            inverses.append(inv_a)
            corners = np.array(
                [[0, 0], [0, cols - 1], [rows - 1, 0],
                 [rows - 1, cols - 1]], dtype=np.float64,
            )
            in_frame0 = (corners - model.translation) @ inv_a.T
            all_rows.extend(in_frame0[:, 0])
            all_cols.extend(in_frame0[:, 1])
        top = int(np.floor(min(all_rows)))
        left = int(np.floor(min(all_cols)))
        bottom = int(np.ceil(max(all_rows)))
        right = int(np.ceil(max(all_cols)))
        canvas_shape = (bottom - top + 1, right - left + 1)
        canvas = np.zeros(canvas_shape)
        weight = np.zeros(canvas_shape)
        gr, gc = np.mgrid[top : bottom + 1, left : right + 1].astype(
            np.float64
        )
        frame0 = np.stack([gr.ravel(), gc.ravel()], axis=1)
        for image, model in zip(images, transforms):
            rows, cols = image.shape
            coords = model.apply(frame0)
            rr = coords[:, 0].reshape(canvas_shape)
            cc = coords[:, 1].reshape(canvas_shape)
            inside = (rr >= 0) & (rr <= rows - 1) & (cc >= 0) & \
                (cc <= cols - 1)
            sampled = np.where(inside, bilinear(image, rr, cc), 0.0)
            feather = np.where(inside, bilinear(_feather(image.shape), rr, cc),
                               0.0)
            canvas += sampled * feather
            weight += feather
        covered = weight > 0
        canvas[covered] /= weight[covered]
    return MultiPanorama(
        image=canvas,
        transforms=transforms,
        offset=(-top, -left),
        coverage=float(covered.mean()),
    )


def strip_views(
    canvas: np.ndarray, n_views: int, view_shape: Tuple[int, int],
    step: Tuple[int, int],
) -> List[np.ndarray]:
    """Cut ``n_views`` overlapping windows out of a wide canvas.

    Test/demo helper: views advance by ``step`` per frame, so consecutive
    views overlap by ``view - step``.
    """
    rows, cols = view_shape
    dy, dx = step
    views = []
    for index in range(n_views):
        r0, c0 = index * dy, index * dx
        if r0 + rows > canvas.shape[0] or c0 + cols > canvas.shape[1]:
            raise ValueError("canvas too small for the requested strip")
        views.append(canvas[r0 : r0 + rows, c0 : c0 + cols].copy())
    return views
