"""Benchmark wiring for the Image Stitch application."""

from __future__ import annotations

from typing import List, Mapping

from ..core.dataflow import Chain, Op, ParMap, Reduce, Seq
from ..core.inputs import overlapping_pair
from ..core.profiler import KernelProfiler
from ..core.registry import Benchmark
from ..core.types import (
    Characteristic,
    ConcentrationArea,
    InputSize,
    KernelInfo,
    ParallelismClass,
    ParallelismEstimate,
)
from .pipeline import registration_error, stitch_pair

N_FEATURES = 64
RANSAC_ITERATIONS = 256

KERNELS = (
    KernelInfo("Convolution", "calibration filtering and gradients",
               ParallelismClass.DLP),
    KernelInfo("ANMS", "adaptive non-maximal corner suppression",
               ParallelismClass.TLP),
    KernelInfo("Match", "descriptor distance matrix and ratio test",
               ParallelismClass.DLP),
    KernelInfo("LSSolver", "RANSAC hypothesis fitting and refits",
               ParallelismClass.TLP),
    KernelInfo("SVD", "DLT homography null-space extraction",
               ParallelismClass.TLP),
    KernelInfo("Blend", "warping and feathered compositing",
               ParallelismClass.DLP),
)


def setup(size: InputSize, variant: int):
    """Build the synthetic overlapping pair (untimed)."""
    return (overlapping_pair(size, variant), variant)


def run(workload, profiler: KernelProfiler) -> Mapping[str, object]:
    """Stitch a prepared overlapping pair and score registration."""
    pair, variant = workload
    result = stitch_pair(pair.first, pair.second, n_features=N_FEATURES,
                         seed=variant, profiler=profiler)
    return {
        "registration_error": registration_error(result.model,
                                                 pair.true_offset),
        "n_matches": result.n_matches,
        "n_inliers": result.ransac.n_inliers if result.ransac else 0,
        "coverage": result.panorama.coverage,
    }


def parallelism_models(size: InputSize) -> List[ParallelismEstimate]:
    """Work/span models for the stitch kernels.

    Table IV's stitch rows: LS Solver 20,900x and SVD 12,300x (both TLP —
    RANSAC hypotheses are mutually independent) above Convolution 4,500x
    (DLP): the same ordering falls out of these loop shapes.
    """
    rows, cols = size.shape
    pixels = rows * cols
    convolution = ParMap(pixels, Op(7))
    anms_model = ParMap(N_FEATURES * 4, Seq(ParMap(N_FEATURES * 4, Op(3)),
                                            Reduce(N_FEATURES * 4)))
    match = ParMap(N_FEATURES * N_FEATURES, Seq(ParMap(64, Op(2)), Reduce(64)))
    # RANSAC: hypotheses independent; each fit is a small dense solve
    # followed by a parallel scoring sweep.
    hypothesis = Seq(Chain(24, Op(4)), ParMap(N_FEATURES, Op(8)), Reduce(N_FEATURES))
    ls_solver = ParMap(RANSAC_ITERATIONS, hypothesis)
    svd = ParMap(8 * 9, Seq(ParMap(2 * N_FEATURES, Op(4)), Reduce(2 * N_FEATURES)))
    blend = ParMap(4 * pixels, Op(12))
    estimates = []
    for name, model in (
        ("Convolution", convolution),
        ("ANMS", anms_model),
        ("Match", match),
        ("LSSolver", ls_solver),
        ("SVD", svd),
        ("Blend", blend),
    ):
        info = next(k for k in KERNELS if k.name == name)
        estimates.append(
            ParallelismEstimate(
                benchmark="stitch",
                kernel=name,
                parallelism=model.parallelism,
                parallelism_class=info.parallelism_class,
                work=model.work,
                span=model.span,
            )
        )
    return estimates


BENCHMARK = Benchmark(
    name="Image Stitch",
    slug="stitch",
    area=ConcentrationArea.IMAGE_PROCESSING_FORMATION,
    description="Stitch overlapping images using feature based alignment "
    "and matching",
    characteristic=Characteristic.DATA_AND_COMPUTE,
    application_domain="Computational photography",
    kernels=KERNELS,
    setup=setup,
    run=run,
    parallelism=parallelism_models,
    in_figure2=True,
)
