"""Warping and feathered blending — the stitch benchmark's final stage.

Once registration has an affine model mapping coordinates of the first
image into the second, the panorama canvas is sized to cover both images,
each source is resampled into it (bilinear), and overlap is resolved by
distance-feathered alpha blending.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.interpolate import bilinear
from .ransac import AffineModel


@dataclass(frozen=True)
class Panorama:
    """The blended canvas plus the placement of the first image in it."""

    image: np.ndarray
    offset: Tuple[int, int]  # first image's top-left on the canvas
    coverage: float  # fraction of canvas covered by any source


def _feather(shape: Tuple[int, int]) -> np.ndarray:
    """Weight mask falling linearly from the image centre to 0 at edges."""
    rows, cols = shape
    r = np.minimum(np.arange(rows), np.arange(rows)[::-1]) + 1.0
    c = np.minimum(np.arange(cols), np.arange(cols)[::-1]) + 1.0
    return np.minimum(r[:, None] / r.max(), c[None, :] / c.max())


def warp_and_blend(
    first: np.ndarray,
    second: np.ndarray,
    model: AffineModel,
    profiler: Optional[KernelProfiler] = None,
) -> Panorama:
    """Composite ``second`` onto ``first``'s frame under ``model``.

    ``model`` maps first-image coordinates to second-image coordinates
    (the registration direction produced by matching first -> second).
    """
    profiler = ensure_profiler(profiler)
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    with profiler.kernel("Blend"):
        rows1, cols1 = first.shape
        rows2, cols2 = second.shape
        # Second image corners pulled into first-image coordinates.
        inv_a = np.linalg.inv(model.matrix)
        corners2 = np.array(
            [[0, 0], [0, cols2 - 1], [rows2 - 1, 0], [rows2 - 1, cols2 - 1]],
            dtype=np.float64,
        )
        corners2_in_1 = (corners2 - model.translation) @ inv_a.T
        all_rows = np.concatenate([[0, rows1 - 1], corners2_in_1[:, 0]])
        all_cols = np.concatenate([[0, cols1 - 1], corners2_in_1[:, 1]])
        top = int(np.floor(all_rows.min()))
        left = int(np.floor(all_cols.min()))
        bottom = int(np.ceil(all_rows.max()))
        right = int(np.ceil(all_cols.max()))
        canvas_shape = (bottom - top + 1, right - left + 1)
        canvas = np.zeros(canvas_shape)
        weight = np.zeros(canvas_shape)
        # Paste the first image directly.
        feather1 = _feather(first.shape)
        r0, c0 = -top, -left
        canvas[r0 : r0 + rows1, c0 : c0 + cols1] += first * feather1
        weight[r0 : r0 + rows1, c0 : c0 + cols1] += feather1
        # Resample the second image over the whole canvas.
        gr, gc = np.mgrid[top : bottom + 1, left : right + 1].astype(np.float64)
        coords1 = np.stack([gr.ravel(), gc.ravel()], axis=1)
        coords2 = model.apply(coords1)
        rr2 = coords2[:, 0].reshape(canvas_shape)
        cc2 = coords2[:, 1].reshape(canvas_shape)
        inside = (
            (rr2 >= 0) & (rr2 <= rows2 - 1) & (cc2 >= 0) & (cc2 <= cols2 - 1)
        )
        sampled = bilinear(second, rr2, cc2)
        feather2_full = bilinear(_feather(second.shape), rr2, cc2)
        sampled = np.where(inside, sampled, 0.0)
        feather2_full = np.where(inside, feather2_full, 0.0)
        canvas += sampled * feather2_full
        weight += feather2_full
        covered = weight > 0
        canvas[covered] /= weight[covered]
        coverage = float(covered.mean())
    return Panorama(image=canvas, offset=(r0, c0), coverage=coverage)
