"""End-to-end image stitching pipeline.

calibrate (Convolution) -> extract (ANMS) -> match (Match) -> register
(LSSolver RANSAC + SVD homography check) -> blend (Blend), as the paper's
four broad categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from .blend import Panorama, warp_and_blend
from .corners import Corner, detect_corners
from .matching import describe_corners, match_features, match_points
from .ransac import AffineModel, RansacResult, homography_dlt, ransac_affine


@dataclass(frozen=True)
class StitchResult:
    """Registration and compositing outputs for one image pair."""

    model: AffineModel
    homography: Optional[np.ndarray]
    ransac: Optional[RansacResult]
    panorama: Panorama
    n_corners: Tuple[int, int]
    n_matches: int


def stitch_pair(
    first: np.ndarray,
    second: np.ndarray,
    n_features: int = 64,
    seed: int = 0,
    profiler: Optional[KernelProfiler] = None,
) -> StitchResult:
    """Stitch two overlapping images into a panorama.

    Returns the estimated first->second affine model, the DLT homography
    refined on RANSAC inliers (``None`` when there are too few), and the
    blended canvas.
    """
    profiler = ensure_profiler(profiler)
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    corners1 = detect_corners(first, n_keep=n_features, profiler=profiler)
    corners2 = detect_corners(second, n_keep=n_features, profiler=profiler)
    described1 = describe_corners(first, corners1, profiler=profiler)
    described2 = describe_corners(second, corners2, profiler=profiler)
    matches = match_features(described1, described2, profiler=profiler)
    src, dst = match_points(described1, described2, matches)
    ransac_result: Optional[RansacResult] = None
    homography: Optional[np.ndarray] = None
    if src.shape[0] >= 3:
        ransac_result = ransac_affine(src, dst, seed=seed, profiler=profiler)
        model = ransac_result.model
        if ransac_result.n_inliers >= 4:
            homography = homography_dlt(
                src[ransac_result.inliers], dst[ransac_result.inliers],
                profiler=profiler,
            )
    elif src.shape[0] >= 1:
        from .ransac import fit_translation

        model = fit_translation(src, dst)
    else:
        model = AffineModel.identity()
    panorama = warp_and_blend(first, second, model, profiler=profiler)
    return StitchResult(
        model=model,
        homography=homography,
        ransac=ransac_result,
        panorama=panorama,
        n_corners=(len(corners1), len(corners2)),
        n_matches=len(matches),
    )


def registration_error(model: AffineModel,
                       true_offset: Tuple[int, int]) -> float:
    """Distance between the estimated and true translation components.

    For a pure-translation ground truth (our synthetic pairs), the model
    should be near-identity with translation ``-true_offset`` in the
    first->second direction... i.e. second-image coordinates of a first-
    image point are ``p - offset``.
    """
    expected = -np.asarray(true_offset, dtype=np.float64)
    return float(np.linalg.norm(model.translation - expected))
