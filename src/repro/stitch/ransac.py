"""RANSAC transform estimation with LS refits and SVD homography.

The stitch benchmark's registration stage: RANSAC ("iterative, heavily
computational and accesses data points randomly") hypothesizes affine
models from minimal samples, scores inliers, and refits the best model by
least squares (the "LS Solver" kernel).  A projective refinement via the
DLT's null-space SVD exercises the "SVD" kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..linalg.decompose import null_vector
from ..linalg.lstsq import lstsq_qr
from ..linalg.matrix import SingularMatrixError


@dataclass(frozen=True)
class AffineModel:
    """Affine map: ``dst = A @ src + t`` with rows as (row, col) points."""

    matrix: np.ndarray  # (2, 2)
    translation: np.ndarray  # (2,)

    def apply(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return points @ self.matrix.T + self.translation

    @staticmethod
    def identity() -> "AffineModel":
        return AffineModel(matrix=np.eye(2), translation=np.zeros(2))


@dataclass(frozen=True)
class RansacResult:
    """Best model plus its inlier bookkeeping."""

    model: AffineModel
    inliers: np.ndarray  # boolean mask over input matches
    iterations: int

    @property
    def n_inliers(self) -> int:
        return int(self.inliers.sum())


def fit_affine(src: np.ndarray, dst: np.ndarray) -> AffineModel:
    """Least-squares affine fit ``dst ~= A src + t`` (needs >= 3 points)."""
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    if src.shape != dst.shape or src.ndim != 2 or src.shape[1] != 2:
        raise ValueError("expected matching (n, 2) point arrays")
    if src.shape[0] < 3:
        raise ValueError("need at least 3 correspondences")
    n = src.shape[0]
    design = np.hstack([src, np.ones((n, 1))])
    params = lstsq_qr(design, dst)  # (3, 2): [A^T; t^T]
    return AffineModel(matrix=params[:2].T, translation=params[2])


def fit_translation(src: np.ndarray, dst: np.ndarray) -> AffineModel:
    """Pure-translation fit (needs >= 1 point)."""
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    if src.shape != dst.shape or src.size == 0:
        raise ValueError("expected matching non-empty point arrays")
    return AffineModel(matrix=np.eye(2),
                       translation=(dst - src).mean(axis=0))


def ransac_affine(
    src: np.ndarray,
    dst: np.ndarray,
    n_iterations: int = 256,
    inlier_threshold: float = 2.0,
    seed: int = 0,
    profiler: Optional[KernelProfiler] = None,
) -> RansacResult:
    """RANSAC affine estimation over matched point pairs.

    Minimal 3-point hypotheses are scored by reprojection distance; the
    winner is refit on its inliers by least squares.
    """
    profiler = ensure_profiler(profiler)
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    n = src.shape[0]
    if n < 3:
        raise ValueError("RANSAC needs at least 3 matches")
    rng = np.random.default_rng(seed)
    best_mask = np.zeros(n, dtype=bool)
    with profiler.kernel("LSSolver"):
        for _ in range(n_iterations):
            picks = rng.choice(n, 3, replace=False)
            try:
                model = fit_affine(src[picks], dst[picks])
            except (SingularMatrixError, ValueError):
                continue
            errors = np.linalg.norm(model.apply(src) - dst, axis=1)
            mask = errors < inlier_threshold
            if mask.sum() > best_mask.sum():
                best_mask = mask
        if best_mask.sum() < 3:
            # Degenerate matches: fall back to robust translation.
            model = fit_translation(src, dst)
            errors = np.linalg.norm(model.apply(src) - dst, axis=1)
            best_mask = errors < inlier_threshold
            return RansacResult(model=model, inliers=best_mask,
                                iterations=n_iterations)
        final = fit_affine(src[best_mask], dst[best_mask])
    return RansacResult(model=final, inliers=best_mask,
                        iterations=n_iterations)


def homography_dlt(src: np.ndarray, dst: np.ndarray,
                   profiler: Optional[KernelProfiler] = None) -> np.ndarray:
    """Direct linear transform homography from >= 4 correspondences.

    Returns the 3x3 matrix H (normalized so H[2,2] = 1) minimizing the
    algebraic error, via the SVD null vector of the DLT design matrix.
    Points are (row, col); internally mapped to (x, y) = (col, row).
    """
    profiler = ensure_profiler(profiler)
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    if src.shape != dst.shape or src.ndim != 2 or src.shape[1] != 2:
        raise ValueError("expected matching (n, 2) point arrays")
    n = src.shape[0]
    if n < 4:
        raise ValueError("DLT needs at least 4 correspondences")
    with profiler.kernel("SVD"):
        # Hartley normalization for conditioning.
        def normalizer(pts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            centroid = pts.mean(axis=0)
            spread = np.sqrt(((pts - centroid) ** 2).sum(axis=1)).mean()
            scale = (2.0**0.5) / max(spread, 1e-12)
            t = np.array(
                [
                    [scale, 0.0, -scale * centroid[1]],
                    [0.0, scale, -scale * centroid[0]],
                    [0.0, 0.0, 1.0],
                ]
            )
            xy = np.stack(
                [pts[:, 1] * scale - scale * centroid[1],
                 pts[:, 0] * scale - scale * centroid[0]], axis=1
            )
            return t, xy

        t_src, src_xy = normalizer(src)
        t_dst, dst_xy = normalizer(dst)
        design = np.zeros((2 * n, 9))
        for i in range(n):
            x, y = src_xy[i]
            u, v = dst_xy[i]
            design[2 * i] = [-x, -y, -1, 0, 0, 0, u * x, u * y, u]
            design[2 * i + 1] = [0, 0, 0, -x, -y, -1, v * x, v * y, v]
        h_normalized = null_vector(design).reshape(3, 3)
        h = np.linalg.solve(t_dst, h_normalized @ t_src)
        if abs(h[2, 2]) > 1e-12:
            h = h / h[2, 2]
    return h


def apply_homography(h: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 3x3 homography to (row, col) points."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    xy1 = np.stack(
        [points[:, 1], points[:, 0], np.ones(points.shape[0])], axis=1
    )
    mapped = xy1 @ h.T
    w = np.where(np.abs(mapped[:, 2]) < 1e-12, 1e-12, mapped[:, 2])
    return np.stack([mapped[:, 1] / w, mapped[:, 0] / w], axis=1)
