"""``sdvbs`` command-line driver.

Subcommands::

    sdvbs list                      # the nine applications + metadata
    sdvbs run disparity sift        # run benchmarks, print hotspots
    sdvbs tables                    # Tables I, II, III
    sdvbs sysinfo                   # Table III host rows (manifest fields)
    sdvbs figure2 [--variants N]    # input-size scaling series
    sdvbs figure3 [slugs...]        # kernel occupancy per size
    sdvbs table4                    # critical-path parallelism
    sdvbs trace disparity --size CIF --out trace.json
                                    # per-call spans -> chrome://tracing
    sdvbs flame disparity --size CIF --out disparity.collapsed
                                    # statistical flamegraph (collapsed
                                    # stacks or speedscope JSON)
    sdvbs xcheck disparity --size CIF   # sampled vs instrumented shares
                                    # with a tolerance gate (exit 1 on
                                    # divergence)
    sdvbs report --out report.html  # self-contained HTML observability
                                    # report (occupancy, roofline,
                                    # agreement, trace, manifest)
    sdvbs compare base.json cand.json   # median speedups + noise verdicts
    sdvbs verify-backends           # ref-vs-fast kernel agreement table
    sdvbs history record run.json   # ingest an export into the history DB
    sdvbs history list              # recorded commits + cell counts
    sdvbs history show <commit>     # per-cell medians of one commit
    sdvbs profile record report.json    # ingest sampled profiles into the
                                    # profile store, keyed by commit
    sdvbs profile list              # recorded commits + sample counts
    sdvbs profile show <commit>     # per-cell profiles of one commit
    sdvbs profile diff A B --benchmark disparity --html diff.html
                                    # differential flamegraph between two
                                    # commits (collapsed ±usec, red/blue
                                    # HTML, verdict JSON)
    sdvbs regress run.json          # noise-aware regression gate (exit 1
                                    # on confirmed >=k-sigma slowdowns,
                                    # incl. streaming p50/p95/p99 cells);
                                    # --attribute joins profile diffs so
                                    # the verdict names guilty kernels
    sdvbs stream disparity --fps 10 --deadline-ms 100
                                    # paced frame streaming: latency
                                    # percentiles, jitter, sustained FPS,
                                    # deadline misses (--slo-gate exits 1
                                    # over the miss-rate budget)
    sdvbs shard plan --shards 4 --out-dir plan
                                    # split the grid into shard spec files
    sdvbs shard run plan/shard-000.json [--resume]
                                    # execute one shard with per-cell
                                    # checkpoints; --resume re-runs only
                                    # the missing cells after a kill
    sdvbs shard merge plan/*.result.json --out merged.json
                                    # fold shard exports into one suite
                                    # result (idempotent history ingest
                                    # with --db)
    sdvbs shard status plan         # per-shard completed/missing cells
    sdvbs serve --port 8642         # benchmark-as-a-service: JSON-RPC
                                    # job server with a bounded worker
                                    # pool, admission control and a
                                    # result cache (see SERVING.md)

``run``/``figure2``/``figure3`` accept the robust-measurement knobs
``--repeats N`` (retained runs per cell, aggregated into
min/median/mean/stddev), ``--warmup N`` (discarded runs) and ``--jobs N``
(worker processes across the benchmark grid), plus ``--events PATH`` to
record every kernel call into a structured JSONL event log.

``run``/``figure2``/``figure3``/``trace`` also accept ``--backend
{ref,fast}`` (see KERNELS.md): ``fast`` (default) measures the
numpy-vectorized kernel implementations, ``ref`` the loop-faithful
reference nests mirroring the original C suite.  The selection is
recorded in the run manifest, and ``sdvbs verify-backends`` checks the
two backends agree within documented tolerances on the deterministic
input generators.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import InputSize, all_benchmarks, get_benchmark, run_suite
from .core.report import (
    render_figure2,
    render_figure3,
    render_kernel_drilldown,
    render_suite_summary,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_top_spans,
    render_work_models,
)
from .core.tracing import (
    TraceRecorder,
    chrome_trace_json,
    events_to_jsonl,
    run_manifest,
)


def _size_arg(name: str) -> InputSize:
    """Case-insensitive ``--sizes`` converter with a clean error.

    argparse turns the ``ArgumentTypeError`` into a usage message and
    exit status 2 instead of a raw ``KeyError`` traceback.
    """
    try:
        return InputSize[name.upper()]
    except KeyError:
        choices = ", ".join(size.name for size in InputSize)
        raise argparse.ArgumentTypeError(
            f"invalid size {name!r} (choose from {choices})"
        ) from None


def _int_arg(name: str, minimum: int):
    """An integer argparse type with a floor and a clean exit-2 error.

    ``sdvbs stream --frames 0`` and friends used to slip through
    argparse and surface later as a raw traceback (or a silent clamp);
    validating at parse time keeps every non-positive numeric argument
    on the same clean path as an unknown size.
    """

    def convert(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid {name}: {text!r} is not an integer") from None
        if value < minimum:
            raise argparse.ArgumentTypeError(
                f"invalid {name}: must be >= {minimum}, got {value}")
        return value

    return convert


def _float_arg(name: str, minimum: float, exclusive: bool = False):
    """A float argparse type with a floor and a clean exit-2 error."""

    def convert(text: str) -> float:
        try:
            value = float(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid {name}: {text!r} is not a number") from None
        if exclusive and value <= minimum:
            raise argparse.ArgumentTypeError(
                f"invalid {name}: must be > {minimum:g}, got {value:g}")
        if not exclusive and value < minimum:
            raise argparse.ArgumentTypeError(
                f"invalid {name}: must be >= {minimum:g}, got {value:g}")
        return value

    return convert


def _parse_sizes(names: Optional[List[InputSize]]) -> List[InputSize]:
    """Default to the paper's trio; larger sizes (VGA) are opt-in."""
    if not names:
        from .core.runner import ALL_SIZES

        return list(ALL_SIZES)
    return list(names)


def _add_measurement_flags(parser: argparse.ArgumentParser) -> None:
    """The robust-runner knobs shared by run/figure2/figure3."""
    parser.add_argument("--repeats", type=_int_arg("--repeats", 1),
                        default=1, metavar="N",
                        help="measured runs per (benchmark, size, variant) "
                        "cell; results report min/median/mean/stddev "
                        "(default: 1)")
    parser.add_argument("--warmup", type=_int_arg("--warmup", 0),
                        default=0, metavar="N",
                        help="discarded warmup runs per cell (default: 0)")
    parser.add_argument("--jobs", type=_int_arg("--jobs", 1),
                        default=1, metavar="N",
                        help="worker processes for the benchmark grid; 1 "
                        "runs serially (default: 1)")
    parser.add_argument("--events", metavar="PATH", default=None,
                        help="record one span per kernel call and write a "
                        "structured JSONL event log (with manifest header) "
                        "to PATH")
    _add_backend_flag(parser)


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", choices=["ref", "fast"], default=None,
                        help="kernel execution backend: 'fast' runs the "
                        "vectorized implementations (default), 'ref' the "
                        "loop-faithful reference nests; recorded in the "
                        "run manifest (see KERNELS.md)")


def _write_events(path: Optional[str], recorder: Optional[TraceRecorder],
                  manifest: dict) -> None:
    """Write the recorder's JSONL event log when ``--events`` was given."""
    if not path or recorder is None:
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(events_to_jsonl(recorder.spans, manifest))


def _run_trace(args: argparse.Namespace, cli_argv: List[str]) -> int:
    """``sdvbs trace``: one traced run, Chrome trace export, drilldowns."""
    from .core import run_benchmark

    try:
        benchmark = get_benchmark(args.slug)
    except KeyError as exc:
        print(f"sdvbs trace: {exc.args[0]}", file=sys.stderr)
        return 2
    # Context-managed so tracemalloc stops even if the run raises.
    with TraceRecorder(track_memory=args.memory) as recorder:
        run = run_benchmark(benchmark, args.size, args.variant,
                            recorder=recorder, backend=args.backend)
        manifest = run_manifest(argv=cli_argv, backend=args.backend)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(chrome_trace_json(recorder.spans, manifest))
        _write_events(args.events, recorder, manifest)
    print(render_top_spans(recorder.spans, limit=args.top))
    print()
    print(render_kernel_drilldown(recorder.spans))
    print()
    destinations = args.out + (f" and {args.events}" if args.events else "")
    print(f"wrote {recorder.events} spans ({run.total_seconds * 1000:.1f} ms "
          f"traced) to {destinations}; load in chrome://tracing or "
          "https://ui.perfetto.dev")
    return 0


def _add_sampling_flags(parser: argparse.ArgumentParser) -> None:
    """Knobs shared by the sampling subcommands (flame/xcheck/report)."""
    parser.add_argument("--interval",
                        type=_float_arg("--interval", 0.0, exclusive=True),
                        default=0.0002, metavar="SEC",
                        help="target seconds between stack samples "
                        "(default: 0.0002)")
    parser.add_argument("--repeats", type=_int_arg("--repeats", 1),
                        default=10, metavar="N",
                        help="measured runs per cell — more repeats mean "
                        "more samples (default: 10)")
    parser.add_argument("--warmup", type=_int_arg("--warmup", 0),
                        default=2, metavar="N",
                        help="discarded warmup runs, not sampled "
                        "(default: 2)")


def _sampled_run(slug: str, size: InputSize, variant: int, warmup: int,
                 repeats: int, interval: float,
                 backend: Optional[str] = None, recorder=None):
    """One serial benchmark run with a stack sampler attached.

    Returns ``(run, profile, frame_map)``; raises ``KeyError`` for an
    unknown slug (callers turn that into a CLI error).
    """
    from .core import run_benchmark
    from .core.sampling import StackSampler, kernel_frame_map

    benchmark = get_benchmark(slug)
    frame_map = kernel_frame_map(slug)
    sampler = StackSampler(interval=interval, frame_map=frame_map)
    run = run_benchmark(benchmark, size, variant, warmup=warmup,
                        repeats=repeats, backend=backend,
                        recorder=recorder, sampler=sampler)
    return run, sampler.profile, frame_map


def _run_flame(args: argparse.Namespace) -> int:
    """``sdvbs flame``: sample one benchmark, export a flamegraph."""
    from .core.sampling import speedscope_json, to_collapsed

    try:
        run, profile, _ = _sampled_run(
            args.slug, args.size, args.variant, args.warmup, args.repeats,
            args.interval, backend=args.backend)
    except KeyError as exc:
        print(f"sdvbs flame: {exc.args[0]}", file=sys.stderr)
        return 2
    name = f"{args.slug}@{args.size.name}"
    if args.format == "speedscope":
        payload = speedscope_json(profile, name=name)
    else:
        payload = to_collapsed(profile)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(payload)
    if profile.samples == 0:
        print(f"sdvbs flame: collected 0 samples — the run is too short "
              f"for --interval {args.interval}; raise --repeats or lower "
              "--interval", file=sys.stderr)
    shares = sorted(profile.shares().items(), key=lambda kv: -kv[1])
    summary = ", ".join(f"{k} {v:.1f}%" for k, v in shares[:5])
    print(f"{profile.samples} samples / {profile.sampled_seconds:.3f} s "
          f"sampled over {args.repeats} runs of {name} "
          f"({run.total_seconds * 1000:.1f} ms median)")
    if summary:
        print(f"sampled shares: {summary}")
    print(f"wrote {args.format} profile to {args.out}")
    return 0


def _run_xcheck(args: argparse.Namespace) -> int:
    """``sdvbs xcheck``: gate sampled vs instrumented share agreement."""
    from .core.report import render_cross_check
    from .core.sampling import cross_check, observable_kernels

    try:
        run, profile, frame_map = _sampled_run(
            args.slug, args.size, args.variant, args.warmup, args.repeats,
            args.interval, backend=args.backend)
    except KeyError as exc:
        print(f"sdvbs xcheck: {exc.args[0]}", file=sys.stderr)
        return 2
    check = cross_check(
        run.occupancy(), profile.shares(), observable_kernels(frame_map),
        tolerance=args.tolerance, min_share=args.min_share,
        samples=profile.samples)
    print(render_cross_check(check))
    top = profile.non_kernel_top(limit=5)
    if top:
        print()
        print("Top NonKernelWork functions (sampled):")
        for label, seconds in top:
            print(f"  {label}  {seconds * 1000:.2f} ms")
    if profile.samples == 0:
        print(f"sdvbs xcheck: collected 0 samples — raise --repeats or "
              "lower --interval", file=sys.stderr)
        return 1
    if not check.ok:
        names = ", ".join(
            f"{row.kernel} ({row.delta:+.1f})" for row in check.failures())
        print(f"sdvbs xcheck: agreement gate FAILED for {names} "
              f"(tolerance ±{args.tolerance:g} points)", file=sys.stderr)
        return 1
    print()
    print(f"agreement gate passed: every kernel with >={args.min_share:g}% "
          f"share agrees within ±{args.tolerance:g} points")
    return 0


def _run_report(args: argparse.Namespace, cli_argv: List[str]) -> int:
    """``sdvbs report``: render the self-contained HTML report."""
    from .core.htmlreport import render_html_report
    from .core.profiler import measure_probe_overhead
    from .core.types import SuiteResult

    spans = None
    if getattr(args, "from_export", None):
        result = _load_result(args.from_export, "report")
        if result is None:
            return 2
    else:
        result = SuiteResult()
        sizes = _parse_sizes(args.sizes)
        slugs = args.slugs or [b.slug for b in all_benchmarks()]
        recorder = TraceRecorder()
        try:
            with recorder:
                for slug in slugs:
                    for size in sizes:
                        run, _, _ = _sampled_run(
                            slug, size, 0, args.warmup, args.repeats,
                            args.interval, backend=args.backend,
                            recorder=recorder)
                        result.runs.append(run)
        except KeyError as exc:
            print(f"sdvbs report: {exc.args[0]}", file=sys.stderr)
            return 2
        manifest = run_manifest(
            argv=cli_argv, warmup=args.warmup, repeats=args.repeats,
            backend=args.backend,
            instrumentation=measure_probe_overhead())
        result.manifest = manifest
        spans = recorder.spans
        _write_events(args.events, recorder, manifest)
        if args.json:
            from .core.export import result_to_json

            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(result_to_json(result))
    _warn_truncated_sampling(result, "report")
    document = render_html_report(result, spans=spans,
                                  tolerance=args.tolerance,
                                  min_share=args.min_share)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(document)
    extras = [args.out]
    if getattr(args, "json", None) and not getattr(args, "from_export", None):
        extras.append(args.json)
    if getattr(args, "events", None) and spans is not None:
        extras.append(args.events)
    print(f"wrote self-contained HTML report covering {len(result.runs)} "
          f"run(s) to {' and '.join(extras)}")
    return 0


def _warn_probe_overhead(result, instrumentation: dict,
                         threshold_pct: float) -> None:
    """Warn when instrumentation overhead is a visible slice of a cell.

    The estimate is the calibrated per-probe cost times the cell's kernel
    call count, compared against the cell's median wall time; a
    ``threshold_pct`` of 0 (or below) disables the check.
    """
    if threshold_pct <= 0:
        return
    per_probe = float(instrumentation.get("seconds_per_probe", 0.0))
    if per_probe <= 0:
        return
    for run in result.runs:
        if run.total_seconds <= 0:
            continue
        probes = sum(run.kernel_calls.values())
        overhead = per_probe * probes
        pct = 100.0 * overhead / run.total_seconds
        if pct > threshold_pct:
            print(
                f"sdvbs run: warning: {run.benchmark}@{run.size.name} "
                f"variant {run.variant}: estimated instrumentation "
                f"overhead {pct:.1f}% of the {run.total_seconds * 1000:.1f}"
                f" ms median ({probes} probes x "
                f"{per_probe * 1e6:.2f} us) exceeds "
                f"{threshold_pct:g}% — prefer larger inputs or "
                "`sdvbs flame` for fine-grained attribution",
                file=sys.stderr,
            )


def _load_result(path: str, command: str):
    """Read a suite export for a subcommand, with a clean CLI error."""
    from .core.export import result_from_json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return result_from_json(handle.read())
    except (OSError, ValueError) as exc:
        print(f"sdvbs {command}: cannot read {path}: {exc}", file=sys.stderr)
        return None


def _run_history(args: argparse.Namespace) -> int:
    """``sdvbs history record/list/show``: the persistent result store."""
    from .core.history import format_created, open_history
    from .core.report import format_table

    with open_history(args.db) as store:
        if args.history_command == "record":
            result = _load_result(args.result, "history record")
            if result is None:
                return 2
            added = store.record(result, commit=args.commit)
            total = len(store.entries())
            print(f"recorded {len(added)} new cell(s) into {args.db} "
                  f"({total} total)")
            if added:
                print(f"commit {added[0].commit} backend {added[0].backend} "
                      f"manifest {added[0].manifest_hash}")
            return 0
        if args.history_command == "list":
            commits = store.commits()
            if not commits:
                print(f"history {args.db} is empty")
                return 0
            rows = []
            for commit in commits:
                entries = store.entries(
                    commit=commit,
                    benchmark=args.benchmark,
                    size=args.size.upper() if args.size else None,
                    backend=args.backend)
                if not entries:
                    continue
                benchmarks = sorted({e.benchmark for e in entries})
                rows.append(
                    (
                        commit[:12],
                        str(len(entries)),
                        format_created(entries[-1].created),
                        ", ".join(benchmarks[:4])
                        + (", ..." if len(benchmarks) > 4 else ""),
                    )
                )
            if not rows:
                print(f"history {args.db}: no entries match the filters")
                return 0
            print(format_table(
                ("Commit", "Cells", "Last recorded", "Benchmarks"),
                rows,
                title=f"Benchmark history ({args.db})",
            ))
            return 0
        # show
        matches = [c for c in store.commits()
                   if c.startswith(args.commit)]
        if not matches:
            print(f"sdvbs history show: no commit matching "
                  f"{args.commit!r} in {args.db}", file=sys.stderr)
            return 2
        if len(matches) > 1:
            print(f"sdvbs history show: ambiguous prefix {args.commit!r} "
                  f"({', '.join(c[:12] for c in matches)})", file=sys.stderr)
            return 2
        rows = []
        for entry in store.entries(commit=matches[0]):
            noise = "-" if entry.stddev is None \
                else f"±{entry.stddev * 1000:.2f} ms"
            rows.append(
                (
                    entry.benchmark,
                    entry.size,
                    f"{entry.median_seconds * 1000:.1f} ms",
                    noise,
                    str(entry.repeats),
                    entry.backend,
                    entry.manifest_hash,
                )
            )
        print(format_table(
            ("Benchmark", "Size", "Median", "Noise", "Repeats", "Backend",
             "Manifest"),
            rows,
            title=f"History for commit {matches[0]}",
        ))
        return 0


def _warn_truncated_sampling(result, command: str) -> None:
    """Surface ``stacks_truncated`` whenever a sampled export leaves us.

    Per-kernel shares survive truncation (they are aggregated before the
    cap) but rare leaf stacks do not; anyone diffing the folded profile
    later deserves to know the tail was cut.
    """
    for run in result.runs:
        if not run.sampling:
            continue
        truncated = int(run.sampling.get("stacks_truncated", 0))
        if truncated > 0:
            print(f"sdvbs {command}: warning: "
                  f"{run.benchmark}@{run.size.name}: {truncated} distinct "
                  "stack(s) dropped by the max-stacks export cap; "
                  "per-kernel shares are exact but rare leaf stacks are "
                  "missing from the folded profile", file=sys.stderr)


def _run_profile(args: argparse.Namespace) -> int:
    """``sdvbs profile record/list/show/diff``: the profile store."""
    from .core.history import format_created
    from .core.profstore import entries_from_result, open_profiles
    from .core.report import format_table

    if args.profile_command == "diff":
        return _run_profile_diff(args)
    with open_profiles(args.db) as store:
        if args.profile_command == "record":
            result = _load_result(args.result, "profile record")
            if result is None:
                return 2
            entries = entries_from_result(result, commit=args.commit)
            if not entries:
                print("sdvbs profile record: the export carries no "
                      "sampling payloads — produce one with `sdvbs report "
                      "--json` (live mode attaches a stack sampler per "
                      "cell)", file=sys.stderr)
                return 2
            _warn_truncated_sampling(result, "profile record")
            added = store.record_entries(entries)
            total = len(store.entries())
            print(f"recorded {len(added)} new profile(s) of "
                  f"{len(entries)} sampled cell(s) into {args.db} "
                  f"({total} total)")
            if added:
                print(f"commit {added[0].commit} backend "
                      f"{added[0].backend} manifest "
                      f"{added[0].manifest_hash}")
            return 0
        if args.profile_command == "list":
            commits = store.commits()
            if not commits:
                print(f"profile store {args.db} is empty")
                return 0
            rows = []
            for commit in commits:
                entries = store.entries(commit=commit,
                                        benchmark=args.benchmark)
                if not entries:
                    continue
                benchmarks = sorted({e.benchmark for e in entries})
                rows.append(
                    (
                        commit[:12],
                        str(len(entries)),
                        str(sum(e.samples for e in entries)),
                        format_created(entries[-1].created),
                        ", ".join(benchmarks[:4])
                        + (", ..." if len(benchmarks) > 4 else ""),
                    )
                )
            if not rows:
                print(f"profile store {args.db}: no entries match "
                      "the filters")
                return 0
            print(format_table(
                ("Commit", "Profiles", "Samples", "Last recorded",
                 "Benchmarks"),
                rows,
                title=f"Profile store ({args.db})",
            ))
            return 0
        # show
        matches = [c for c in store.commits()
                   if c.startswith(args.commit)]
        if not matches:
            print(f"sdvbs profile show: no commit matching "
                  f"{args.commit!r} in {args.db}", file=sys.stderr)
            return 2
        if len(matches) > 1:
            print(f"sdvbs profile show: ambiguous prefix "
                  f"{args.commit!r} "
                  f"({', '.join(c[:12] for c in matches)})",
                  file=sys.stderr)
            return 2
        rows = []
        for entry in store.entries(commit=matches[0]):
            profile = entry.sampled_profile()
            shares = sorted(profile.shares().items(), key=lambda kv: -kv[1])
            top = ", ".join(f"{k} {v:.0f}%" for k, v in shares[:3])
            rows.append(
                (
                    entry.benchmark,
                    entry.size,
                    str(entry.samples),
                    f"{profile.sampled_seconds * 1000:.1f} ms",
                    entry.backend,
                    top or "-",
                )
            )
        print(format_table(
            ("Benchmark", "Size", "Samples", "Sampled", "Backend",
             "Top kernels"),
            rows,
            title=f"Profiles for commit {matches[0]}",
        ))
        return 0


def _run_profile_diff(args: argparse.Namespace) -> int:
    """``sdvbs profile diff``: differential flamegraph of two commits."""
    from .core.flamediff import (
        diff_profiles,
        render_diff,
        to_collapsed_delta,
    )
    from .core.profstore import open_profiles

    with open_profiles(args.db) as store:
        sides = []
        for label in (args.baseline, args.candidate):
            matches = [c for c in store.commits() if c.startswith(label)]
            if not matches:
                print(f"sdvbs profile diff: no commit matching "
                      f"{label!r} in {args.db}", file=sys.stderr)
                return 2
            if len(matches) > 1:
                print(f"sdvbs profile diff: ambiguous prefix {label!r} "
                      f"({', '.join(c[:12] for c in matches)})",
                      file=sys.stderr)
                return 2
            entry = store.latest_profile(matches[0], args.benchmark,
                                         args.size.name,
                                         backend=args.backend)
            if entry is None:
                print(f"sdvbs profile diff: commit {matches[0][:12]} has "
                      f"no profile for {args.benchmark}@{args.size.name}",
                      file=sys.stderr)
                return 2
            sides.append(entry)
    baseline, candidate = sides
    diff = diff_profiles(
        baseline.sampled_profile(), candidate.sampled_profile(),
        baseline_label=f"{baseline.commit[:12]}",
        candidate_label=f"{candidate.commit[:12]}")
    print(render_diff(diff, top=args.top))
    wrote = []
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(to_collapsed_delta(diff))
        wrote.append(args.out)
    if args.html:
        from .core.htmlreport import render_diff_html

        title = (f"{args.benchmark}@{args.size.name}: "
                 f"{baseline.commit[:12]} vs {candidate.commit[:12]}")
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_diff_html(diff, title=title))
        wrote.append(args.html)
    if args.json_out:
        import json as json_module

        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(json_module.dumps(diff.to_dict(top=args.top),
                                           indent=2, sort_keys=True))
        wrote.append(args.json_out)
    if wrote:
        print(f"wrote differential flamegraph to {' and '.join(wrote)}")
    return 0


def _attribute_report(args: argparse.Namespace, report, candidate_result,
                      baseline_result, baseline_commit,
                      commit) -> int:
    """Join profile diffs onto the regress verdict (``--attribute``).

    Export-vs-export mode diffs the two exports' own sampling payloads;
    history-baseline mode takes the baseline from the profile store and
    the candidate from the export's payloads when present (falling back
    to the store).  Missing profiles degrade to a warning, never an
    error — the timing verdict stands either way.
    """
    from .core.history import current_commit
    from .core.profstore import (
        cell_profiles,
        open_profiles,
        pair_lookup_from_results,
    )
    from .core.regress import STATUS_REGRESSION, attribute_regressions

    regressed = [e for e in report.entries
                 if e.status == STATUS_REGRESSION]
    if not regressed:
        return 0
    if baseline_result is not None:
        attributed = attribute_regressions(
            report, pair_lookup_from_results(baseline_result,
                                             candidate_result))
    else:
        candidate_commit = commit or current_commit()
        candidate_cells = cell_profiles(candidate_result)
        with open_profiles(args.profiles) as store:

            def lookup(benchmark: str, size: str):
                base = store.latest_profile(baseline_commit, benchmark,
                                            size)
                if base is None:
                    return None
                cand = candidate_cells.get((benchmark, size))
                if cand is None:
                    entry = store.latest_profile(candidate_commit,
                                                 benchmark, size)
                    cand = (entry.sampled_profile()
                            if entry is not None else None)
                if cand is None:
                    return None
                return base.sampled_profile(), cand

            attributed = attribute_regressions(report, lookup)
    if attributed < len(regressed):
        print(f"sdvbs regress: warning: {len(regressed) - attributed} of "
              f"{len(regressed)} regressed cell(s) have no profile pair "
              "to attribute against (record sampled runs with "
              "`sdvbs profile record`)", file=sys.stderr)
    return 0


def _run_regress(args: argparse.Namespace) -> int:
    """``sdvbs regress``: flag significant slowdowns vs a baseline."""
    from .core.history import current_commit, open_history
    from .core.regress import (
        cells_from_entries,
        cells_from_result,
        detect_regressions,
        latency_cells_from_result,
        render_regressions,
        report_to_json,
    )

    candidate_result = _load_result(args.candidate, "regress")
    if candidate_result is None:
        return 2
    candidate_cells = cells_from_result(candidate_result)
    candidate_cells.update(latency_cells_from_result(candidate_result))
    baseline_result = None
    baseline_commit = None
    commit = None
    if args.against:
        baseline_result = _load_result(args.against, "regress")
        if baseline_result is None:
            return 2
        baseline_cells = cells_from_result(baseline_result)
        baseline_cells.update(latency_cells_from_result(baseline_result))
        baseline_label = args.against
    else:
        with open_history(args.db) as store:
            commit = args.commit or current_commit()
            baseline_commit = args.baseline_commit \
                or store.latest_commit_before(commit)
            if baseline_commit is None:
                print(f"no baseline commit in {args.db} (candidate commit "
                      f"{commit[:12]}); nothing to compare against")
                return 0
            entries = store.entries(commit=baseline_commit)
        if not entries:
            print(f"sdvbs regress: no history entries for baseline commit "
                  f"{baseline_commit!r}", file=sys.stderr)
            return 2
        baseline_cells = cells_from_entries(entries)
        baseline_label = f"commit {baseline_commit[:12]}"
    report = detect_regressions(
        baseline_cells,
        candidate_cells,
        sigmas=args.sigmas,
        min_slowdown=args.min_slowdown,
        baseline_label=baseline_label,
        candidate_label=args.candidate,
    )
    if args.attribute:
        code = _attribute_report(args, report, candidate_result,
                                 baseline_result, baseline_commit, commit)
        if code != 0:
            return code
    print(render_regressions(report))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(report_to_json(report))
        print(f"wrote machine-readable verdict to {args.json_out}")
    return report.exit_code


def _run_stream(args: argparse.Namespace, cli_argv: List[str]) -> int:
    """``sdvbs stream``: paced frame streaming with latency QoS metrics."""
    from .core.streaming import (
        StreamConfig,
        render_stream_report,
        run_streams,
    )
    from .core.types import SuiteResult

    try:
        config = StreamConfig(
            benchmark=args.slug,
            size=args.size,
            fps=args.fps,
            frames=args.frames,
            streams=args.streams,
            deadline_ms=args.deadline_ms,
            warmup_frames=args.warmup_frames,
            backend=args.backend,
            variants=args.variants,
        )
    except ValueError as exc:
        print(f"sdvbs stream: {exc}", file=sys.stderr)
        return 2
    recorder = TraceRecorder() if args.trace else None
    try:
        report = run_streams(config, recorder=recorder)
    except KeyError as exc:
        print(f"sdvbs stream: {exc.args[0]}", file=sys.stderr)
        return 2
    print(render_stream_report(report))
    result = SuiteResult()
    result.manifest = run_manifest(argv=cli_argv,
                                   warmup=config.warmup_frames,
                                   repeats=config.frames,
                                   backend=config.backend)
    result.streaming = report.to_dict()
    if args.json:
        from .core.export import result_to_json

        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result_to_json(result))
        print(f"wrote streaming export (schema v8) to {args.json}")
    if args.trace and recorder is not None:
        with open(args.trace, "w", encoding="utf-8") as handle:
            handle.write(chrome_trace_json(recorder.spans, result.manifest))
        print(f"wrote frame-span trace to {args.trace}")
    if args.slo_gate:
        rate = report.merged_miss_rate()
        if rate > args.max_miss_rate:
            print(f"sdvbs stream: SLO gate failed: deadline-miss rate "
                  f"{100.0 * rate:.1f}% exceeds "
                  f"{100.0 * args.max_miss_rate:g}% "
                  f"(budget {config.budget_ms:g} ms)", file=sys.stderr)
            return 1
        print(f"SLO gate passed: deadline-miss rate {100.0 * rate:.1f}% "
              f"<= {100.0 * args.max_miss_rate:g}%")
    return 0


def _run_shard_plan(args: argparse.Namespace) -> int:
    """``sdvbs shard plan``: split the grid into shard spec files."""
    import os

    from .core.shard import plan_shards

    sizes = _parse_sizes(args.sizes)
    variants = list(range(max(1, min(5, args.variants))))
    backends = args.backends or ["fast"]
    try:
        specs = plan_shards(args.shards, args.slugs or None, sizes=sizes,
                            variants=variants, backends=backends,
                            warmup=args.warmup, repeats=args.repeats)
    except (KeyError, ValueError) as exc:
        print(f"sdvbs shard plan: {exc.args[0]}", file=sys.stderr)
        return 2
    os.makedirs(args.out_dir, exist_ok=True)
    paths = []
    for spec in specs:
        path = os.path.join(args.out_dir, f"shard-{spec.index:03d}.json")
        spec.write(path)
        paths.append(path)
    cells = sum(len(spec.cells) for spec in specs)
    print(f"plan {specs[0].plan}: {cells} cell(s) across "
          f"{len(specs)} shard(s) in {args.out_dir}/")
    for spec, path in zip(specs, paths):
        print(f"  {path}  {len(spec.cells)} cell(s)")
    return 0


def _run_shard_run(args: argparse.Namespace, cli_argv: List[str]) -> int:
    """``sdvbs shard run``: execute one spec with per-cell checkpoints."""
    from .core.export import result_to_json
    from .core.shard import ShardSpec, default_checkpoint_path, run_shard

    try:
        spec = ShardSpec.read(args.spec)
    except (OSError, ValueError, KeyError) as exc:
        print(f"sdvbs shard run: cannot read {args.spec}: {exc}",
              file=sys.stderr)
        return 2
    checkpoint = args.checkpoint or default_checkpoint_path(args.spec)
    out = args.out or default_checkpoint_path(args.spec).replace(
        ".ckpt.jsonl", ".result.json")
    try:
        report = run_shard(spec, checkpoint, resume=args.resume)
    except FileExistsError as exc:
        print(f"sdvbs shard run: {exc}", file=sys.stderr)
        return 2
    report.result.manifest = run_manifest(
        argv=cli_argv, warmup=spec.warmup, repeats=spec.repeats)
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(result_to_json(report.result))
    print(f"shard {spec.index + 1}/{spec.count} (plan {spec.plan}): "
          f"executed {len(report.executed)} cell(s), resumed past "
          f"{len(report.skipped)} checkpointed cell(s)")
    print(f"wrote shard export to {out} (checkpoints in {checkpoint})")
    return 0


def _run_shard_merge(args: argparse.Namespace) -> int:
    """``sdvbs shard merge``: fold shard exports into one suite result."""
    import json as json_module

    from .core.export import result_to_json
    from .core.history import open_history
    from .core.shard import merge_shards

    payloads = []
    for path in args.exports:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payloads.append(json_module.load(handle))
        except (OSError, ValueError) as exc:
            print(f"sdvbs shard merge: cannot read {path}: {exc}",
                  file=sys.stderr)
            return 2
    try:
        report = merge_shards(payloads)
    except ValueError as exc:
        print(f"sdvbs shard merge: {exc}", file=sys.stderr)
        return 2
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(result_to_json(report.result))
    print(f"merged {len(report.result.runs)} cell(s) from "
          f"{len(report.merged_from)}/{report.expected_shards} shard(s) "
          f"of plan {report.plan} into {args.out}")
    if report.duplicates:
        print(f"warning: {len(report.duplicates)} duplicate cell(s) "
              f"ignored: {', '.join(sorted(set(report.duplicates))[:4])}",
              file=sys.stderr)
    if report.missing:
        print(f"warning: {len(report.missing)} cell(s) missing from the "
              f"merge: {', '.join(report.missing[:4])}"
              + (", ..." if len(report.missing) > 4 else ""),
              file=sys.stderr)
    if args.db:
        with open_history(args.db) as store:
            added = store.record(report.result, commit=args.commit)
        print(f"recorded {len(added)} new cell(s) into {args.db}")
    return 0


def _run_shard_status(args: argparse.Namespace) -> int:
    """``sdvbs shard status``: per-shard completed/missing cells."""
    import glob
    import os

    from .core.shard import ShardSpec, default_checkpoint_path, \
        load_checkpoints

    spec_paths: List[str] = []
    for target in args.targets:
        if os.path.isdir(target):
            spec_paths.extend(sorted(glob.glob(
                os.path.join(target, "shard-*.json"))))
        else:
            spec_paths.append(target)
    spec_paths = [p for p in spec_paths
                  if not p.endswith((".ckpt.jsonl", ".result.json"))]
    if not spec_paths:
        print("sdvbs shard status: no shard specs found", file=sys.stderr)
        return 2
    incomplete = 0
    for path in spec_paths:
        try:
            spec = ShardSpec.read(path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"sdvbs shard status: cannot read {path}: {exc}",
                  file=sys.stderr)
            return 2
        completed = load_checkpoints(default_checkpoint_path(path), spec.plan)
        done = [c for c in spec.cell_ids() if c in completed]
        missing = [c for c in spec.cell_ids() if c not in completed]
        line = (f"{path}  plan {spec.plan}  "
                f"{len(done)}/{len(spec.cells)} done")
        if missing:
            incomplete += 1
            line += ("  missing: " + ", ".join(missing[:3])
                     + (", ..." if len(missing) > 3 else ""))
        print(line)
    return 1 if incomplete else 0


def _run_shard(args: argparse.Namespace, cli_argv: List[str]) -> int:
    """Dispatch ``sdvbs shard plan/run/merge/status``."""
    if args.shard_command == "plan":
        return _run_shard_plan(args)
    if args.shard_command == "run":
        return _run_shard_run(args, cli_argv)
    if args.shard_command == "merge":
        return _run_shard_merge(args)
    return _run_shard_status(args)


def _run_serve(args: argparse.Namespace) -> int:
    """``sdvbs serve``: the benchmark-as-a-service JSON-RPC job server."""
    from .core.serve import make_server

    low, high = (args.watermarks if args.watermarks
                 else (None, None))
    try:
        server = make_server(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_queue=args.max_queue,
            low_watermark=low,
            high_watermark=high,
            rate_limit=args.rate_limit,
            rate_burst=args.burst,
            history_db=args.db,
            work_dir=args.work_dir,
            access_log=args.access_log,
            log_file=args.log_file,
            profile_interval=args.profile_interval,
        )
    except (OSError, ValueError) as exc:
        print(f"sdvbs serve: {exc}", file=sys.stderr)
        return 2
    manager = server.manager
    host, port = server.address
    print(f"sdvbs serve: listening on http://{host}:{port} "
          f"({manager.workers} worker(s), queue {manager.max_queue}, "
          f"watermarks {manager.low_watermark}/{manager.high_watermark}"
          + (f", rate limit {manager.rate_limit:g}/s" if manager.rate_limit
             else "")
          + (f", history {manager.history_db}" if manager.history_db
             else "")
          + (f", profiling @ {manager.profiler.interval:g}s "
             f"(~{manager.profiler.overhead.get('overhead_pct', 0.0):.2f}% "
             "measured overhead)" if manager.profiler is not None else ""))
    print(f"artifacts under {manager.work_dir}; POST JSON-RPC 2.0 to / "
          "(methods and error codes in SERVING.md); GET /metrics for "
          "Prometheus; `sdvbs top` for a live view; Ctrl-C to stop"
          + (f"; events -> {args.log_file}" if args.log_file else ""))
    try:
        server.serve_forever()
        # serve_forever returns when a client called server.shutdown;
        # drain the workers before exiting so no running job is cut off.
        manager.stop()
        print("sdvbs serve: stopped (server.shutdown)")
    except KeyboardInterrupt:
        print("\nsdvbs serve: shutting down (running jobs drain)...")
        server.stop()
    return 0


def _top_rpc(url: str, method: str) -> dict:
    """One parameterless JSON-RPC call against a serve instance."""
    import json
    import urllib.request

    body = json.dumps({"jsonrpc": "2.0", "id": method,
                       "method": method, "params": {}}).encode("utf-8")
    request = urllib.request.Request(
        url.rstrip("/") + "/", data=body,
        headers={"Content-Type": "application/json",
                 "X-SDVBS-Client": "sdvbs-top"})
    with urllib.request.urlopen(request, timeout=10.0) as response:
        payload = json.loads(response.read().decode("utf-8"))
    if "error" in payload:
        error = payload["error"]
        raise OSError(f"{method}: server error {error.get('code')}: "
                      f"{error.get('message')}")
    return payload["result"]


def _run_top(args: argparse.Namespace) -> int:
    """``sdvbs top``: live operator view of a running serve instance."""
    import json
    import time

    from .core.telemetry import render_top, top_snapshot

    def frame() -> dict:
        info = _top_rpc(args.url, "server.info")
        metrics = _top_rpc(args.url, "server.metrics")
        return top_snapshot(info, metrics)

    if args.once:
        try:
            snapshot = frame()
        except OSError as exc:
            print(f"sdvbs top: {args.url}: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(snapshot, indent=2, sort_keys=True)
              if args.json else render_top(snapshot))
        return 0
    try:
        while True:
            try:
                snapshot = frame()
            except OSError as exc:
                print(f"sdvbs top: {args.url}: {exc}", file=sys.stderr)
                return 2
            if args.json:
                print(json.dumps(snapshot, sort_keys=True), flush=True)
            else:
                # Clear + home, then the frame — a poor man's curses.
                print("\x1b[2J\x1b[H" + render_top(snapshot)
                      + f"\n(every {args.interval:g}s; Ctrl-C to exit)",
                      flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _run_verify_backends(args: argparse.Namespace) -> int:
    """``sdvbs verify-backends``: ref/fast agreement on seeded inputs."""
    from .core.backend import load_all_kernels
    from .core.equivalence import render_equivalence, verify_backends

    load_all_kernels()
    sizes = _parse_sizes(args.sizes)
    variants = list(range(max(1, min(5, args.variants))))
    kernels = args.kernels or None
    try:
        verdicts = verify_backends(sizes=sizes, variants=variants,
                                   kernels=kernels)
    except KeyError as exc:
        print(f"sdvbs verify-backends: {exc.args[0]}", file=sys.stderr)
        return 2
    if kernels:
        found = {v.kernel for v in verdicts}
        missing = sorted(set(kernels) - found)
        if missing:
            print(f"sdvbs verify-backends: unknown kernels: "
                  f"{', '.join(missing)}", file=sys.stderr)
            return 2
    print(render_equivalence(verdicts))
    return 0 if all(v.ok for v in verdicts) else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``sdvbs`` command; returns the exit status."""
    parser = argparse.ArgumentParser(
        prog="sdvbs",
        description="SD-VBS reproduction: run vision benchmarks and "
        "regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the nine applications")
    sub.add_parser("tables", help="print Tables I, II and III")
    sub.add_parser("table4", help="print Table IV (parallelism)")
    sub.add_parser("sysinfo", help="print the Table III host rows (the "
                   "fields recorded in run manifests)")

    trace_parser = sub.add_parser(
        "trace",
        help="run one benchmark with per-call tracing and export a "
        "chrome://tracing / Perfetto trace",
    )
    trace_parser.add_argument("slug", help="benchmark slug (e.g. disparity)")
    trace_parser.add_argument("--size", type=_size_arg, default=InputSize.SQCIF,
                              metavar="SIZE",
                              help="SQCIF/QCIF/CIF/VGA, case-insensitive "
                              "(default: SQCIF)")
    trace_parser.add_argument("--variant", type=_int_arg("--variant", 0),
                              default=0,
                              help="input variant (0-4, default: 0)")
    trace_parser.add_argument("--out", default="trace.json", metavar="PATH",
                              help="Chrome trace-event JSON output path "
                              "(default: trace.json)")
    trace_parser.add_argument("--events", metavar="PATH", default=None,
                              help="also write the structured JSONL event "
                              "log to PATH")
    trace_parser.add_argument("--memory", action="store_true",
                              help="sample tracemalloc peak allocations "
                              "per span (slows the run)")
    trace_parser.add_argument("--top", type=_int_arg("--top", 1),
                              default=10, metavar="N",
                              help="slowest invocations to print "
                              "(default: 10)")
    _add_backend_flag(trace_parser)

    flame_parser = sub.add_parser(
        "flame",
        help="sample one benchmark with the statistical stack sampler "
        "and export a flamegraph (collapsed stacks or speedscope JSON)",
    )
    flame_parser.add_argument("slug", help="benchmark slug (e.g. disparity)")
    flame_parser.add_argument("--size", type=_size_arg,
                              default=InputSize.CIF, metavar="SIZE",
                              help="SQCIF/QCIF/CIF/VGA, case-insensitive "
                              "(default: CIF)")
    flame_parser.add_argument("--variant", type=_int_arg("--variant", 0),
                              default=0,
                              help="input variant (0-4, default: 0)")
    flame_parser.add_argument("--out", default="flame.collapsed",
                              metavar="PATH",
                              help="output path (default: flame.collapsed)")
    flame_parser.add_argument("--format",
                              choices=["collapsed", "speedscope"],
                              default="collapsed",
                              help="collapsed-stack text for flamegraph.pl/"
                              "inferno, or speedscope sampled-profile JSON "
                              "(default: collapsed)")
    _add_sampling_flags(flame_parser)
    _add_backend_flag(flame_parser)

    xcheck_parser = sub.add_parser(
        "xcheck",
        help="cross-check sampled vs instrumented per-kernel shares and "
        "fail (exit 1) when they diverge beyond the tolerance",
    )
    xcheck_parser.add_argument("slug", help="benchmark slug (e.g. disparity)")
    xcheck_parser.add_argument("--size", type=_size_arg,
                               default=InputSize.CIF, metavar="SIZE",
                               help="SQCIF/QCIF/CIF/VGA, case-insensitive "
                               "(default: CIF)")
    xcheck_parser.add_argument("--variant", type=_int_arg("--variant", 0),
                               default=0,
                               help="input variant (0-4, default: 0)")
    xcheck_parser.add_argument("--tolerance", type=float, default=5.0,
                               metavar="PTS",
                               help="maximum share disagreement in "
                               "percentage points (default: 5)")
    xcheck_parser.add_argument("--min-share", type=float, default=10.0,
                               metavar="PCT",
                               help="gate only kernels holding at least "
                               "this share on either side (default: 10)")
    _add_sampling_flags(xcheck_parser)
    _add_backend_flag(xcheck_parser)

    report_parser = sub.add_parser(
        "report",
        help="render a self-contained HTML observability report "
        "(occupancy, roofline, sampled-vs-instrumented agreement, "
        "slowest spans, manifest) with zero external references",
    )
    report_parser.add_argument("slugs", nargs="*",
                               help="benchmark slugs (default: all)")
    report_parser.add_argument("--sizes", nargs="*", metavar="SIZE",
                               type=_size_arg,
                               help="SQCIF/QCIF/CIF/VGA, case-insensitive "
                               "(default: the paper trio; VGA is "
                               "opt-in)")
    report_parser.add_argument("--out", default="report.html",
                               metavar="PATH",
                               help="HTML output path "
                               "(default: report.html)")
    report_parser.add_argument("--from", dest="from_export", default=None,
                               metavar="PATH",
                               help="render from an existing suite export "
                               "JSON instead of measuring live (no trace "
                               "section)")
    report_parser.add_argument("--json", default=None, metavar="PATH",
                               help="also write the measured suite export "
                               "JSON to PATH (live mode only)")
    report_parser.add_argument("--events", metavar="PATH", default=None,
                               help="also write the JSONL event log to "
                               "PATH (live mode only)")
    report_parser.add_argument("--tolerance", type=float, default=5.0,
                               metavar="PTS",
                               help="agreement-table tolerance in points "
                               "(default: 5)")
    report_parser.add_argument("--min-share", type=float, default=10.0,
                               metavar="PCT",
                               help="agreement-table gated-share floor "
                               "(default: 10)")
    _add_sampling_flags(report_parser)
    _add_backend_flag(report_parser)

    verify_parser = sub.add_parser(
        "verify-backends",
        help="run every dual-backend kernel under both ref and fast on "
        "the deterministic input generators and check tolerance-bounded "
        "agreement (exit 1 on any mismatch)",
    )
    verify_parser.add_argument("--sizes", nargs="*", metavar="SIZE",
                               type=_size_arg,
                               help="SQCIF/QCIF/CIF/VGA, case-insensitive "
                               "(default: the paper trio)")
    verify_parser.add_argument("--variants", type=_int_arg("--variants", 1),
                               default=1, metavar="N",
                               help="input variants checked per size, 1-5 "
                               "(default: 1)")
    verify_parser.add_argument("--kernels", nargs="*", metavar="NAME",
                               help="restrict to the named kernels (e.g. "
                               "disparity.ssd; default: all registered)")

    run_parser = sub.add_parser("run", help="run benchmarks and profile")
    run_parser.add_argument("slugs", nargs="*", help="benchmark slugs "
                            "(default: all)")
    run_parser.add_argument("--sizes", nargs="*", metavar="SIZE",
                            type=_size_arg,
                            help="SQCIF/QCIF/CIF/VGA, case-insensitive "
                            "(default: the paper trio; VGA is "
                            "opt-in)")
    run_parser.add_argument("--variants", type=_int_arg("--variants", 1),
                            default=1,
                            help="input variants per size (1-5)")
    run_parser.add_argument("--json", action="store_true",
                            help="emit the raw result as JSON instead of "
                            "the text reports")
    run_parser.add_argument("--overhead-warn", type=float, default=5.0,
                            metavar="PCT",
                            help="warn when the estimated instrumentation "
                            "overhead (measured per-probe cost x kernel "
                            "calls) exceeds this percentage of a cell's "
                            "median wall time; 0 disables (default: 5)")
    _add_measurement_flags(run_parser)

    fig2_parser = sub.add_parser("figure2", help="execution-time scaling")
    fig2_parser.add_argument("--variants", type=_int_arg("--variants", 1),
                             default=1, metavar="N",
                             help="input variants per size, 1-5 "
                             "(default: 1)")
    _add_measurement_flags(fig2_parser)

    fig3_parser = sub.add_parser("figure3", help="kernel occupancy")
    fig3_parser.add_argument("slugs", nargs="*",
                             help="benchmark slugs (default: all)")
    fig3_parser.add_argument("--variants", type=_int_arg("--variants", 1),
                             default=1, metavar="N",
                             help="input variants per size, 1-5 "
                             "(default: 1)")
    _add_measurement_flags(fig3_parser)

    compare_parser = sub.add_parser(
        "compare",
        help="compare two JSON results (from `sdvbs run --json`)",
    )
    compare_parser.add_argument("baseline", help="baseline JSON file")
    compare_parser.add_argument("candidate", help="candidate JSON file")

    history_parser = sub.add_parser(
        "history",
        help="persistent benchmark history: record suite exports keyed by "
        "commit, list and inspect them",
    )
    history_sub = history_parser.add_subparsers(dest="history_command",
                                                required=True)
    record_parser = history_sub.add_parser(
        "record", help="ingest a suite export JSON into the history store")
    record_parser.add_argument("result",
                               help="suite export (from `sdvbs run --json`)")
    record_parser.add_argument("--db", default="history.sqlite",
                               metavar="PATH",
                               help="history store path; *.jsonl selects "
                               "the append-only text backend "
                               "(default: history.sqlite)")
    record_parser.add_argument("--commit", default=None, metavar="SHA",
                               help="commit to record under (default: "
                               "current git HEAD)")
    list_parser = history_sub.add_parser(
        "list", help="recorded commits with cell counts")
    list_parser.add_argument("--db", default="history.sqlite",
                             metavar="PATH",
                             help="history store path "
                             "(default: history.sqlite)")
    list_parser.add_argument("--benchmark", default=None, metavar="SLUG",
                             help="only count cells of this benchmark")
    list_parser.add_argument("--size", default=None, metavar="SIZE",
                             help="only count cells of this input size "
                             "(SQCIF/QCIF/CIF/VGA)")
    list_parser.add_argument("--backend", default=None,
                             choices=["ref", "fast"],
                             help="only count cells measured with this "
                             "kernel backend")
    show_parser = history_sub.add_parser(
        "show", help="per-cell medians recorded for one commit")
    show_parser.add_argument("commit",
                             help="commit SHA (unambiguous prefix accepted)")
    show_parser.add_argument("--db", default="history.sqlite",
                             metavar="PATH",
                             help="history store path "
                             "(default: history.sqlite)")

    profile_parser = sub.add_parser(
        "profile",
        help="persistent profile store: record sampled folded-stack "
        "profiles keyed by commit, inspect them, and render "
        "differential flamegraphs between two commits",
    )
    profile_sub = profile_parser.add_subparsers(dest="profile_command",
                                                required=True)
    precord_parser = profile_sub.add_parser(
        "record", help="ingest a sampled suite export's profiles into "
        "the store (cells without sampling payloads are skipped)")
    precord_parser.add_argument("result",
                                help="sampled suite export (from `sdvbs "
                                "report --json`)")
    precord_parser.add_argument("--db", default="profiles.sqlite",
                                metavar="PATH",
                                help="profile store path; *.jsonl selects "
                                "the append-only text backend "
                                "(default: profiles.sqlite)")
    precord_parser.add_argument("--commit", default=None, metavar="SHA",
                                help="commit to record under (default: "
                                "current git HEAD)")
    plist_parser = profile_sub.add_parser(
        "list", help="recorded commits with profile and sample counts")
    plist_parser.add_argument("--db", default="profiles.sqlite",
                              metavar="PATH",
                              help="profile store path "
                              "(default: profiles.sqlite)")
    plist_parser.add_argument("--benchmark", default=None, metavar="SLUG",
                              help="only count profiles of this benchmark")
    pshow_parser = profile_sub.add_parser(
        "show", help="per-cell profiles recorded for one commit")
    pshow_parser.add_argument("commit",
                              help="commit SHA (unambiguous prefix "
                              "accepted)")
    pshow_parser.add_argument("--db", default="profiles.sqlite",
                              metavar="PATH",
                              help="profile store path "
                              "(default: profiles.sqlite)")
    pdiff_parser = profile_sub.add_parser(
        "diff", help="differential flamegraph between two commits' "
        "stored profiles of one cell (collapsed ±usec text, red/blue "
        "HTML, or verdict JSON)")
    pdiff_parser.add_argument("baseline",
                              help="baseline commit (unambiguous prefix "
                              "accepted)")
    pdiff_parser.add_argument("candidate",
                              help="candidate commit (unambiguous prefix "
                              "accepted)")
    pdiff_parser.add_argument("--benchmark", required=True, metavar="SLUG",
                              help="benchmark slug of the cell to diff")
    pdiff_parser.add_argument("--size", type=_size_arg,
                              default=InputSize.CIF, metavar="SIZE",
                              help="SQCIF/QCIF/CIF/VGA, case-insensitive "
                              "(default: CIF)")
    pdiff_parser.add_argument("--db", default="profiles.sqlite",
                              metavar="PATH",
                              help="profile store path "
                              "(default: profiles.sqlite)")
    pdiff_parser.add_argument("--backend", choices=["ref", "fast"],
                              default=None,
                              help="only consider profiles measured with "
                              "this kernel backend")
    pdiff_parser.add_argument("--top", type=_int_arg("--top", 1),
                              default=10, metavar="N",
                              help="kernel/frame rows to print "
                              "(default: 10)")
    pdiff_parser.add_argument("--out", default=None, metavar="PATH",
                              help="write the signed collapsed-stack "
                              "delta (`frame;frame ±usec`) to PATH")
    pdiff_parser.add_argument("--html", default=None, metavar="PATH",
                              help="write a self-contained red/blue "
                              "differential flamegraph page to PATH")
    pdiff_parser.add_argument("--json-out", default=None, metavar="PATH",
                              help="write the machine-readable diff JSON "
                              "to PATH")

    regress_parser = sub.add_parser(
        "regress",
        help="compare a run against a baseline and fail (exit 1) on "
        "slowdowns beyond the recorded noise",
    )
    regress_parser.add_argument("candidate",
                                help="candidate suite export JSON")
    regress_parser.add_argument("--against", default=None, metavar="PATH",
                                help="baseline export JSON; default: the "
                                "previous commit recorded in the history "
                                "store")
    regress_parser.add_argument("--db", default="history.sqlite",
                                metavar="PATH",
                                help="history store used when --against is "
                                "not given (default: history.sqlite)")
    regress_parser.add_argument("--commit", default=None, metavar="SHA",
                                help="candidate commit id, used to pick the "
                                "baseline from history (default: current "
                                "git HEAD)")
    regress_parser.add_argument("--baseline-commit", default=None,
                                metavar="SHA",
                                help="explicit baseline commit in the "
                                "history store (default: the most recently "
                                "recorded other commit)")
    regress_parser.add_argument("--sigmas",
                                type=_float_arg("--sigmas", 0.0),
                                default=2.0, metavar="K",
                                help="significance threshold in units of "
                                "combined recorded stddev (default: 2.0)")
    regress_parser.add_argument("--min-slowdown",
                                type=_float_arg("--min-slowdown", 0.0),
                                default=0.10, metavar="FRAC",
                                help="minimum relative slowdown to flag, "
                                "as a fraction (default: 0.10 = 10%%)")
    regress_parser.add_argument("--json-out", default=None, metavar="PATH",
                                help="also write the machine-readable "
                                "verdict JSON to PATH")
    regress_parser.add_argument("--attribute", action="store_true",
                                help="join a differential profile onto "
                                "every confirmed regression: the verdict "
                                "names the top kernels/frames responsible "
                                "and their share of the slowdown (profiles "
                                "from the two exports' sampling payloads, "
                                "or from --profiles)")
    regress_parser.add_argument("--profiles", default="profiles.sqlite",
                                metavar="PATH",
                                help="profile store consulted by "
                                "--attribute when an export side carries "
                                "no sampling payloads "
                                "(default: profiles.sqlite)")

    stream_parser = sub.add_parser(
        "stream",
        help="pace continuous frames through one application at a "
        "target FPS and report per-frame latency percentiles, jitter, "
        "sustained throughput and deadline misses",
    )
    stream_parser.add_argument("slug",
                               help="benchmark slug (e.g. disparity, "
                               "tracking, sift)")
    stream_parser.add_argument("--size", type=_size_arg,
                               default=InputSize.CIF, metavar="SIZE",
                               help="SQCIF/QCIF/CIF/VGA, case-insensitive "
                               "(default: CIF)")
    stream_parser.add_argument("--fps",
                               type=_float_arg("--fps", 0.0, exclusive=True),
                               default=10.0, metavar="N",
                               help="target frame release rate "
                               "(default: 10)")
    stream_parser.add_argument("--frames", type=_int_arg("--frames", 1),
                               default=50, metavar="N",
                               help="measured steady-state frames per "
                               "stream (default: 50)")
    stream_parser.add_argument("--streams", type=_int_arg("--streams", 1),
                               default=1, metavar="N",
                               help="concurrent streams on a thread pool "
                               "(default: 1)")
    stream_parser.add_argument("--deadline-ms",
                               type=_float_arg("--deadline-ms", 0.0),
                               default=None, metavar="MS",
                               help="per-frame latency budget in "
                               "milliseconds; 0 marks every frame a miss "
                               "(default: the frame period 1000/fps)")
    stream_parser.add_argument("--warmup-frames",
                               type=_int_arg("--warmup-frames", 0),
                               default=2, metavar="N",
                               help="paced frames discarded before the "
                               "steady-state window (default: 2)")
    stream_parser.add_argument("--variants", type=_int_arg("--variants", 1),
                               default=2, metavar="N",
                               help="input variants cycled frame-to-frame, "
                               "1-5 (default: 2)")
    stream_parser.add_argument("--json", default="stream.json",
                               metavar="PATH",
                               help="streaming export JSON path; empty "
                               "string disables (default: stream.json)")
    stream_parser.add_argument("--trace", default=None, metavar="PATH",
                               help="also write a Chrome trace with one "
                               "span per frame (pacing gaps visible in "
                               "Perfetto)")
    stream_parser.add_argument("--slo-gate", action="store_true",
                               help="exit 1 when the merged deadline-miss "
                               "rate exceeds --max-miss-rate")
    stream_parser.add_argument("--max-miss-rate",
                               type=_float_arg("--max-miss-rate", 0.0),
                               default=0.0, metavar="FRAC",
                               help="miss-rate budget for --slo-gate, as "
                               "a fraction (default: 0.0 = any miss "
                               "fails)")
    _add_backend_flag(stream_parser)

    shard_parser = sub.add_parser(
        "shard",
        help="sharded suite execution: split the benchmark grid into "
        "independent spec files, run them anywhere with per-cell "
        "checkpoints (resumable after a kill), and merge the exports "
        "back into one suite result",
    )
    shard_sub = shard_parser.add_subparsers(dest="shard_command",
                                            required=True)
    splan_parser = shard_sub.add_parser(
        "plan", help="deterministically split the (benchmark, size, "
        "variant, backend) grid into N shard spec files")
    splan_parser.add_argument("slugs", nargs="*",
                              help="benchmark slugs (default: all nine)")
    splan_parser.add_argument("--sizes", nargs="*", metavar="SIZE",
                              type=_size_arg,
                              help="SQCIF/QCIF/CIF/VGA, case-insensitive "
                              "(default: the paper trio; VGA is "
                              "opt-in)")
    splan_parser.add_argument("--variants", type=_int_arg("--variants", 1),
                              default=1, metavar="N",
                              help="input variants per size, 1-5 "
                              "(default: 1)")
    splan_parser.add_argument("--backends", nargs="+",
                              choices=["ref", "fast"], default=None,
                              metavar="BACKEND",
                              help="kernel backends to cover (ref/fast, "
                              "default: fast)")
    splan_parser.add_argument("--shards", type=_int_arg("--shards", 1),
                              default=2, metavar="N",
                              help="number of shards to split into "
                              "(default: 2)")
    splan_parser.add_argument("--warmup", type=_int_arg("--warmup", 0),
                              default=0, metavar="N",
                              help="discarded warmup runs per cell "
                              "(default: 0)")
    splan_parser.add_argument("--repeats", type=_int_arg("--repeats", 1),
                              default=1, metavar="N",
                              help="measured runs per cell (default: 1)")
    splan_parser.add_argument("--out-dir", default="plan", metavar="DIR",
                              help="directory for shard-NNN.json specs "
                              "(default: plan)")
    srun_parser = shard_sub.add_parser(
        "run", help="execute one shard spec, checkpointing every "
        "completed cell; --resume skips already-checkpointed cells")
    srun_parser.add_argument("spec", help="shard spec file (from "
                             "`sdvbs shard plan`)")
    srun_parser.add_argument("--resume", action="store_true",
                             help="load existing checkpoints and execute "
                             "only the missing cells (the crash-recovery "
                             "path)")
    srun_parser.add_argument("--checkpoint", default=None, metavar="PATH",
                             help="checkpoint JSONL path (default: the "
                             "spec path with .ckpt.jsonl)")
    srun_parser.add_argument("--out", default=None, metavar="PATH",
                             help="shard export JSON path (default: the "
                             "spec path with .result.json)")
    smerge_parser = shard_sub.add_parser(
        "merge", help="fold shard exports into one merged suite result "
        "(and optionally ingest it into the history store, "
        "idempotently)")
    smerge_parser.add_argument("exports", nargs="+",
                               help="shard export JSONs (from `sdvbs "
                               "shard run`)")
    smerge_parser.add_argument("--out", default="merged.json",
                               metavar="PATH",
                               help="merged export path "
                               "(default: merged.json)")
    smerge_parser.add_argument("--db", default=None, metavar="PATH",
                               help="also record the merged result into "
                               "this history store (re-merging the same "
                               "shards adds nothing)")
    smerge_parser.add_argument("--commit", default=None, metavar="SHA",
                               help="commit to record under (default: "
                               "current git HEAD)")
    sstatus_parser = shard_sub.add_parser(
        "status", help="per-shard progress from checkpoint files "
        "(exit 1 when any shard has missing cells)")
    sstatus_parser.add_argument("targets", nargs="+",
                                help="shard spec files or plan "
                                "directories")

    serve_parser = sub.add_parser(
        "serve",
        help="benchmark-as-a-service: a long-running JSON-RPC job server "
        "executing run/trace/flame/report/regress specs on a bounded "
        "worker pool with admission control and a result cache "
        "(operator's manual: SERVING.md)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                              help="bind address; the default stays on "
                              "localhost because the server has no "
                              "authentication (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=_int_arg("--port", 0),
                              default=8642, metavar="N",
                              help="TCP port; 0 binds an ephemeral port "
                              "(default: 8642)")
    serve_parser.add_argument("--workers", type=_int_arg("--workers", 1),
                              default=2, metavar="N",
                              help="concurrent job executor threads "
                              "(default: 2)")
    serve_parser.add_argument("--max-queue",
                              type=_int_arg("--max-queue", 1),
                              default=16, metavar="N",
                              help="hard cap on queued jobs; beyond it "
                              "submissions are rejected with a typed "
                              "queue-full error (default: 16)")
    serve_parser.add_argument("--watermarks", nargs=2,
                              type=_int_arg("--watermarks", 1),
                              default=None, metavar=("LOW", "HIGH"),
                              help="backpressure hysteresis: at HIGH "
                              "queued jobs only high-priority submissions "
                              "are admitted until the backlog drains to "
                              "LOW (default: max-queue/2 and max-queue)")
    serve_parser.add_argument("--rate-limit",
                              type=_float_arg("--rate-limit", 0.0),
                              default=0.0, metavar="N",
                              help="per-client submissions per second via "
                              "a token bucket; 0 disables (default: 0)")
    serve_parser.add_argument("--burst", type=_int_arg("--burst", 1),
                              default=None, metavar="N",
                              help="token-bucket burst capacity "
                              "(default: max(1, rate-limit))")
    serve_parser.add_argument("--db", default=None, metavar="PATH",
                              help="record completed run jobs into this "
                              "history store (idempotent per spec digest; "
                              "default: no history)")
    serve_parser.add_argument("--work-dir", default=None, metavar="DIR",
                              help="artifact directory, one subdirectory "
                              "per job (default: a fresh temp dir)")
    serve_parser.add_argument("--access-log", action="store_true",
                              help="emit one structured http.access event "
                              "per HTTP response into the event log "
                              "(default: off; metrics count regardless)")
    serve_parser.add_argument("--log-file", default=None, metavar="PATH",
                              help="append structured JSON-lines events "
                              "(job lifecycle, admission, access log) to "
                              "this file (default: in-memory ring only)")
    serve_parser.add_argument("--profile-interval",
                              type=_float_arg("--profile-interval", 0.0),
                              default=0.0, metavar="SEC",
                              help="continuous profiling: sample each "
                              "worker's stack at this interval while it "
                              "executes, merging into per-job-type "
                              "aggregates (server.profile RPC, "
                              "/artifacts/profile/<type>.collapsed); "
                              "0 disables (default: 0; try 0.005)")

    top_parser = sub.add_parser(
        "top",
        help="live view of a running sdvbs serve instance: queue depth, "
        "per-state job counts, worker utilization, cache hit rate and "
        "queue-wait/exec latency percentiles, polled over JSON-RPC",
    )
    top_parser.add_argument("--url", default="http://127.0.0.1:8642",
                            metavar="URL",
                            help="server base URL "
                            "(default: http://127.0.0.1:8642)")
    top_parser.add_argument("--interval",
                            type=_float_arg("--interval", 0.1),
                            default=2.0, metavar="SECONDS",
                            help="refresh period (default: 2.0)")
    top_parser.add_argument("--once", action="store_true",
                            help="render a single frame and exit")
    top_parser.add_argument("--json", action="store_true",
                            help="print the frame as JSON instead of the "
                            "terminal view (implies a machine consumer; "
                            "pairs with --once for scripting)")

    args = parser.parse_args(argv)
    cli_argv = list(argv) if argv is not None else list(sys.argv[1:])

    if args.command == "list":
        print(render_table1())
        return 0
    if args.command == "tables":
        print(render_table1())
        print()
        print(render_table2())
        print()
        print(render_table3())
        return 0
    if args.command == "table4":
        print(render_table4())
        print()
        print(render_work_models())
        return 0
    if args.command == "sysinfo":
        print(render_table3())
        return 0
    if args.command == "trace":
        return _run_trace(args, cli_argv)
    if args.command == "flame":
        return _run_flame(args)
    if args.command == "xcheck":
        return _run_xcheck(args)
    if args.command == "report":
        return _run_report(args, cli_argv)
    if args.command == "verify-backends":
        return _run_verify_backends(args)
    if args.command == "history":
        return _run_history(args)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "regress":
        return _run_regress(args)
    if args.command == "stream":
        return _run_stream(args, cli_argv)
    if args.command == "shard":
        return _run_shard(args, cli_argv)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "top":
        return _run_top(args)

    from .core.profiler import measure_probe_overhead

    variants = list(range(max(1, min(5, getattr(args, "variants", 1)))))
    measurement = {
        "warmup": max(0, getattr(args, "warmup", 0)),
        "repeats": max(1, getattr(args, "repeats", 1)),
        "jobs": max(1, getattr(args, "jobs", 1)),
        "backend": getattr(args, "backend", None),
    }
    instrumentation = measure_probe_overhead()
    manifest = run_manifest(argv=cli_argv, instrumentation=instrumentation,
                            **measurement)
    recorder = TraceRecorder() if getattr(args, "events", None) else None
    if args.command == "run":
        slugs = args.slugs or None
        sizes = _parse_sizes(args.sizes)
        result = run_suite(slugs, sizes=sizes, variants=variants,
                           recorder=recorder, **measurement)
        result.manifest = manifest
        _write_events(args.events, recorder, manifest)
        _warn_probe_overhead(result, instrumentation, args.overhead_warn)
        if args.json:
            from .core.export import result_to_json

            print(result_to_json(result))
            return 0
        print(render_suite_summary(result))
        print()
        print(render_figure3(result))
        return 0
    if args.command == "figure2":
        slugs = [b.slug for b in all_benchmarks() if b.in_figure2]
        result = run_suite(slugs, variants=variants, recorder=recorder,
                           **measurement)
        result.manifest = manifest
        _write_events(args.events, recorder, manifest)
        print(render_figure2(result, show_noise=measurement["repeats"] > 1))
        return 0
    if args.command == "figure3":
        slugs = args.slugs or None
        result = run_suite(slugs, variants=variants, recorder=recorder,
                           **measurement)
        result.manifest = manifest
        _write_events(args.events, recorder, manifest)
        print(render_figure3(result))
        return 0
    if args.command == "compare":
        from .core.compare import render_comparison
        from .core.export import result_from_json

        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = result_from_json(handle.read())
        with open(args.candidate, "r", encoding="utf-8") as handle:
            candidate = result_from_json(handle.read())
        print(render_comparison(baseline, candidate,
                                baseline_label=args.baseline,
                                candidate_label=args.candidate))
        return 0
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
