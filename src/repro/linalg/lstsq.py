"""Least-squares solvers — the stitch benchmark's "LS Solver" kernel.

Two routes are provided: QR-based (the numerically preferred path used by
RANSAC model fitting) and normal equations (the cheap path used where the
system is tiny and well conditioned, e.g. KLT's 2x2 solves).  A conjugate-
gradient solver covers the SVM benchmark's "Conjugate Matrix" kernel.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .decompose import qr_decompose
from .matrix import SingularMatrixError, solve


def lstsq_qr(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Minimize ``|a @ x - b|`` via thin QR: solve ``R x = Q^T b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {a.shape}")
    if b.shape[0] != a.shape[0]:
        raise ValueError(f"rhs of shape {b.shape} incompatible with {a.shape}")
    q, r = qr_decompose(a)
    rhs = q.T @ b
    n = a.shape[1]
    diag = np.abs(np.diag(r))
    if diag.min() <= 1e-12 * max(1.0, diag.max()):
        raise SingularMatrixError("rank-deficient least-squares system")
    x = np.zeros_like(rhs) if rhs.ndim > 1 else np.zeros(n)
    if rhs.ndim == 1:
        for row in range(n - 1, -1, -1):
            x[row] = (rhs[row] - r[row, row + 1 :] @ x[row + 1 :]) / r[row, row]
    else:
        x = np.zeros((n, rhs.shape[1]))
        for row in range(n - 1, -1, -1):
            x[row] = (rhs[row] - r[row, row + 1 :] @ x[row + 1 :]) / r[row, row]
    return x


def lstsq_normal(a: np.ndarray, b: np.ndarray,
                 ridge: float = 0.0) -> np.ndarray:
    """Least squares via the normal equations ``(A^T A + ridge I) x = A^T b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    gram = a.T @ a
    if ridge > 0.0:
        gram = gram + ridge * np.eye(gram.shape[0])
    return solve(gram, a.T @ b)


def conjugate_gradient(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: Optional[int] = None,
) -> np.ndarray:
    """Solve ``A x = b`` for symmetric positive-definite ``A`` by CG.

    ``matvec`` applies ``A``; convergence is declared when the residual
    norm falls below ``tol * |b|``.
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - matvec(x)
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    limit = max_iter if max_iter is not None else 4 * n
    for _ in range(limit):
        if np.sqrt(rs_old) <= tol * b_norm:
            break
        ap = matvec(p)
        denom = float(p @ ap)
        if denom <= 0.0:
            raise SingularMatrixError("operator is not positive definite")
        alpha = rs_old / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return x
