"""Clean matrix operations — the suite's "Matrix Ops" kernel family.

The SD-VBS C code carries its own small matrix library (multiply,
transpose, inversion, solve) rather than calling BLAS/LAPACK, because the
point of the suite is analyzable kernels.  We keep that spirit: everything
here is implemented directly (Gauss-Jordan with partial pivoting, forward/
back substitution) on top of numpy arrays as storage only.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class SingularMatrixError(ValueError):
    """Raised when elimination meets a (numerically) singular matrix."""


def _as_matrix(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {a.shape}")
    return a


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product with shape checking."""
    a = _as_matrix(a)
    b = _as_matrix(b)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} @ {b.shape}")
    return a @ b


def transpose(a: np.ndarray) -> np.ndarray:
    """Materialized transpose."""
    return _as_matrix(a).T.copy()


def identity(n: int) -> np.ndarray:
    """The ``n x n`` identity matrix (float64)."""
    if n < 0:
        raise ValueError("dimension must be non-negative")
    return np.eye(n, dtype=np.float64)


def solve(a: np.ndarray, b: np.ndarray, pivot_tol: float = 1e-12) -> np.ndarray:
    """Solve ``a @ x = b`` by Gaussian elimination with partial pivoting.

    ``b`` may be a vector or a matrix of right-hand sides.
    """
    a = _as_matrix(a)
    n, m = a.shape
    if n != m:
        raise ValueError(f"coefficient matrix must be square, got {a.shape}")
    b = np.asarray(b, dtype=np.float64)
    vector_rhs = b.ndim == 1
    rhs = b.reshape(n, -1).copy() if b.shape[0] == n else None
    if rhs is None:
        raise ValueError(f"rhs of shape {b.shape} incompatible with {a.shape}")
    work = a.copy()
    scale = max(1.0, float(np.abs(work).max()))
    for col in range(n):
        pivot_row = col + int(np.argmax(np.abs(work[col:, col])))
        pivot = work[pivot_row, col]
        if abs(pivot) <= pivot_tol * scale:
            raise SingularMatrixError(f"singular at column {col}")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            rhs[[col, pivot_row]] = rhs[[pivot_row, col]]
        factors = work[col + 1 :, col] / work[col, col]
        work[col + 1 :, col:] -= np.outer(factors, work[col, col:])
        rhs[col + 1 :] -= np.outer(factors, rhs[col])
    x = np.zeros_like(rhs)
    for row in range(n - 1, -1, -1):
        x[row] = (rhs[row] - work[row, row + 1 :] @ x[row + 1 :]) / work[row, row]
    return x[:, 0] if vector_rhs else x


def inverse(a: np.ndarray, pivot_tol: float = 1e-12) -> np.ndarray:
    """Matrix inverse via Gauss-Jordan (solve against the identity)."""
    a = _as_matrix(a)
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got {a.shape}")
    return solve(a, identity(a.shape[0]), pivot_tol)


def inverse_2x2(a: np.ndarray, tol: float = 1e-12) -> np.ndarray:
    """Closed-form 2x2 inverse — KLT's "Matrix Inversion" kernel.

    Tracking solves a 2x2 structure-tensor system per feature per
    iteration; the closed form is what the C suite uses.
    """
    a = _as_matrix(a)
    if a.shape != (2, 2):
        raise ValueError(f"expected 2x2 matrix, got {a.shape}")
    det = a[0, 0] * a[1, 1] - a[0, 1] * a[1, 0]
    scale = max(1.0, float(np.abs(a).max()) ** 2)
    if abs(det) <= tol * scale:
        raise SingularMatrixError("2x2 matrix is singular")
    return np.array(
        [[a[1, 1], -a[0, 1]], [-a[1, 0], a[0, 0]]], dtype=np.float64
    ) / det


def determinant(a: np.ndarray) -> float:
    """Determinant via the elimination used by :func:`solve`."""
    a = _as_matrix(a)
    n, m = a.shape
    if n != m:
        raise ValueError(f"matrix must be square, got {a.shape}")
    work = a.copy()
    det = 1.0
    for col in range(n):
        pivot_row = col + int(np.argmax(np.abs(work[col:, col])))
        pivot = work[pivot_row, col]
        if pivot == 0.0:
            return 0.0
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            det = -det
        det *= work[col, col]
        factors = work[col + 1 :, col] / work[col, col]
        work[col + 1 :, col:] -= np.outer(factors, work[col, col:])
    return float(det)


def lu_decompose(a: np.ndarray,
                 pivot_tol: float = 1e-12) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Doolittle LU with partial pivoting: returns ``(P, L, U)``.

    ``P @ a == L @ U`` with unit-diagonal ``L``.
    """
    a = _as_matrix(a)
    n, m = a.shape
    if n != m:
        raise ValueError(f"matrix must be square, got {a.shape}")
    upper = a.copy()
    lower = identity(n)
    perm = identity(n)
    scale = max(1.0, float(np.abs(a).max()))
    for col in range(n):
        pivot_row = col + int(np.argmax(np.abs(upper[col:, col])))
        if abs(upper[pivot_row, col]) <= pivot_tol * scale:
            raise SingularMatrixError(f"singular at column {col}")
        if pivot_row != col:
            upper[[col, pivot_row]] = upper[[pivot_row, col]]
            perm[[col, pivot_row]] = perm[[pivot_row, col]]
            lower[[col, pivot_row], :col] = lower[[pivot_row, col], :col]
        factors = upper[col + 1 :, col] / upper[col, col]
        lower[col + 1 :, col] = factors
        upper[col + 1 :, col:] -= np.outer(factors, upper[col, col:])
        upper[col + 1 :, col] = 0.0
    return perm, lower, upper


def cholesky(a: np.ndarray, tol: float = 1e-12) -> np.ndarray:
    """Lower-triangular Cholesky factor of a symmetric positive-definite
    matrix: ``L @ L.T == a``.

    Raises :class:`SingularMatrixError` when a pivot is non-positive
    (matrix not positive definite).
    """
    a = _as_matrix(a)
    n, m = a.shape
    if n != m:
        raise ValueError(f"matrix must be square, got {a.shape}")
    if not np.allclose(a, a.T, atol=1e-10 * max(1.0, float(np.abs(a).max()))):
        raise ValueError("matrix is not symmetric")
    lower = np.zeros_like(a)
    scale = max(1.0, float(np.abs(a).max()))
    for j in range(n):
        pivot = a[j, j] - float(lower[j, :j] @ lower[j, :j])
        if pivot <= tol * scale:
            raise SingularMatrixError(
                f"non-positive pivot at column {j}: not positive definite"
            )
        lower[j, j] = pivot**0.5
        if j + 1 < n:
            lower[j + 1 :, j] = (
                a[j + 1 :, j] - lower[j + 1 :, :j] @ lower[j, :j]
            ) / lower[j, j]
    return lower


def solve_spd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve a symmetric positive-definite system via Cholesky.

    Roughly half the work of general elimination; the right route for
    normal-equation and Gram systems.
    """
    lower = cholesky(a)
    b = np.asarray(b, dtype=np.float64)
    vector_rhs = b.ndim == 1
    rhs = b.reshape(lower.shape[0], -1).astype(np.float64).copy()
    n = lower.shape[0]
    # Forward substitution L y = b.
    for row in range(n):
        rhs[row] = (rhs[row] - lower[row, :row] @ rhs[:row]) / lower[row, row]
    # Back substitution L^T x = y.
    for row in range(n - 1, -1, -1):
        rhs[row] = (
            rhs[row] - lower[row + 1 :, row] @ rhs[row + 1 :]
        ) / lower[row, row]
    return rhs[:, 0] if vector_rhs else rhs
