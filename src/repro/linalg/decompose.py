"""Orthogonal decompositions: Householder QR and one-sided Jacobi SVD.

"QR factorizations" appears in the segmentation benchmark's kernel list
(the discretization step orthogonalizes its rotation iteratively) and
"SVD" in image stitch (homography estimation / RANSAC model fitting).
Both are implemented directly rather than delegated to LAPACK.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def qr_decompose(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Householder QR of an ``m x n`` matrix with ``m >= n``.

    Returns the thin factors: ``q`` is ``m x n`` with orthonormal columns,
    ``r`` is ``n x n`` upper triangular with non-negative diagonal, and
    ``q @ r == a``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {a.shape}")
    m, n = a.shape
    if m < n:
        raise ValueError(f"QR requires m >= n, got {a.shape}")
    r = a.copy()
    q_full = np.eye(m)
    for col in range(n):
        x = r[col:, col]
        norm_x = np.linalg.norm(x)
        if norm_x == 0.0:
            continue
        v = x.copy()
        v[0] += np.copysign(norm_x, x[0] if x[0] != 0 else 1.0)
        v_norm = np.linalg.norm(v)
        if v_norm == 0.0:
            continue
        v /= v_norm
        r[col:, col:] -= 2.0 * np.outer(v, v @ r[col:, col:])
        q_full[:, col:] -= 2.0 * np.outer(q_full[:, col:] @ v, v)
    q = q_full[:, :n]
    r = np.triu(r[:n, :])
    # Normalize signs so the diagonal of R is non-negative (unique thin QR).
    signs = np.where(np.diag(r) < 0.0, -1.0, 1.0)
    return q * signs, r * signs[:, None]


def svd_jacobi(a: np.ndarray, tol: float = 1e-12,
               max_sweeps: int = 60) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One-sided Jacobi SVD of an ``m x n`` matrix with ``m >= n``.

    Returns ``(u, s, vt)`` with ``u`` ``m x n`` column-orthonormal, ``s``
    the singular values in descending order, and ``u @ diag(s) @ vt == a``.

    The one-sided method repeatedly rotates column pairs of a working copy
    until all pairs are mutually orthogonal; the column norms are then the
    singular values.  Accumulating the rotations yields ``v``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {a.shape}")
    transposed = a.shape[0] < a.shape[1]
    work = a.T.copy() if transposed else a.copy()
    m, n = work.shape
    v = np.eye(n)
    frobenius = np.linalg.norm(work)
    threshold = tol * max(frobenius, 1.0)
    for _sweep in range(max_sweeps):
        off_diagonal = 0.0
        for p in range(n - 1):
            for q in range(p + 1, n):
                alpha = float(work[:, p] @ work[:, p])
                beta = float(work[:, q] @ work[:, q])
                gamma = float(work[:, p] @ work[:, q])
                off_diagonal = max(off_diagonal, abs(gamma))
                if abs(gamma) <= threshold * threshold:
                    continue
                zeta = (beta - alpha) / (2.0 * gamma)
                t = np.sign(zeta) / (abs(zeta) + np.hypot(1.0, zeta))
                c = 1.0 / np.hypot(1.0, t)
                s = c * t
                col_p = work[:, p].copy()
                work[:, p] = c * col_p - s * work[:, q]
                work[:, q] = s * col_p + c * work[:, q]
                vcol_p = v[:, p].copy()
                v[:, p] = c * vcol_p - s * v[:, q]
                v[:, q] = s * vcol_p + c * v[:, q]
        if off_diagonal <= threshold * threshold:
            break
    singular = np.linalg.norm(work, axis=0)
    order = np.argsort(singular)[::-1]
    singular = singular[order]
    work = work[:, order]
    v = v[:, order]
    u = np.zeros((m, n))
    for j in range(n):
        if singular[j] > threshold:
            u[:, j] = work[:, j] / singular[j]
        else:
            # Null-space column: extend to an orthonormal set.
            basis = np.zeros(m)
            basis[j % m] = 1.0
            for k in range(j):
                basis -= (u[:, k] @ basis) * u[:, k]
            norm = np.linalg.norm(basis)
            u[:, j] = basis / norm if norm > 0 else basis
    if transposed:
        # We factored a.T = u s v^T, so a = v s u^T.
        return v, singular, u.T
    return u, singular, v.T


def null_vector(a: np.ndarray) -> np.ndarray:
    """Unit vector minimizing ``|a @ x|`` — the last right-singular vector.

    This is the standard DLT step for homography estimation in stitch.
    """
    _u, _s, vt = svd_jacobi(a)
    return vt[-1]


def pseudo_inverse(a: np.ndarray, rcond: float = 1e-10) -> np.ndarray:
    """Moore-Penrose pseudo-inverse built from :func:`svd_jacobi`."""
    a = np.asarray(a, dtype=np.float64)
    transposed = a.shape[0] < a.shape[1]
    work = a.T if transposed else a
    u, s, vt = svd_jacobi(work)
    cutoff = rcond * (s[0] if s.size else 0.0)
    inv_s = np.where(s > cutoff, 1.0 / np.where(s > cutoff, s, 1.0), 0.0)
    pinv = vt.T @ (inv_s[:, None] * u.T)
    return pinv.T if transposed else pinv
