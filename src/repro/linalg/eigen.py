"""Symmetric eigensolvers: cyclic Jacobi and Lanczos.

The segmentation benchmark's "Eigensolve" kernel computes the smallest
eigenvectors of a (large, sparse-structured) normalized Laplacian.  We
provide a dense cyclic-Jacobi solver for small systems and a Lanczos
iteration with full reorthogonalization for the Laplacian itself, with the
small tridiagonal problem delegated back to Jacobi.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np


def jacobi_eigh(a: np.ndarray, tol: float = 1e-12,
                max_sweeps: int = 100) -> Tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.

    Returns ``(eigenvalues, eigenvectors)`` in ascending eigenvalue order
    with eigenvectors in columns: ``a @ v[:, i] == w[i] * v[:, i]``.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expected a square matrix, got {a.shape}")
    if not np.allclose(a, a.T, atol=1e-10 * max(1.0, float(np.abs(a).max()))):
        raise ValueError("matrix is not symmetric")
    n = a.shape[0]
    work = a.copy()
    vectors = np.eye(n)
    scale = max(1.0, float(np.abs(a).max()))
    for _sweep in range(max_sweeps):
        off = np.sqrt(np.sum(np.tril(work, -1) ** 2))
        if off <= tol * scale:
            break
        for p in range(n - 1):
            for q in range(p + 1, n):
                apq = work[p, q]
                if abs(apq) <= tol * scale / max(1, n):
                    continue
                theta = (work[q, q] - work[p, p]) / (2.0 * apq)
                t = np.sign(theta) / (abs(theta) + np.hypot(1.0, theta))
                if theta == 0.0:
                    t = 1.0
                c = 1.0 / np.hypot(1.0, t)
                s = c * t
                rot_p = work[:, p].copy()
                rot_q = work[:, q].copy()
                work[:, p] = c * rot_p - s * rot_q
                work[:, q] = s * rot_p + c * rot_q
                rot_p = work[p, :].copy()
                rot_q = work[q, :].copy()
                work[p, :] = c * rot_p - s * rot_q
                work[q, :] = s * rot_p + c * rot_q
                vec_p = vectors[:, p].copy()
                vectors[:, p] = c * vec_p - s * vectors[:, q]
                vectors[:, q] = s * vec_p + c * vectors[:, q]
    values = np.diag(work).copy()
    order = np.argsort(values)
    return values[order], vectors[:, order]


def tridiagonal_eigh(diag: np.ndarray,
                     off: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of a symmetric tridiagonal matrix (QL + shifts).

    ``diag`` holds the ``n`` diagonal entries, ``off`` the ``n - 1``
    sub-diagonal entries.  Classic ``tql2`` with implicit Wilkinson-style
    shifts: O(n^2) work, returns ascending eigenvalues and eigenvectors in
    columns.
    """
    d = np.asarray(diag, dtype=np.float64).copy()
    n = d.size
    e = np.zeros(n)
    if n > 1:
        off = np.asarray(off, dtype=np.float64)
        if off.size != n - 1:
            raise ValueError(f"off-diagonal must have {n - 1} entries")
        e[: n - 1] = off
    z = np.eye(n)
    for l in range(n):
        for _iteration in range(50):
            # Find the end of the unreduced block starting at l.
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if abs(e[m]) <= 1e-15 * dd:
                    break
                m += 1
            if m == l:
                break
            g = (d[l + 1] - d[l]) / (2.0 * e[l])
            r = np.hypot(g, 1.0)
            g = d[m] - d[l] + e[l] / (g + (r if g >= 0 else -r))
            s, c = 1.0, 1.0
            p = 0.0
            for i in range(m - 1, l - 1, -1):
                f = s * e[i]
                b = c * e[i]
                r = np.hypot(f, g)
                e[i + 1] = r
                if r == 0.0:
                    d[i + 1] -= p
                    e[m] = 0.0
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * b
                p = s * r
                d[i + 1] = g + p
                g = c * r - b
                col_next = z[:, i + 1].copy()
                z[:, i + 1] = s * z[:, i] + c * col_next
                z[:, i] = c * z[:, i] - s * col_next
            else:
                d[l] -= p
                e[l] = g
                e[m] = 0.0
                continue
        # block converged for index l
    order = np.argsort(d)
    return d[order], z[:, order]


def lanczos(matvec: Callable[[np.ndarray], np.ndarray], n: int, k: int,
            seed: int = 0, tol: float = 1e-10) -> Tuple[np.ndarray, np.ndarray]:
    """Lanczos iteration with full reorthogonalization.

    ``matvec`` applies a symmetric ``n x n`` operator.  Builds a ``k``-step
    Krylov basis, eigensolves the tridiagonal projection with Jacobi, and
    returns the ``k`` Ritz pairs ``(values ascending, vectors in columns)``.
    Early termination (invariant subspace) shrinks ``k``.
    """
    if k < 1 or k > n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    rng = np.random.default_rng(seed)
    q = rng.standard_normal(n)
    q /= np.linalg.norm(q)
    basis = [q]
    alphas = []
    betas = []
    for j in range(k):
        w = matvec(basis[j])
        alpha = float(basis[j] @ w)
        alphas.append(alpha)
        w = w - alpha * basis[j]
        if j > 0:
            w = w - betas[-1] * basis[j - 1]
        # Full reorthogonalization for numerical stability.
        for vec in basis:
            w -= (vec @ w) * vec
        beta = float(np.linalg.norm(w))
        if j == k - 1:
            break
        if beta <= tol:
            break  # invariant subspace found
        betas.append(beta)
        basis.append(w / beta)
    steps = len(alphas)
    values, small_vectors = tridiagonal_eigh(
        np.array(alphas), np.array(betas[: steps - 1])
    )
    q_matrix = np.stack(basis[:steps], axis=1)
    vectors = q_matrix @ small_vectors
    return values, vectors


def smallest_eigenvectors(matrix: np.ndarray, count: int,
                          seed: int = 0,
                          residual_tol: float = 1e-6) -> Tuple[np.ndarray, np.ndarray]:
    """The ``count`` smallest eigenpairs of a symmetric matrix via Lanczos.

    Grows the Krylov space until the Ritz-pair residuals
    ``|A v - lambda v|`` fall below ``residual_tol`` (relative to the
    matrix scale) or the space spans the whole matrix.  Small systems fall
    back to the dense Jacobi solver directly.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    if count < 1 or count > n:
        raise ValueError(f"need 1 <= count <= n, got count={count}, n={n}")
    if n <= 64:
        values, vectors = jacobi_eigh(matrix)
        return values[:count], vectors[:, :count]
    scale = max(1.0, float(np.abs(matrix).max()))
    k = min(n, max(2 * count + 20, 40))
    while True:
        values, vectors = lanczos(lambda v: matrix @ v, n, k, seed=seed)
        values = values[:count]
        vectors = vectors[:, :count]
        residual = np.abs(matrix @ vectors - vectors * values).max()
        if residual <= residual_tol * scale or k >= n:
            return values, vectors
        k = min(n, 2 * k)


def smallest_eigenvectors_operator(
    matvec: Callable[[np.ndarray], np.ndarray],
    n: int,
    count: int,
    seed: int = 0,
    residual_tol: float = 1e-5,
    scale: float = 1.0,
    max_krylov: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Operator form of :func:`smallest_eigenvectors` (for sparse systems).

    ``matvec`` applies a symmetric operator of dimension ``n``; the Krylov
    space grows until Ritz residuals fall below ``residual_tol * scale``
    or reach ``max_krylov`` (default ``min(n, 400)``).
    """
    if count < 1 or count > n:
        raise ValueError(f"need 1 <= count <= n, got count={count}, n={n}")
    cap = max_krylov if max_krylov > 0 else min(n, 400)
    k = min(cap, max(2 * count + 20, 40))
    while True:
        values, vectors = lanczos(matvec, n, k, seed=seed)
        values = values[:count]
        vectors = vectors[:, :count]
        applied = np.stack(
            [matvec(vectors[:, j]) for j in range(count)], axis=1
        )
        residual = np.abs(applied - vectors * values).max()
        if residual <= residual_tol * max(scale, 1.0) or k >= cap:
            return values, vectors
        k = min(cap, 2 * k)


def power_iteration(matrix: np.ndarray, iterations: int = 200,
                    seed: int = 0, tol: float = 1e-12) -> Tuple[float, np.ndarray]:
    """Dominant eigenpair of a symmetric matrix by power iteration."""
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    rng = np.random.default_rng(seed)
    vec = rng.standard_normal(n)
    vec /= np.linalg.norm(vec)
    value = 0.0
    for _ in range(iterations):
        nxt = matrix @ vec
        norm = np.linalg.norm(nxt)
        if norm == 0.0:
            return 0.0, vec
        nxt /= norm
        new_value = float(nxt @ matrix @ nxt)
        if abs(new_value - value) <= tol * max(1.0, abs(new_value)):
            vec = nxt
            value = new_value
            break
        vec = nxt
        value = new_value
    return value, vec
