"""From-scratch linear algebra (the suite's matrix-operation kernels)."""

from .decompose import null_vector, pseudo_inverse, qr_decompose, svd_jacobi
from .eigen import (
    jacobi_eigh,
    lanczos,
    power_iteration,
    smallest_eigenvectors,
    smallest_eigenvectors_operator,
    tridiagonal_eigh,
)
from .lstsq import conjugate_gradient, lstsq_normal, lstsq_qr
from .matrix import (
    SingularMatrixError,
    cholesky,
    determinant,
    identity,
    inverse,
    inverse_2x2,
    lu_decompose,
    matmul,
    solve,
    solve_spd,
    transpose,
)

__all__ = [
    "SingularMatrixError",
    "cholesky",
    "conjugate_gradient",
    "determinant",
    "identity",
    "inverse",
    "inverse_2x2",
    "jacobi_eigh",
    "lanczos",
    "lstsq_normal",
    "lstsq_qr",
    "lu_decompose",
    "matmul",
    "null_vector",
    "power_iteration",
    "pseudo_inverse",
    "qr_decompose",
    "smallest_eigenvectors",
    "smallest_eigenvectors_operator",
    "solve",
    "solve_spd",
    "transpose",
    "tridiagonal_eigh",
]
