"""JSON serialization of suite results for downstream tooling.

Architecture studies consume profiles programmatically; this module
flattens :class:`~repro.core.types.SuiteResult` into plain dictionaries
(JSON-ready) and back, so runs can be stored, diffed and post-processed
outside this package.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .types import BenchmarkRun, InputSize, SuiteResult


def run_to_dict(run: BenchmarkRun) -> Dict[str, object]:
    """Flatten one run; outputs are stringified for JSON safety."""
    return {
        "benchmark": run.benchmark,
        "size": run.size.name,
        "variant": run.variant,
        "total_seconds": run.total_seconds,
        "kernel_seconds": dict(run.kernel_seconds),
        "kernel_calls": dict(run.kernel_calls),
        "occupancy": run.occupancy(),
        "outputs": {key: repr(value) for key, value in run.outputs.items()},
    }


def result_to_dict(result: SuiteResult) -> Dict[str, object]:
    """Flatten a whole suite result into a JSON-ready dictionary."""
    return {
        "schema": "sdvbs-repro/suite-result/v1",
        "runs": [run_to_dict(run) for run in result.runs],
    }


def result_to_json(result: SuiteResult, indent: int = 2) -> str:
    """Serialize a suite result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


def result_from_dict(payload: Dict[str, object]) -> SuiteResult:
    """Rebuild a :class:`SuiteResult` from :func:`result_to_dict` output.

    ``outputs`` are not round-tripped (they were stringified); everything
    the reports need — timings and attribution — is restored exactly.
    """
    schema = payload.get("schema")
    if schema != "sdvbs-repro/suite-result/v1":
        raise ValueError(f"unsupported schema {schema!r}")
    result = SuiteResult()
    runs: List[Dict[str, object]] = payload["runs"]  # type: ignore[assignment]
    for entry in runs:
        result.runs.append(
            BenchmarkRun(
                benchmark=str(entry["benchmark"]),
                size=InputSize[str(entry["size"])],
                variant=int(entry["variant"]),  # type: ignore[arg-type]
                total_seconds=float(entry["total_seconds"]),  # type: ignore[arg-type]
                kernel_seconds=dict(entry["kernel_seconds"]),  # type: ignore[arg-type]
                kernel_calls=dict(entry["kernel_calls"]),  # type: ignore[arg-type]
                outputs=dict(entry.get("outputs", {})),  # type: ignore[arg-type]
            )
        )
    return result


def result_from_json(text: str) -> SuiteResult:
    """Parse a suite result serialized by :func:`result_to_json`."""
    return result_from_dict(json.loads(text))
