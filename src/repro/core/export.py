"""JSON serialization of suite results for downstream tooling.

Architecture studies consume profiles programmatically; this module
flattens :class:`~repro.core.types.SuiteResult` into plain dictionaries
(JSON-ready) and back, so runs can be stored, diffed and post-processed
outside this package.

Schema history:

* ``sdvbs-repro/suite-result/v1`` — single-shot runs: per-run totals,
  kernel seconds/calls, occupancy, stringified outputs.
* ``sdvbs-repro/suite-result/v2`` — adds the repeat statistics
  recorded by the robust runner: per-run ``stats`` with ``warmup`` and
  min/median/mean/stddev + raw samples for the total and every kernel.
  v1 payloads remain readable (their runs carry no ``stats``).
* ``sdvbs-repro/suite-result/v3`` — every export carries a
  ``manifest`` block (:func:`~repro.core.tracing.run_manifest`): the
  profiling host's Table III rows, Python/numpy versions, the CLI
  arguments and measurement knobs that produced the run.  v1/v2 payloads
  remain readable (their results carry no manifest).
* ``sdvbs-repro/suite-result/v4`` — per-run ``metrics`` block
  (:meth:`~repro.core.metrics.MetricsRegistry.to_dict`): profiler-fed
  counters and self-time histograms plus per-kernel analytic work
  accounting — flops, traffic bytes, achieved GFLOP/s and GB/s,
  arithmetic intensity.  v1-v3 payloads remain readable (their runs
  carry no metrics).
* ``sdvbs-repro/suite-result/v5`` — per-run ``sampling``
  block (:meth:`~repro.core.sampling.SampledProfile.to_dict`) when the
  run was measured with a statistical stack sampler attached: folded
  call stacks, sampled per-kernel shares, the attributable kernel set
  and the top ``NonKernelWork`` leaf functions.  The manifest may
  additionally carry an ``instrumentation`` block (measured per-probe
  profiler overhead).  v1-v4 payloads remain readable (their runs carry
  no sampling profile).
* ``sdvbs-repro/suite-result/v6`` — optional top-level ``shard``
  provenance block (:mod:`repro.core.shard`): the plan hash, shard
  index/count and per-cell identities of a sharded sweep, or the
  ``merged_from`` record of a merged one.  Unsharded exports carry no
  ``shard`` key and are otherwise identical to v5.  v1-v5 payloads
  remain readable.
* ``sdvbs-repro/suite-result/v7`` — optional top-level ``streaming``
  block (:mod:`repro.core.streaming`): the pacer config plus
  per-stream and merged frame-latency percentiles, jitter, sustained
  FPS and deadline-miss accounting of a paced streaming run.  Batch
  exports carry no ``streaming`` key and are otherwise identical to
  v6.  v1-v6 payloads remain readable.
* ``sdvbs-repro/suite-result/v8`` (current) — optional top-level
  ``job`` provenance block (:mod:`repro.core.jobs`): the serve-layer
  job id, canonical spec digest, submitting client and priority when
  the export was produced by a ``sdvbs serve`` job.  Kept out of the
  manifest on purpose — the history layer's manifest hash must depend
  only on the measurement configuration so identical served specs stay
  idempotent.  CLI exports carry no ``job`` key and are otherwise
  identical to v7.  v1-v7 payloads remain readable.

DESIGN.md's "Schema evolution" appendix carries the same history as a
single table with reader guarantees.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .tracing import run_manifest
from .types import AggregatedRun, BenchmarkRun, InputSize, RunStats, SuiteResult

SCHEMA_V1 = "sdvbs-repro/suite-result/v1"
SCHEMA_V2 = "sdvbs-repro/suite-result/v2"
SCHEMA_V3 = "sdvbs-repro/suite-result/v3"
SCHEMA_V4 = "sdvbs-repro/suite-result/v4"
SCHEMA_V5 = "sdvbs-repro/suite-result/v5"
SCHEMA_V6 = "sdvbs-repro/suite-result/v6"
SCHEMA_V7 = "sdvbs-repro/suite-result/v7"
SCHEMA_V8 = "sdvbs-repro/suite-result/v8"
#: Schema written by :func:`result_to_dict`.
CURRENT_SCHEMA = SCHEMA_V8
#: Schemas :func:`result_from_dict` accepts.
READABLE_SCHEMAS = (SCHEMA_V1, SCHEMA_V2, SCHEMA_V3, SCHEMA_V4, SCHEMA_V5,
                    SCHEMA_V6, SCHEMA_V7, SCHEMA_V8)


def _stats_to_dict(stats: AggregatedRun) -> Dict[str, object]:
    return {
        "warmup": stats.warmup,
        "repeats": stats.repeats,
        "total": stats.total.to_dict(),
        "kernels": {name: s.to_dict() for name, s in stats.kernels.items()},
    }


def _stats_from_dict(run: BenchmarkRun,
                     payload: Dict[str, object]) -> AggregatedRun:
    kernels: Dict[str, Dict[str, object]] = payload.get("kernels", {})  # type: ignore[assignment]
    return AggregatedRun(
        benchmark=run.benchmark,
        size=run.size,
        variant=run.variant,
        warmup=int(payload.get("warmup", 0)),  # type: ignore[arg-type]
        total=RunStats.from_dict(payload["total"]),  # type: ignore[arg-type]
        kernels={name: RunStats.from_dict(s) for name, s in kernels.items()},
        kernel_calls=dict(run.kernel_calls),
    )


def run_to_dict(run: BenchmarkRun) -> Dict[str, object]:
    """Flatten one run; outputs are stringified for JSON safety."""
    payload: Dict[str, object] = {
        "benchmark": run.benchmark,
        "size": run.size.name,
        "variant": run.variant,
        "total_seconds": run.total_seconds,
        "kernel_seconds": dict(run.kernel_seconds),
        "kernel_calls": dict(run.kernel_calls),
        "occupancy": run.occupancy(),
        "outputs": {key: repr(value) for key, value in run.outputs.items()},
    }
    if run.stats is not None:
        payload["stats"] = _stats_to_dict(run.stats)
    if run.metrics is not None:
        payload["metrics"] = dict(run.metrics)
    if run.sampling is not None:
        payload["sampling"] = dict(run.sampling)
    return payload


def result_to_dict(result: SuiteResult,
                   manifest: Optional[Dict[str, object]] = None
                   ) -> Dict[str, object]:
    """Flatten a whole suite result into a JSON-ready dictionary.

    Every export carries a manifest: the explicit ``manifest`` argument
    wins, then ``result.manifest`` (the CLI stamps one with its argv and
    measurement knobs), then a freshly gathered
    :func:`~repro.core.tracing.run_manifest` for this host.
    """
    if manifest is None:
        manifest = result.manifest
    if manifest is None:
        manifest = run_manifest()
    payload: Dict[str, object] = {
        "schema": CURRENT_SCHEMA,
        "manifest": manifest,
        "runs": [run_to_dict(run) for run in result.runs],
    }
    if result.shard is not None:
        payload["shard"] = dict(result.shard)
    if result.streaming is not None:
        payload["streaming"] = dict(result.streaming)
    if result.job is not None:
        payload["job"] = dict(result.job)
    return payload


def result_to_json(result: SuiteResult, indent: int = 2,
                   manifest: Optional[Dict[str, object]] = None) -> str:
    """Serialize a suite result to a JSON string."""
    return json.dumps(result_to_dict(result, manifest=manifest),
                      indent=indent, sort_keys=True)


def run_from_dict(entry: Dict[str, object]) -> BenchmarkRun:
    """Rebuild one :class:`BenchmarkRun` from :func:`run_to_dict` output.

    Shared by whole-suite restoration and the shard checkpoint reader
    (:mod:`repro.core.shard`), which persists individual runs.
    """
    run = BenchmarkRun(
        benchmark=str(entry["benchmark"]),
        size=InputSize[str(entry["size"])],
        variant=int(entry["variant"]),  # type: ignore[arg-type]
        total_seconds=float(entry["total_seconds"]),  # type: ignore[arg-type]
        kernel_seconds=dict(entry["kernel_seconds"]),  # type: ignore[arg-type]
        kernel_calls=dict(entry["kernel_calls"]),  # type: ignore[arg-type]
        outputs=dict(entry.get("outputs", {})),  # type: ignore[arg-type]
    )
    stats_payload: Optional[Dict[str, object]] = entry.get("stats")  # type: ignore[assignment]
    if stats_payload is not None:
        run.stats = _stats_from_dict(run, stats_payload)
    metrics_payload: Optional[Dict[str, object]] = entry.get("metrics")  # type: ignore[assignment]
    if metrics_payload is not None:
        run.metrics = dict(metrics_payload)
    sampling_payload: Optional[Dict[str, object]] = entry.get("sampling")  # type: ignore[assignment]
    if sampling_payload is not None:
        run.sampling = dict(sampling_payload)
    return run


def result_from_dict(payload: Dict[str, object]) -> SuiteResult:
    """Rebuild a :class:`SuiteResult` from :func:`result_to_dict` output.

    Accepts the current v8 schema and legacy v1-v7 payloads (v1 runs
    carry no repeat statistics; v1/v2 results carry no manifest; v1-v3
    runs carry no metrics; v1-v4 runs carry no sampling profile; v1-v5
    results carry no shard block; v1-v6 results carry no streaming
    block; v1-v7 results carry no job block).  ``outputs`` are not
    round-tripped (they were stringified); everything the reports need
    — timings, attribution, measurement statistics, work-accounting
    metrics, shard provenance, streaming latency, job provenance and
    the manifest — is restored exactly.
    """
    schema = payload.get("schema")
    if schema not in READABLE_SCHEMAS:
        raise ValueError(f"unsupported schema {schema!r}")
    result = SuiteResult()
    manifest = payload.get("manifest")
    if manifest is not None:
        result.manifest = dict(manifest)  # type: ignore[arg-type]
    shard = payload.get("shard")
    if shard is not None:
        result.shard = dict(shard)  # type: ignore[arg-type]
    streaming = payload.get("streaming")
    if streaming is not None:
        result.streaming = dict(streaming)  # type: ignore[arg-type]
    job = payload.get("job")
    if job is not None:
        result.job = dict(job)  # type: ignore[arg-type]
    runs: List[Dict[str, object]] = payload["runs"]  # type: ignore[assignment]
    for entry in runs:
        result.runs.append(run_from_dict(entry))
    return result


def result_from_json(text: str) -> SuiteResult:
    """Parse a suite result serialized by :func:`result_to_json`."""
    return result_from_dict(json.loads(text))
