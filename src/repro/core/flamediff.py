"""Differential flamegraphs: aligned folded-stack diffs with attribution.

A single flamegraph says where one build spends its time; SD-VBS's
questions are comparative — did the ``fast`` backend actually shrink the
SSD slice, which kernel absorbed the regression between two commits?
This module aligns two :class:`~repro.core.sampling.SampledProfile`
folded-stack sets on their exact label stacks (Brendan Gregg's
``difffolded.pl`` model) and reports three views of the delta:

* **per-stack** — candidate minus baseline seconds for every stack seen
  on either side (absent = 0), exportable as collapsed ``±usec`` text
  any flamegraph differential renderer accepts;
* **per-frame** — *self* (stacks where the frame is the leaf) and
  *inclusive* (stacks containing the frame, counted once per stack even
  under recursion) seconds on each side, with deltas;
* **per-kernel** — the Figure-3 attribution diff from each side's
  ``kernel_seconds``, which is what ``sdvbs regress --attribute`` joins
  into its verdict: the top kernels by positive delta and their share of
  the total slowdown.

The inputs can come from anywhere the key discipline reaches: two
commits out of the profile store, a ``ref`` vs ``fast`` pair, or two
sampled exports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from .sampling import SampledProfile, escape_frame

#: Schema identifier stamped on serialized diffs.
FLAMEDIFF_SCHEMA = "sdvbs-repro/flamediff/v1"


@dataclass(frozen=True)
class FrameDelta:
    """One frame's self/inclusive seconds on both sides of the diff."""

    frame: str
    self_before: float
    self_after: float
    inclusive_before: float
    inclusive_after: float

    @property
    def self_delta(self) -> float:
        return self.self_after - self.self_before

    @property
    def inclusive_delta(self) -> float:
        return self.inclusive_after - self.inclusive_before

    def to_dict(self) -> Dict[str, float]:
        return {
            "frame": self.frame,  # type: ignore[dict-item]
            "self_before": self.self_before,
            "self_after": self.self_after,
            "self_delta": self.self_delta,
            "inclusive_before": self.inclusive_before,
            "inclusive_after": self.inclusive_after,
            "inclusive_delta": self.inclusive_delta,
        }


@dataclass(frozen=True)
class KernelDelta:
    """One attributed kernel's sampled seconds on both sides."""

    kernel: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    def to_dict(self) -> Dict[str, float]:
        return {
            "kernel": self.kernel,  # type: ignore[dict-item]
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
        }


def _frame_times(folded: Mapping[Tuple[str, ...], float]
                 ) -> Tuple[Dict[str, float], Dict[str, float]]:
    """(self seconds, inclusive seconds) per frame label.

    Self time charges the stack's leaf; inclusive time charges every
    *distinct* frame in the stack, so a recursive frame is counted once
    per stack rather than once per occurrence (double-charging recursion
    would let a frame's inclusive time exceed the profile total).
    """
    self_s: Dict[str, float] = {}
    incl_s: Dict[str, float] = {}
    for stack, seconds in folded.items():
        if not stack:
            continue
        leaf = stack[-1]
        self_s[leaf] = self_s.get(leaf, 0.0) + seconds
        for frame in set(stack):
            incl_s[frame] = incl_s.get(frame, 0.0) + seconds
    return self_s, incl_s


@dataclass(frozen=True)
class ProfileDiff:
    """The aligned diff of two sampled profiles (candidate - baseline)."""

    baseline_label: str
    candidate_label: str
    baseline_seconds: float
    candidate_seconds: float
    #: Candidate minus baseline sampled seconds per aligned stack;
    #: stacks present on only one side align against zero.
    stacks: Mapping[Tuple[str, ...], float]
    frames: Tuple[FrameDelta, ...]
    kernels: Tuple[KernelDelta, ...]

    @property
    def delta_seconds(self) -> float:
        return self.candidate_seconds - self.baseline_seconds

    def top_frames(self, limit: int = 5,
                   regressions_only: bool = False) -> List[FrameDelta]:
        """Frames by self-time delta magnitude (largest slowdown first).

        Self time, not inclusive: every root frame of a slowed call tree
        inherits the full inclusive delta, so ranking by inclusive time
        would name ``main`` as the top regression.  Self time lands on
        the frame whose code actually ran longer.
        """
        rows = [f for f in self.frames
                if f.self_delta > 0.0 or
                (not regressions_only and f.self_delta != 0.0)]
        rows.sort(key=lambda f: (-abs(f.self_delta), f.frame))
        return rows[:limit]

    def top_kernels(self, limit: int = 5,
                    regressions_only: bool = False) -> List[KernelDelta]:
        """Kernels by attribution delta magnitude (slowdowns first)."""
        rows = [k for k in self.kernels
                if k.delta > 0.0 or
                (not regressions_only and k.delta != 0.0)]
        rows.sort(key=lambda k: (-abs(k.delta), k.kernel))
        return rows[:limit]

    def to_dict(self, top: int = 10) -> Dict[str, object]:
        return {
            "schema": FLAMEDIFF_SCHEMA,
            "baseline": self.baseline_label,
            "candidate": self.candidate_label,
            "baseline_seconds": self.baseline_seconds,
            "candidate_seconds": self.candidate_seconds,
            "delta_seconds": self.delta_seconds,
            "kernels": [k.to_dict() for k in self.top_kernels(top)],
            "frames": [f.to_dict() for f in self.top_frames(top)],
        }


def diff_profiles(baseline: SampledProfile, candidate: SampledProfile,
                  baseline_label: str = "baseline",
                  candidate_label: str = "candidate") -> ProfileDiff:
    """Align two profiles' folded stacks and diff every view of them."""
    stacks: Dict[Tuple[str, ...], float] = {}
    for stack in set(baseline.folded) | set(candidate.folded):
        stacks[stack] = (candidate.folded.get(stack, 0.0)
                         - baseline.folded.get(stack, 0.0))
    self_b, incl_b = _frame_times(baseline.folded)
    self_a, incl_a = _frame_times(candidate.folded)
    frames = tuple(
        FrameDelta(
            frame=frame,
            self_before=self_b.get(frame, 0.0),
            self_after=self_a.get(frame, 0.0),
            inclusive_before=incl_b.get(frame, 0.0),
            inclusive_after=incl_a.get(frame, 0.0),
        )
        for frame in sorted(set(incl_b) | set(incl_a))
    )
    kernels = tuple(
        KernelDelta(
            kernel=kernel,
            before=baseline.kernel_seconds.get(kernel, 0.0),
            after=candidate.kernel_seconds.get(kernel, 0.0),
        )
        for kernel in sorted(set(baseline.kernel_seconds)
                             | set(candidate.kernel_seconds))
    )
    return ProfileDiff(
        baseline_label=baseline_label,
        candidate_label=candidate_label,
        baseline_seconds=baseline.sampled_seconds,
        candidate_seconds=candidate.sampled_seconds,
        stacks=stacks,
        frames=frames,
        kernels=kernels,
    )


def to_collapsed_delta(diff: ProfileDiff) -> str:
    """Signed collapsed-stack text: ``frame;frame ±usec`` per stack.

    The weight is the candidate-minus-baseline delta in integer
    microseconds with an explicit sign (``+`` grew, ``-`` shrank);
    zero-delta stacks are omitted.  Sorted for determinism, same frame
    escaping as the single-profile exporter.
    """
    lines = []
    for stack, delta in sorted(diff.stacks.items()):
        micros = int(round(delta * 1e6))
        if micros == 0:
            continue
        joined = ";".join(escape_frame(label) for label in stack)
        lines.append(f"{joined} {micros:+d}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_diff(diff: ProfileDiff, top: int = 10) -> str:
    """Fixed-width text table of the diff's kernel and frame deltas."""
    lines = [
        f"profile diff: {diff.baseline_label} -> {diff.candidate_label}",
        f"  sampled seconds: {diff.baseline_seconds:.4f} -> "
        f"{diff.candidate_seconds:.4f} ({diff.delta_seconds:+.4f})",
        "",
        f"  {'kernel':<24} {'before(s)':>10} {'after(s)':>10} {'delta':>10}",
    ]
    for row in diff.top_kernels(top):
        lines.append(
            f"  {row.kernel:<24} {row.before:>10.4f} {row.after:>10.4f} "
            f"{row.delta:>+10.4f}"
        )
    lines.append("")
    lines.append(
        f"  {'frame (self time)':<44} {'before(s)':>10} {'after(s)':>10} "
        f"{'delta':>10}"
    )
    for frame_row in diff.top_frames(top):
        label = frame_row.frame
        if len(label) > 44:
            label = label[:41] + "..."
        lines.append(
            f"  {label:<44} {frame_row.self_before:>10.4f} "
            f"{frame_row.self_after:>10.4f} {frame_row.self_delta:>+10.4f}"
        )
    return "\n".join(lines)


def attribute_delta(diff: ProfileDiff, top: int = 3) -> Dict[str, object]:
    """Attribution block for a regression verdict: who owns the slowdown.

    Ranks kernels (and frames, as supporting evidence) by positive
    delta and reports each one's share of the total *slowdown* — the
    sum of positive kernel deltas, not the net delta, so an offsetting
    improvement elsewhere cannot push a kernel's share past 100%.
    Returns an empty-kernel block when nothing slowed down.
    """
    slower = [k for k in diff.kernels if k.delta > 0.0]
    slower.sort(key=lambda k: (-k.delta, k.kernel))
    total_slowdown = sum(k.delta for k in slower)
    kernels = [
        {
            "kernel": k.kernel,
            "before_seconds": k.before,
            "after_seconds": k.after,
            "delta_seconds": k.delta,
            "share_of_delta": (k.delta / total_slowdown
                               if total_slowdown > 0.0 else 0.0),
        }
        for k in slower[:top]
    ]
    frames = [
        {
            "frame": f.frame,
            "self_delta_seconds": f.self_delta,
            "inclusive_delta_seconds": f.inclusive_delta,
        }
        for f in diff.top_frames(top, regressions_only=True)
    ]
    return {
        "baseline": diff.baseline_label,
        "candidate": diff.candidate_label,
        "delta_seconds": diff.delta_seconds,
        "slowdown_seconds": total_slowdown,
        "kernels": kernels,
        "frames": frames,
    }
