"""Reference-equivalence checking for dual-backend kernels.

For every kernel registered in :mod:`repro.core.backend`, this module
builds deterministic workloads from the suite's seeded input generators
(:mod:`repro.core.inputs`), executes the ``ref`` (loop-faithful) and
``fast`` (vectorized) implementations on identical arguments, and
asserts tolerance-bounded agreement — the validation step that licenses
reporting ``fast``-backend timings as *this benchmark's* numbers
(Schwambach et al.'s reference-vs-optimized methodology).

Implementations are invoked directly off the :class:`KernelSpec` (not
through the dispatcher), so a check can never be confused by nested
dispatch: case construction happens once, outside any backend scope,
and each backend sees bit-identical inputs.

``sdvbs verify-backends`` is the CLI face; the parametrized agreement
tests in ``tests/test_backend_equivalence.py`` pin the same harness into
tier-1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .backend import KernelSpec, registered_kernels
from .types import InputSize

#: A prepared invocation: display label plus positional arguments.
Case = Tuple[str, tuple]

#: Sizes checked by default — the full SQCIF/QCIF/CIF ladder.
DEFAULT_SIZES = (InputSize.SQCIF, InputSize.QCIF, InputSize.CIF)


@dataclass(frozen=True)
class EquivalenceVerdict:
    """Outcome of one (kernel, case) ref-vs-fast comparison."""

    kernel: str
    case: str
    ok: bool
    max_abs_err: float
    max_rel_err: float
    rtol: float
    atol: float
    ref_seconds: float
    fast_seconds: float

    @property
    def speedup(self) -> float:
        """Observed single-shot ref/fast ratio (indicative; the formal
        measurement lives in ``bench_backend_speedup``)."""
        if self.fast_seconds <= 0:
            return float("inf")
        return self.ref_seconds / self.fast_seconds


def _flatten_outputs(value: object) -> List[np.ndarray]:
    """Normalize a kernel result (array or tuple of arrays) to a list."""
    if isinstance(value, tuple):
        return [np.asarray(part, dtype=np.float64) for part in value]
    return [np.asarray(value, dtype=np.float64)]


def _compare(ref_out: object, fast_out: object,
             rtol: float, atol: float) -> Tuple[bool, float, float]:
    """Tolerance check plus the worst absolute/relative error observed."""
    ref_parts = _flatten_outputs(ref_out)
    fast_parts = _flatten_outputs(fast_out)
    if len(ref_parts) != len(fast_parts):
        return False, float("inf"), float("inf")
    ok = True
    max_abs = 0.0
    max_rel = 0.0
    for ref_arr, fast_arr in zip(ref_parts, fast_parts):
        if ref_arr.shape != fast_arr.shape:
            return False, float("inf"), float("inf")
        diff = np.abs(ref_arr - fast_arr)
        if diff.size:
            max_abs = max(max_abs, float(diff.max()))
            denom = np.maximum(np.abs(ref_arr), 1e-300)
            max_rel = max(max_rel, float((diff / denom).max()))
        ok = ok and bool(
            np.allclose(fast_arr, ref_arr, rtol=rtol, atol=atol)
        )
    return ok, max_abs, max_rel


# ----------------------------------------------------------------------
# Deterministic cases per kernel, built from the suite's input generators


def _image(size: InputSize, variant: int) -> np.ndarray:
    from . import inputs

    return inputs.image(size, variant)


def _cases_convolve_rows(size: InputSize, variant: int) -> List[Case]:
    from ..imgproc.filters import binomial_kernel, gaussian_kernel

    img = _image(size, variant)
    return [
        ("gaussian7", (img, gaussian_kernel(1.2))),
        ("binomial5", (img, binomial_kernel(5))),
    ]


def _cases_convolve2d(size: InputSize, variant: int) -> List[Case]:
    img = _image(size, variant)
    smooth = np.outer([1.0, 2.0, 1.0], [1.0, 2.0, 1.0]) / 16.0
    sharpen = np.array([[0.0, -1.0, 0.0], [-1.0, 5.0, -1.0], [0.0, -1.0, 0.0]])
    return [("smooth3x3", (img, smooth)), ("sharpen3x3", (img, sharpen))]


def _cases_gradient(size: InputSize, variant: int) -> List[Case]:
    return [("image", (_image(size, variant),))]


def _cases_integral(size: InputSize, variant: int) -> List[Case]:
    return [("image", (_image(size, variant),))]


def _cases_bilinear(size: InputSize, variant: int) -> List[Case]:
    img = _image(size, variant)
    rows, cols = img.shape
    # Fractional query grid covering the interior plus out-of-range
    # corners (exercises the clamp path on both backends).
    rr = np.linspace(-1.0, rows + 0.5, rows) + 0.37
    cc = np.linspace(-1.0, cols + 0.5, cols) + 0.19
    grid_r, grid_c = np.meshgrid(rr, cc, indexing="ij")
    return [("fractional-grid", (img, grid_r, grid_c))]


def _cases_warp_affine(size: InputSize, variant: int) -> List[Case]:
    from ..imgproc.warp import rotation_matrix

    img = _image(size, variant)
    angle = 0.1 + 0.05 * variant
    return [
        ("rotate", (img, rotation_matrix(angle), np.array([2.5, -1.5]))),
        ("shift", (img, np.eye(2), np.array([0.6, 1.4]))),
    ]


def _cases_disparity_ssd(size: InputSize, variant: int) -> List[Case]:
    from . import inputs

    pair = inputs.stereo_pair(size, variant)
    left = np.asarray(pair.left, dtype=np.float64)
    right = np.asarray(pair.right, dtype=np.float64)
    return [("shift0", (left, right, 0)), ("shift3", (left, right, 3))]


def _cases_min_eigenvalue(size: InputSize, variant: int) -> List[Case]:
    from ..imgproc.gradient import gradient

    img = _image(size, variant)
    gx, gy = gradient(img)
    return [("tensor", (gx * gx, gx * gy, gy * gy))]


def _cases_sift_descriptor(size: InputSize, variant: int) -> List[Case]:
    from ..imgproc.gradient import gradient

    img = _image(size, variant)
    gx, gy = gradient(img)
    magnitude = np.hypot(gx, gy)
    angle = np.arctan2(gy, gx)
    rows, cols = img.shape
    return [
        ("centre", (magnitude, angle, rows / 2.0, cols / 2.0, 0.4, 1.3)),
        ("border", (magnitude, angle, 3.0, 4.0, -1.1, 1.0)),
    ]


def _cases_match_distances(size: InputSize, variant: int) -> List[Case]:
    from .inputs import rng_for

    rng = rng_for(size, variant, "backend-match")
    n = 12 * size.relative
    a = rng.standard_normal((n, 64))
    b = rng.standard_normal((n + 5, 64))
    return [("descriptors", (a, b))]


def _cases_svm_kernel_matrix(size: InputSize, variant: int) -> List[Case]:
    from ..svm.kernels import polynomial_kernel
    from . import inputs

    data = inputs.svm_dataset(size, variant)
    return [("polynomial", (polynomial_kernel(), data.train_x))]


#: kernel name -> deterministic case builder (size, variant) -> cases.
CASE_BUILDERS: Dict[str, Callable[[InputSize, int], List[Case]]] = {
    "imgproc.convolve_rows": _cases_convolve_rows,
    "imgproc.convolve_cols": _cases_convolve_rows,  # same signature/shape
    "imgproc.convolve2d": _cases_convolve2d,
    "imgproc.gradient": _cases_gradient,
    "imgproc.integral_image": _cases_integral,
    "imgproc.bilinear": _cases_bilinear,
    "imgproc.warp_affine": _cases_warp_affine,
    "disparity.ssd": _cases_disparity_ssd,
    "tracking.min_eigenvalue": _cases_min_eigenvalue,
    "sift.descriptor": _cases_sift_descriptor,
    "stitch.match_distances": _cases_match_distances,
    "svm.kernel_matrix": _cases_svm_kernel_matrix,
}


def cases_for(spec: KernelSpec, size: InputSize,
              variant: int) -> List[Case]:
    """Deterministic invocations for one kernel at one (size, variant)."""
    try:
        builder = CASE_BUILDERS[spec.name]
    except KeyError:
        raise KeyError(
            f"kernel {spec.name!r} has no equivalence cases; add a builder "
            "to repro.core.equivalence.CASE_BUILDERS"
        ) from None
    return builder(size, variant)


def verify_kernel(
    spec: KernelSpec,
    sizes: Sequence[InputSize] = DEFAULT_SIZES,
    variants: Sequence[int] = (0,),
) -> List[EquivalenceVerdict]:
    """Run ref and fast on every case of one kernel; one verdict per case.

    A kernel without a fast path is vacuously in agreement (its single
    implementation is compared against itself, timing both calls), so
    partial fast coverage keeps ``verify-backends`` green.
    """
    verdicts = []
    ref_fn = spec.implementation("ref")
    fast_fn = spec.implementation("fast")
    for size in sizes:
        for variant in variants:
            for label, args in cases_for(spec, size, variant):
                start = time.perf_counter()
                ref_out = ref_fn(*args)
                ref_seconds = time.perf_counter() - start
                start = time.perf_counter()
                fast_out = fast_fn(*args)
                fast_seconds = time.perf_counter() - start
                ok, max_abs, max_rel = _compare(
                    ref_out, fast_out, spec.rtol, spec.atol
                )
                verdicts.append(
                    EquivalenceVerdict(
                        kernel=spec.name,
                        case=f"{size.name}/v{variant}/{label}",
                        ok=ok,
                        max_abs_err=max_abs,
                        max_rel_err=max_rel,
                        rtol=spec.rtol,
                        atol=spec.atol,
                        ref_seconds=ref_seconds,
                        fast_seconds=fast_seconds,
                    )
                )
    return verdicts


def verify_backends(
    sizes: Sequence[InputSize] = DEFAULT_SIZES,
    variants: Sequence[int] = (0,),
    kernels: Optional[Iterable[str]] = None,
) -> List[EquivalenceVerdict]:
    """Check every registered kernel (or the named subset) across sizes."""
    wanted = set(kernels) if kernels is not None else None
    verdicts: List[EquivalenceVerdict] = []
    for spec in registered_kernels():
        if wanted is not None and spec.name not in wanted:
            continue
        verdicts.extend(verify_kernel(spec, sizes=sizes, variants=variants))
    return verdicts


def render_equivalence(verdicts: Sequence[EquivalenceVerdict]) -> str:
    """Fixed-width agreement table, one row per (kernel, case)."""
    lines = []
    header = (
        f"{'Kernel':<26} {'Case':<24} {'max |err|':>11} {'tolerance':>16} "
        f"{'ref ms':>9} {'fast ms':>9} {'status':>7}"
    )
    lines.append("Backend equivalence: loop-faithful ref vs vectorized fast")
    lines.append("=" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    for verdict in verdicts:
        tolerance = f"rtol={verdict.rtol:.0e}"
        lines.append(
            f"{verdict.kernel:<26} {verdict.case:<24} "
            f"{verdict.max_abs_err:>11.2e} {tolerance:>16} "
            f"{verdict.ref_seconds * 1e3:>9.2f} "
            f"{verdict.fast_seconds * 1e3:>9.2f} "
            f"{'ok' if verdict.ok else 'FAIL':>7}"
        )
    lines.append("-" * len(header))
    failures = sum(1 for v in verdicts if not v.ok)
    lines.append(
        f"{len(verdicts)} checks, {failures} failures"
        if failures
        else f"{len(verdicts)} checks, all within tolerance"
    )
    return "\n".join(lines)
