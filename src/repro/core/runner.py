"""Suite runner: executes applications over sizes and variants.

Drives each :class:`~repro.core.registry.Benchmark` through its synthetic
inputs with a fresh :class:`~repro.core.profiler.KernelProfiler` per run and
collects :class:`~repro.core.types.BenchmarkRun` records.  The reports in
:mod:`repro.core.report` turn those records into the paper's figures.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .profiler import KernelProfiler
from .registry import Benchmark, all_benchmarks, get_benchmark
from .types import BenchmarkRun, InputSize, ScalingPoint, SuiteResult

ALL_SIZES = (InputSize.SQCIF, InputSize.QCIF, InputSize.CIF)


def run_benchmark(
    benchmark: Benchmark,
    size: InputSize,
    variant: int = 0,
) -> BenchmarkRun:
    """Run one application once and return its timed record.

    Workload construction (``benchmark.setup``) happens outside the timed
    region, mirroring the original suite's preloaded inputs.
    """
    workload = benchmark.setup(size, variant)
    profiler = KernelProfiler()
    with profiler.run():
        outputs = benchmark.run(workload, profiler)
    return BenchmarkRun(
        benchmark=benchmark.slug,
        size=size,
        variant=variant,
        total_seconds=profiler.total_seconds,
        kernel_seconds=profiler.kernel_seconds,
        kernel_calls=profiler.kernel_calls,
        outputs=dict(outputs),
    )


def run_suite(
    slugs: Optional[Sequence[str]] = None,
    sizes: Iterable[InputSize] = ALL_SIZES,
    variants: Sequence[int] = (0,),
) -> SuiteResult:
    """Run the selected applications over ``sizes`` x ``variants``.

    ``slugs=None`` runs the whole suite.  The default single variant keeps
    interactive runs fast; the paper's 65-vector sweep corresponds to
    ``variants=range(5)``.
    """
    if slugs is None:
        benchmarks = all_benchmarks()
    else:
        benchmarks = [get_benchmark(slug) for slug in slugs]
    result = SuiteResult()
    for benchmark in benchmarks:
        for size in sizes:
            for variant in variants:
                result.runs.append(run_benchmark(benchmark, size, variant))
    return result


def scaling_series(result: SuiteResult, slug: str) -> List[ScalingPoint]:
    """Figure 2 series for one application: relative time vs relative size.

    Times are normalized to the SQCIF mean, matching the paper's
    "times increase in execution time" y-axis.
    """
    base = result.mean_total(slug, InputSize.SQCIF)
    if base is None or base <= 0:
        return []
    points = []
    for size in ALL_SIZES:
        mean = result.mean_total(slug, size)
        if mean is None:
            continue
        points.append(
            ScalingPoint(
                benchmark=slug,
                relative_size=size.relative,
                relative_time=mean / base,
            )
        )
    return points
