"""Suite runner: executes applications over sizes and variants.

Drives each :class:`~repro.core.registry.Benchmark` through its synthetic
inputs with a fresh :class:`~repro.core.profiler.KernelProfiler` per run and
collects :class:`~repro.core.types.BenchmarkRun` records.  The reports in
:mod:`repro.core.report` turn those records into the paper's figures.

Measurement robustness (the suite's reason to exist is trustworthy
per-kernel timing):

* ``run_benchmark`` accepts ``warmup`` (discarded runs) and ``repeats``
  (retained runs); the retained samples are aggregated into
  min/median/mean/stddev per total and per kernel
  (:class:`~repro.core.types.AggregatedRun`), and the returned
  :class:`~repro.core.types.BenchmarkRun` carries the medians plus the
  full statistics on its ``stats`` field.
* ``run_suite`` accepts ``jobs``; with ``jobs > 1`` the
  (benchmark, size, variant) grid fans out across a
  ``ProcessPoolExecutor`` with deterministic result ordering.  ``jobs=1``
  is the plain serial loop, and the parallel path falls back to serial
  when process pools are unavailable (restricted environments).
* Both entry points accept an optional
  :class:`~repro.core.tracing.TraceRecorder`; when attached, every kernel
  call and whole-app run emits a span (pool workers record locally and
  their spans are serialized back to the parent recorder).
* Both entry points accept ``backend`` (``"ref"`` or ``"fast"``, see
  :mod:`repro.core.backend`): the loop-faithful reference vs the
  vectorized production path, selected suite-wide for the duration of
  the run (worker processes re-select it locally).  ``None`` keeps the
  process's current selection (``"fast"`` by default).
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .backend import use_backend
from .metrics import MetricsRegistry, use_metrics
from .profiler import KernelProfiler
from .registry import Benchmark, all_benchmarks, get_benchmark
from .sampling import StackSampler
from .tracing import TraceRecorder
from .types import (
    AggregatedRun,
    BenchmarkRun,
    InputSize,
    RunStats,
    ScalingPoint,
    SuiteResult,
)

ALL_SIZES = (InputSize.SQCIF, InputSize.QCIF, InputSize.CIF)

#: Injectable clock type for deterministic tests.
Clock = Callable[[], float]


def _measure_once(
    benchmark: Benchmark,
    workload: object,
    clock: Optional[Clock],
    recorder: Optional[TraceRecorder] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[KernelProfiler, dict]:
    """One timed execution of ``benchmark`` on a prepared workload."""
    profiler = KernelProfiler(clock=clock, recorder=recorder,
                              metrics=metrics)
    with profiler.run():
        outputs = benchmark.run(workload, profiler)
    return profiler, dict(outputs)


def run_benchmark(
    benchmark: Benchmark,
    size: InputSize,
    variant: int = 0,
    warmup: int = 0,
    repeats: int = 1,
    clock: Optional[Clock] = None,
    recorder: Optional[TraceRecorder] = None,
    backend: Optional[str] = None,
    sampler: Optional[StackSampler] = None,
) -> BenchmarkRun:
    """Run one application and return its timed record.

    Workload construction (``benchmark.setup``) happens outside the timed
    region, mirroring the original suite's preloaded inputs.  The first
    ``warmup`` executions are discarded (cold caches, allocator churn,
    JIT-warmed numpy paths); the next ``repeats`` executions are retained
    and aggregated.  The returned record's ``total_seconds`` and
    ``kernel_seconds`` are per-cell medians and its ``stats`` field holds
    the full :class:`AggregatedRun`; with the defaults
    (``warmup=0, repeats=1``) the medians are the single cold sample,
    bit-identical to the historical single-shot behavior.

    ``clock`` injects a deterministic time source for tests.  With a
    ``recorder`` attached, every execution (warmup runs included, tagged
    ``phase="warmup"``) emits one span per kernel call plus an app span,
    stamped with the (benchmark, size, variant, repeat) context.

    ``backend`` scopes the dual-backend kernel selection around the
    whole run (setup included, so data-dependent control flow sees
    consistent numerics); the previous selection is restored on return.

    Every measured repeat additionally feeds a per-cell
    :class:`~repro.core.metrics.MetricsRegistry` (warmup runs excluded):
    registered kernels with analytic work models record flop and byte
    counts through the dispatch layer, and the profiler records per-kernel
    call counters and self-time histograms.  The registry's serialized
    payload rides on the returned record's ``metrics`` field.

    ``sampler`` optionally attaches a
    :class:`~repro.core.sampling.StackSampler`: it runs across the
    measured repeats only (warmup excluded, matching the metrics
    window), and its serialized profile rides on the returned record's
    ``sampling`` field.  The sampler watches the thread that created it,
    so it is meaningful on this serial path only — ``run_suite``'s
    process-pool fan-out does not take one.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    registry = MetricsRegistry()
    with use_backend(backend):
        workload = benchmark.setup(size, variant)
        for index in range(warmup):
            if recorder is not None:
                recorder.set_context(benchmark=benchmark.slug, size=size.name,
                                     variant=variant, repeat=index,
                                     phase="warmup")
            _measure_once(benchmark, workload, clock, recorder)

        total_samples: List[float] = []
        kernel_samples: dict = {}
        kernel_calls: dict = {}
        outputs: dict = {}
        if sampler is not None:
            sampler.start()
        try:
            for index in range(repeats):
                if recorder is not None:
                    recorder.set_context(benchmark=benchmark.slug,
                                         size=size.name,
                                         variant=variant, repeat=index,
                                         phase="measure")
                with use_metrics(registry, recorder):
                    profiler, outputs = _measure_once(benchmark, workload,
                                                      clock, recorder,
                                                      metrics=registry)
                total_samples.append(profiler.total_seconds)
                seconds = profiler.kernel_seconds
                for name, value in seconds.items():
                    kernel_samples.setdefault(name, []).append(value)
                if index == 0:
                    kernel_calls = profiler.kernel_calls
                elif profiler.kernel_calls != kernel_calls:
                    warnings.warn(
                        f"{benchmark.slug}@{size.name} variant {variant}: "
                        "kernel call counts differ between repeats; keeping "
                        "the first run's",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        finally:
            if sampler is not None:
                sampler.stop()
    # A kernel observed in only some repeats (data-dependent path) gets
    # zero-second samples for the runs that skipped it, so every kernel's
    # RunStats spans all repeats.
    for name, samples in kernel_samples.items():
        if len(samples) < repeats:
            samples.extend([0.0] * (repeats - len(samples)))

    stats = AggregatedRun(
        benchmark=benchmark.slug,
        size=size,
        variant=variant,
        warmup=warmup,
        total=RunStats.of(total_samples),
        kernels={name: RunStats.of(s) for name, s in kernel_samples.items()},
        kernel_calls=dict(kernel_calls),
    )
    return BenchmarkRun(
        benchmark=benchmark.slug,
        size=size,
        variant=variant,
        total_seconds=stats.total.median,
        kernel_seconds={k: s.median for k, s in stats.kernels.items()},
        kernel_calls=dict(kernel_calls),
        outputs=outputs,
        stats=stats,
        metrics=registry.to_dict(),
        sampling=(sampler.profile.to_dict() if sampler is not None
                  else None),
    )


def run_cell(
    slug: str,
    size_name: str,
    variant: int = 0,
    warmup: int = 0,
    repeats: int = 1,
    clock: Optional[Clock] = None,
    recorder: Optional[TraceRecorder] = None,
    backend: Optional[str] = None,
) -> BenchmarkRun:
    """Cell-addressable execution: one grid cell by plain string keys.

    The suite's unit of distribution — pool workers, shard executors and
    remote drivers all address work as
    ``(slug, size name, variant, backend)`` because those keys survive
    pickling, JSON and command lines, unlike :class:`Benchmark` or
    :class:`InputSize` objects.  Everything else is
    :func:`run_benchmark` unchanged.  Raises ``KeyError`` for an unknown
    slug or size name.
    """
    return run_benchmark(
        get_benchmark(slug),
        InputSize[size_name],
        variant,
        warmup=warmup,
        repeats=repeats,
        clock=clock,
        recorder=recorder,
        backend=backend,
    )


def _run_cell(
    slug: str,
    size_name: str,
    variant: int,
    warmup: int,
    repeats: int,
    trace: bool = False,
    track_memory: bool = False,
    backend: Optional[str] = None,
) -> Tuple[BenchmarkRun, Optional[List[dict]]]:
    """Worker entry point: one grid cell, addressed by picklable keys.

    Module-level (not a closure) so ``ProcessPoolExecutor`` can pickle it;
    the benchmark registry re-loads lazily inside each worker process.
    With ``trace=True`` the cell records into a local
    :class:`TraceRecorder` and ships its spans back as plain dictionaries
    for the parent recorder to absorb.  ``backend`` is re-selected inside
    the worker (backend state is per-process, not inherited).
    """
    recorder = TraceRecorder(track_memory=track_memory) if trace else None
    run = run_cell(
        slug,
        size_name,
        variant,
        warmup=warmup,
        repeats=repeats,
        recorder=recorder,
        backend=backend,
    )
    # Outputs may hold arbitrarily large (or unpicklable) application
    # objects; the suite reports only consume timing, so drop them before
    # shipping results back over the pipe.
    run.outputs = {}
    spans = recorder.to_serialized() if recorder is not None else None
    if recorder is not None:
        recorder.finish()
    return run, spans


def run_suite(
    slugs: Optional[Sequence[str]] = None,
    sizes: Iterable[InputSize] = ALL_SIZES,
    variants: Sequence[int] = (0,),
    warmup: int = 0,
    repeats: int = 1,
    jobs: int = 1,
    recorder: Optional[TraceRecorder] = None,
    backend: Optional[str] = None,
) -> SuiteResult:
    """Run the selected applications over ``sizes`` x ``variants``.

    ``slugs=None`` runs the whole suite.  The default single variant keeps
    interactive runs fast; the paper's 65-vector sweep corresponds to
    ``variants=range(5)``.

    ``jobs > 1`` fans the (benchmark, size, variant) grid across worker
    processes.  Result ordering is deterministic and identical to the
    serial nested-loop order regardless of which worker finishes first.
    If a process pool cannot be created or breaks (sandboxed platforms,
    missing semaphores), the runner warns and falls back to the serial
    path rather than failing the measurement.

    With a ``recorder``, every run emits per-kernel-call spans.  On the
    parallel path each worker records locally and its spans are shipped
    back and absorbed in grid order, one ``track`` lane per cell (each
    worker has its own t=0).

    ``backend`` selects the dual-backend kernel implementations for the
    whole grid — serial cells run inside a scoped selection, parallel
    workers re-select it per process.
    """
    if slugs is None:
        benchmarks = all_benchmarks()
    else:
        benchmarks = [get_benchmark(slug) for slug in slugs]
    sizes = list(sizes)
    grid = [
        (benchmark, size, variant)
        for benchmark in benchmarks
        for size in sizes
        for variant in variants
    ]
    result = SuiteResult()
    if jobs > 1 and len(grid) > 1:
        runs = _run_grid_parallel(grid, warmup, repeats, jobs,
                                  trace=recorder is not None,
                                  track_memory=recorder is not None
                                  and recorder.track_memory,
                                  backend=backend)
        if runs is not None:
            for index, (run, spans) in enumerate(runs):
                result.runs.append(run)
                if recorder is not None and spans:
                    recorder.absorb(spans, track=index)
            return result
        warnings.warn(
            "process pool unavailable; falling back to serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
    for benchmark, size, variant in grid:
        result.runs.append(
            run_benchmark(benchmark, size, variant,
                          warmup=warmup, repeats=repeats, recorder=recorder,
                          backend=backend)
        )
    return result


def _run_grid_parallel(
    grid: Sequence[Tuple[Benchmark, InputSize, int]],
    warmup: int,
    repeats: int,
    jobs: int,
    trace: bool = False,
    track_memory: bool = False,
    backend: Optional[str] = None,
) -> Optional[List[Tuple[BenchmarkRun, Optional[List[dict]]]]]:
    """Execute the grid on a process pool; ``None`` if the pool fails."""
    import concurrent.futures

    max_workers = min(jobs, len(grid))
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers
        ) as pool:
            futures = [
                pool.submit(_run_cell, benchmark.slug, size.name, variant,
                            warmup, repeats, trace, track_memory, backend)
                for benchmark, size, variant in grid
            ]
            # Collect in submission order: deterministic results no matter
            # the completion order of the workers.
            return [future.result() for future in futures]
    except (OSError, ImportError,
            concurrent.futures.process.BrokenProcessPool):
        return None


def scaling_series(result: SuiteResult, slug: str) -> List[ScalingPoint]:
    """Figure 2 series for one application: relative time vs relative size.

    Times are normalized to the SQCIF median, matching the paper's
    "times increase in execution time" y-axis.  When SQCIF was not part
    of the run, the series falls back to normalizing against the smallest
    size present (with a warning) instead of silently returning nothing.
    """
    present = [
        size for size in ALL_SIZES
        if result.median_total(slug, size) is not None
    ]
    if not present:
        return []
    base_size = present[0]
    if base_size is not InputSize.SQCIF:
        warnings.warn(
            f"{slug}: no SQCIF runs to normalize against; normalizing "
            f"Figure 2 to the smallest size present ({base_size.name})",
            RuntimeWarning,
            stacklevel=2,
        )
    base = result.median_total(slug, base_size)
    if base is None or base <= 0:
        warnings.warn(
            f"{slug}: cannot normalize Figure 2 — the {base_size.name} base "
            f"median is {base!r} (zero-duration or fake-clock run?)",
            RuntimeWarning,
            stacklevel=2,
        )
        return []
    points = []
    for size in present:
        median = result.median_total(slug, size)
        if median is None:
            continue
        points.append(
            ScalingPoint(
                benchmark=slug,
                relative_size=size.relative,
                relative_time=median / base,
            )
        )
    return points
