"""Host configuration report — the analogue of the paper's Table III.

Table III documents the profiling machine (OS, processor, caches, memory).
This module gathers the same rows for whatever host this reproduction runs
on, reading /proc where available and degrading gracefully elsewhere.
"""

from __future__ import annotations

import os
import platform
from typing import Dict


def _read_proc(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            return handle.read()
    except OSError:
        return ""


def _cpu_model() -> str:
    for line in _read_proc("/proc/cpuinfo").splitlines():
        if line.lower().startswith("model name"):
            return line.split(":", 1)[1].strip()
    return platform.processor() or platform.machine() or "unknown"


def _memory_total() -> str:
    for line in _read_proc("/proc/meminfo").splitlines():
        if line.startswith("MemTotal"):
            kb = int(line.split()[1])
            return f"{kb / (1024 * 1024):.1f} GB"
    return "unknown"


def _cache_sizes() -> Dict[str, str]:
    caches: Dict[str, str] = {}
    base = "/sys/devices/system/cpu/cpu0/cache"
    if not os.path.isdir(base):
        return caches
    for entry in sorted(os.listdir(base)):
        if not entry.startswith("index"):
            continue
        level = _read_proc(os.path.join(base, entry, "level")).strip()
        ctype = _read_proc(os.path.join(base, entry, "type")).strip()
        size = _read_proc(os.path.join(base, entry, "size")).strip()
        ways = _read_proc(
            os.path.join(base, entry, "ways_of_associativity")
        ).strip()
        if not level or not size:
            continue
        label = f"L{level} cache" + (f" ({ctype.lower()})" if ctype else "")
        desc = size + (f", {ways}-way set associative" if ways else "")
        caches.setdefault(label, desc)
    return caches


def system_configuration() -> Dict[str, str]:
    """Feature -> description rows, mirroring Table III's layout."""
    rows: Dict[str, str] = {
        "Operating System": f"{platform.system()} {platform.release()}",
        "Processors": _cpu_model(),
    }
    rows.update(_cache_sizes())
    rows["CPU count"] = str(os.cpu_count() or 1)
    rows["Memory"] = _memory_total()
    rows["Python"] = platform.python_version()
    return rows
