"""Persistent profile store: folded stacks, keyed like history rows.

The history store (:mod:`~repro.core.history`) answers "how fast was
commit X?"; this store answers "*where did commit X spend its time?*" —
without it a regression verdict can flag a slowdown but never attribute
it.  Each row is one grid cell's :meth:`SampledProfile.to_dict` payload
(folded stacks, per-kernel seconds, sample counts) under the exact key
discipline history uses:

* **commit** — revision measured (``git rev-parse HEAD`` or
  ``"unknown"``).
* **benchmark / size** — one suite grid cell; per-variant profiles are
  merged (:meth:`SampledProfile.merge` is order-independent) into one
  cell profile, matching how history aggregates variant timings.
* **backend** — ``ref`` and ``fast`` flamegraphs are different programs;
  they never share a key.
* **manifest hash** — re-recording the same export is a no-op
  (append-only store, idempotent ingest).

Backends mirror history's: :class:`SqliteProfiles` (default; the payload
rides as one JSON text column beside the key) and
:class:`JsonlProfiles` (append-only text fallback), selected by
:func:`open_profiles`.  The differential layer
(:mod:`~repro.core.flamediff`) and ``sdvbs regress --attribute`` read
profiles back out by commit pair.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .history import (
    created_sort_key,
    current_commit,
    manifest_hash,
)
from .sampling import SampledProfile
from .types import InputSize, SuiteResult

#: Schema identifier stamped on every JSONL profile line.
PROFILE_SCHEMA = "sdvbs-repro/profile/v1"


@dataclass(frozen=True)
class ProfileEntry:
    """One recorded (commit, benchmark, size, backend, manifest) profile.

    ``profile`` is the :meth:`SampledProfile.to_dict` payload verbatim —
    the store neither re-truncates nor reinterprets it, so a round-trip
    through either backend is exact.
    """

    commit: str
    benchmark: str
    size: str
    backend: str
    manifest_hash: str
    created: str
    profile: Dict[str, object] = field(compare=False)

    @property
    def key(self) -> Tuple[str, str, str, str, str]:
        return (self.commit, self.benchmark, self.size, self.backend,
                self.manifest_hash)

    @property
    def samples(self) -> int:
        return int(self.profile.get("samples", 0))  # type: ignore[arg-type]

    def sampled_profile(self) -> SampledProfile:
        """Deserialize the stored payload back into a live profile."""
        return SampledProfile.from_dict(self.profile)

    def to_dict(self) -> Dict[str, object]:
        return {
            "commit": self.commit,
            "benchmark": self.benchmark,
            "size": self.size,
            "backend": self.backend,
            "manifest_hash": self.manifest_hash,
            "created": self.created,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ProfileEntry":
        profile = payload["profile"]
        if not isinstance(profile, dict):
            raise TypeError("profile payload must be an object")
        return cls(
            commit=str(payload["commit"]),
            benchmark=str(payload["benchmark"]),
            size=str(payload["size"]),
            backend=str(payload["backend"]),
            manifest_hash=str(payload["manifest_hash"]),
            created=str(payload["created"]),
            profile=profile,
        )


def cell_profiles(result: SuiteResult
                  ) -> Dict[Tuple[str, str], SampledProfile]:
    """Merged per-(benchmark, size name) profiles of a sampled result.

    Only runs carrying a ``sampling`` payload contribute (``sdvbs
    report``'s live mode and ``run_benchmark(..., sampler=...)`` attach
    one; plain ``sdvbs run`` exports do not and simply yield no cells).
    Multiple variants of one cell merge into a single profile,
    mirroring history's per-cell aggregation.
    """
    cells: Dict[Tuple[str, str], SampledProfile] = {}
    for slug in result.benchmarks():
        for size in InputSize:
            payloads = [
                run.sampling for run in result.runs
                if run.benchmark == slug and run.size == size
                and run.sampling
            ]
            if not payloads:
                continue
            cells[(slug, size.name)] = SampledProfile.merged(
                SampledProfile.from_dict(payload) for payload in payloads
            )
    return cells


def entries_from_result(result: SuiteResult,
                        commit: Optional[str] = None,
                        max_stacks: int = 500) -> List[ProfileEntry]:
    """Extract per-cell profile entries from a sampled suite result.

    ``created`` is the measurement time from the manifest, as in
    history ingest; backend and manifest hash degrade the same way.
    """
    import time

    if commit is None:
        commit = current_commit()
    manifest = result.manifest or {}
    measurement = manifest.get("measurement", {})
    backend = "fast"
    if isinstance(measurement, dict) and measurement.get("backend"):
        backend = str(measurement["backend"])
    digest = manifest_hash(result.manifest)
    created = manifest.get("created")
    if not isinstance(created, str) or not created:
        created = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    return [
        ProfileEntry(
            commit=commit,
            benchmark=slug,
            size=size_name,
            backend=backend,
            manifest_hash=digest,
            created=created,
            profile=merged.to_dict(max_stacks=max_stacks),
        )
        for (slug, size_name), merged in sorted(cell_profiles(result).items())
    ]


#: A (baseline profile, candidate profile) pair, or None when either
#: side is missing — the regression-attribution lookup contract.
ProfilePair = Optional[Tuple[SampledProfile, SampledProfile]]


def pair_lookup_from_results(baseline: SuiteResult, candidate: SuiteResult
                             ) -> Callable[[str, str], ProfilePair]:
    """Attribution lookup over two sampled exports (export-vs-export)."""
    base = cell_profiles(baseline)
    cand = cell_profiles(candidate)

    def lookup(benchmark: str, size: str) -> ProfilePair:
        key = (benchmark, size)
        if key in base and key in cand:
            return base[key], cand[key]
        return None

    return lookup


def pair_lookup_from_store(store: "ProfileStore", baseline_commit: str,
                           candidate_commit: str,
                           backend: Optional[str] = None
                           ) -> Callable[[str, str], ProfilePair]:
    """Attribution lookup over two commits in a profile store."""

    def lookup(benchmark: str, size: str) -> ProfilePair:
        base = store.latest_profile(baseline_commit, benchmark, size,
                                    backend=backend)
        cand = store.latest_profile(candidate_commit, benchmark, size,
                                    backend=backend)
        if base is None or cand is None:
            return None
        return base.sampled_profile(), cand.sampled_profile()

    return lookup


class ProfileStore:
    """Common query/ingest logic over a backend entry iterator.

    The contract mirrors :class:`~repro.core.history.HistoryStore`:
    subclasses implement :meth:`_insert` (idempotent, returns newness)
    and :meth:`_iter_entries` (insertion order), overriding
    :meth:`_insert_many` when batch dedup can be amortized.
    """

    path: str

    def record(self, result: SuiteResult,
               commit: Optional[str] = None) -> List[ProfileEntry]:
        """Ingest a sampled suite result; returns entries actually added."""
        return self.record_entries(entries_from_result(result, commit=commit))

    def record_entries(self,
                       entries: Iterable[ProfileEntry]) -> List[ProfileEntry]:
        return self._insert_many(list(entries))

    def entries(self, commit: Optional[str] = None,
                benchmark: Optional[str] = None,
                size: Optional[str] = None,
                backend: Optional[str] = None,
                manifest_hash: Optional[str] = None) -> List[ProfileEntry]:
        """Stored entries in insertion order, optionally filtered."""
        out = []
        for entry in self._iter_entries():
            if commit is not None and entry.commit != commit:
                continue
            if benchmark is not None and entry.benchmark != benchmark:
                continue
            if size is not None and entry.size != size:
                continue
            if backend is not None and entry.backend != backend:
                continue
            if manifest_hash is not None and \
                    entry.manifest_hash != manifest_hash:
                continue
            out.append(entry)
        return out

    def commits(self) -> List[str]:
        """Distinct commits in first-recorded order (oldest first)."""
        seen: List[str] = []
        for entry in self._iter_entries():
            if entry.commit not in seen:
                seen.append(entry.commit)
        return seen

    def latest_commit_before(self, commit: str) -> Optional[str]:
        """Most recently measured commit other than ``commit`` (or None).

        Same recency discipline as the history store: ordered by each
        commit's newest ``created`` stamp, insertion index as tie-break.
        """
        latest: Dict[str, Tuple[float, int]] = {}
        for index, entry in enumerate(self._iter_entries()):
            if entry.commit == commit:
                continue
            key = (created_sort_key(entry.created), index)
            if entry.commit not in latest or key > latest[entry.commit]:
                latest[entry.commit] = key
        if not latest:
            return None
        return max(latest.items(), key=lambda item: item[1])[0]

    def latest_profile(self, commit: str, benchmark: str, size: str,
                       backend: Optional[str] = None
                       ) -> Optional[ProfileEntry]:
        """Newest stored profile for one cell at one commit (or None)."""
        matches = self.entries(commit=commit, benchmark=benchmark,
                               size=size, backend=backend)
        if not matches:
            return None
        return max(
            enumerate(matches),
            key=lambda pair: (created_sort_key(pair[1].created), pair[0]),
        )[1]

    def close(self) -> None:
        """Release any backend resources (no-op by default)."""

    def __enter__(self) -> "ProfileStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # Backend contract -------------------------------------------------

    def _insert(self, entry: ProfileEntry) -> bool:
        raise NotImplementedError

    def _insert_many(self, entries: List[ProfileEntry]) -> List[ProfileEntry]:
        return [entry for entry in entries if self._insert(entry)]

    def _iter_entries(self) -> Iterable[ProfileEntry]:
        raise NotImplementedError


class SqliteProfiles(ProfileStore):
    """SQLite-backed profile store (the default).

    The folded-stack payload is one JSON ``TEXT`` column beside the five
    key columns; ``INSERT OR IGNORE`` against the unique key index makes
    duplicate recordings database-level no-ops.
    """

    def __init__(self, path: str) -> None:
        import sqlite3

        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS profiles (
                rowid_order INTEGER PRIMARY KEY AUTOINCREMENT,
                commit_id TEXT NOT NULL,
                benchmark TEXT NOT NULL,
                size TEXT NOT NULL,
                backend TEXT NOT NULL,
                manifest_hash TEXT NOT NULL,
                created TEXT NOT NULL,
                profile TEXT NOT NULL,
                UNIQUE (commit_id, benchmark, size, backend, manifest_hash)
            )
            """
        )
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def _insert(self, entry: ProfileEntry) -> bool:
        cursor = self._conn.execute(
            """
            INSERT OR IGNORE INTO profiles
                (commit_id, benchmark, size, backend, manifest_hash,
                 created, profile)
            VALUES (?, ?, ?, ?, ?, ?, ?)
            """,
            (entry.commit, entry.benchmark, entry.size, entry.backend,
             entry.manifest_hash, entry.created,
             json.dumps(entry.profile, sort_keys=True)),
        )
        self._conn.commit()
        return cursor.rowcount > 0

    def _iter_entries(self) -> Iterable[ProfileEntry]:
        rows = self._conn.execute(
            """
            SELECT commit_id, benchmark, size, backend, manifest_hash,
                   created, profile
            FROM profiles ORDER BY rowid_order
            """
        )
        for row in rows:
            yield ProfileEntry(
                commit=row[0], benchmark=row[1], size=row[2], backend=row[3],
                manifest_hash=row[4], created=row[5],
                profile=json.loads(row[6]),
            )


class JsonlProfiles(ProfileStore):
    """Append-only JSONL profile store (the portable fallback).

    One schema-stamped JSON object per line; batch ingest builds the
    existing-key set once (per-entry file scans would be quadratic), and
    corrupt or truncated lines are skipped on read.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def _insert(self, entry: ProfileEntry) -> bool:
        return bool(self._insert_many([entry]))

    def _insert_many(self, entries: List[ProfileEntry]) -> List[ProfileEntry]:
        existing = {e.key for e in self._iter_entries()}
        added: List[ProfileEntry] = []
        with open(self.path, "a", encoding="utf-8") as handle:
            for entry in entries:
                if entry.key in existing:
                    continue
                existing.add(entry.key)
                line = json.dumps(
                    {"schema": PROFILE_SCHEMA, **entry.to_dict()},
                    sort_keys=True,
                )
                handle.write(line + "\n")
                added.append(entry)
        return added

    def _iter_entries(self) -> Iterable[ProfileEntry]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    yield ProfileEntry.from_dict(payload)
                except (ValueError, KeyError, TypeError):
                    continue


def open_profiles(path: str) -> ProfileStore:
    """Open (creating if needed) the profile store at ``path``.

    Same backend selection as :func:`~repro.core.history.open_history`:
    ``*.jsonl`` forces the text backend, otherwise SQLite when the
    stdlib module is importable.
    """
    if path.endswith(".jsonl"):
        return JsonlProfiles(path)
    try:
        import sqlite3  # noqa: F401
    except ImportError:
        return JsonlProfiles(path)
    return SqliteProfiles(path)
