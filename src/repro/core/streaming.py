"""Paced streaming driver: per-frame latency, jitter and deadline QoS.

SD-VBS motivates its workloads as the hot loops of real-time vision
systems, but batch-style single-frame timing cannot say whether a
pipeline *holds a frame deadline*.  Following CAVBench's latency-QoS
framing (PAPERS.md, arXiv 1810.06659), this module pushes continuous
frame sequences — built from the deterministic :mod:`repro.core.inputs`
generators — through any registered application at a target FPS and
reports the metrics a deployed stack is judged by:

* **Per-frame latency percentiles** (p50/p90/p95/p99/p99.9), recorded
  into the bounded :class:`~repro.core.metrics.LogHistogram` so a
  stream can run for hours without growing memory.
* **Inter-frame jitter**: RMS deviation of consecutive frame-start
  intervals from the ideal period.
* **Deadline-miss accounting** against a per-stream latency budget
  (default: the frame period itself).
* **Sustained throughput** over the warm-up-excluded steady-state
  window.

The pacer uses an **absolute schedule** on a monotonic clock: frame *k*
is released at ``t0 + k/fps``, never at ``previous + 1/fps``, so sleep
quantization and slow frames do not accumulate drift.  When a frame
overruns its slot the next frame starts immediately (its lateness is
recorded as an *overrun*) and the schedule re-converges as soon as the
pipeline catches up — the standard open-loop load-generation discipline
that avoids coordinated omission.

Multi-stream mode runs N identical pacers on a thread pool (the
vectorized kernels release the GIL inside numpy; the ``ref`` backend
serializes, which is itself part of the load shape being measured) and
reports per-stream plus merged percentiles.

Both ``clock`` and ``sleep`` are injectable so tests drive the pacer on
a fake clock with zero wall time.  With a
:class:`~repro.core.tracing.TraceRecorder` attached, every frame emits
a ``frame`` span wrapping the profiler's ``app``/``kernel`` spans, so
Perfetto shows the pacing gaps between frames.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .metrics import LogHistogram
from .profiler import KernelProfiler
from .registry import get_benchmark
from .tracing import CATEGORY_FRAME, TraceRecorder
from .types import VARIANTS_PER_SIZE, InputSize

#: Schema identifier stamped on the export's ``streaming`` block.
STREAMING_SCHEMA = "sdvbs-repro/streaming/v1"

#: Percentile ranks reported everywhere a latency summary appears.
PERCENTILES = (50.0, 90.0, 95.0, 99.0, 99.9)

#: A frame executor: (frame index, profiler) -> None.  The default one
#: runs the registered application on a cycling pool of prepared
#: workloads; tests inject synthetic ones that advance a fake clock.
FrameFn = Callable[[int, KernelProfiler], None]


@dataclass(frozen=True)
class StreamConfig:
    """Pacer configuration for one streaming measurement.

    ``frames`` counts *measured* steady-state frames; ``warmup_frames``
    additional frames are paced and traced first but excluded from all
    statistics (cold caches, allocator churn, JIT-like numpy paths).
    ``deadline_ms`` is the per-frame latency budget; ``None`` means the
    frame period ``1000/fps`` (a frame is "on time" if it finishes
    before the next one is due).  ``variants`` is the number of
    distinct input variants (1..5) cycled frame-to-frame so consecutive
    frames do not recompute byte-identical inputs.
    """

    benchmark: str
    size: InputSize
    fps: float = 10.0
    frames: int = 50
    streams: int = 1
    deadline_ms: Optional[float] = None
    warmup_frames: int = 2
    backend: Optional[str] = None
    variants: int = 2

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        if self.frames < 1:
            raise ValueError("need at least one measured frame")
        if self.streams < 1:
            raise ValueError("need at least one stream")
        if self.warmup_frames < 0:
            raise ValueError("warmup_frames must be non-negative")
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise ValueError("deadline_ms must be non-negative")
        if not 1 <= self.variants <= VARIANTS_PER_SIZE:
            raise ValueError(
                f"variants must be in 1..{VARIANTS_PER_SIZE}")

    @property
    def period(self) -> float:
        """Ideal seconds between frame releases."""
        return 1.0 / self.fps

    @property
    def budget_ms(self) -> float:
        """Effective per-frame deadline in milliseconds."""
        if self.deadline_ms is not None:
            return self.deadline_ms
        return 1000.0 * self.period

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "size": self.size.name,
            "fps": self.fps,
            "frames": self.frames,
            "streams": self.streams,
            "deadline_ms": self.budget_ms,
            "warmup_frames": self.warmup_frames,
            "backend": self.backend,
            "variants": self.variants,
        }


@dataclass(frozen=True)
class FrameRecord:
    """Timing of one paced frame, relative to the stream's t0.

    ``scheduled`` is the absolute-schedule release time ``k * period``;
    ``start`` the actual release (later when the previous frame overran
    its slot); ``end`` when the pipeline finished the frame.
    """

    index: int
    scheduled: float
    start: float
    end: float
    warmup: bool = False
    #: True when the pacer found the schedule already behind at release
    #: time (the previous frame overran its slot) — distinguished from
    #: ordinary sleep-wakeup tardiness, which still sleeps first.
    overran: bool = False

    @property
    def latency(self) -> float:
        """Seconds the pipeline spent on this frame."""
        return self.end - self.start

    @property
    def lateness(self) -> float:
        """Seconds the frame started after its scheduled release."""
        return self.start - self.scheduled


#: Lateness below which a no-sleep release still counts as on time
#: (absorbs back-to-back clock reads on real clocks; exact on fakes).
OVERRUN_EPSILON = 1e-4


@dataclass
class StreamResult:
    """One stream's paced run: frame log plus steady-state histogram."""

    stream: int
    config: StreamConfig
    frames: List[FrameRecord] = field(default_factory=list)
    histogram: LogHistogram = field(default_factory=LogHistogram)

    def steady_frames(self) -> List[FrameRecord]:
        return [f for f in self.frames if not f.warmup]

    # ------------------------------------------------------------------
    # Steady-state metrics

    def interval_deviations(self) -> List[float]:
        """Start-to-start interval errors vs the ideal period (seconds)."""
        steady = self.steady_frames()
        period = self.config.period
        return [
            steady[i + 1].start - steady[i].start - period
            for i in range(len(steady) - 1)
        ]

    def jitter_seconds(self) -> float:
        """RMS deviation of inter-frame start intervals from the period."""
        deviations = self.interval_deviations()
        if not deviations:
            return 0.0
        return (sum(d * d for d in deviations) / len(deviations)) ** 0.5

    def sustained_fps(self) -> float:
        """Frames completed per wall second over the steady window."""
        steady = self.steady_frames()
        if not steady:
            return 0.0
        elapsed = steady[-1].end - steady[0].start
        if elapsed <= 0:
            return 0.0
        return len(steady) / elapsed

    def deadline_misses(self) -> int:
        budget = self.config.budget_ms / 1000.0
        return sum(1 for f in self.steady_frames() if f.latency > budget)

    def overruns(self) -> int:
        """Steady frames released late because a previous frame ran long."""
        return sum(1 for f in self.steady_frames() if f.overran)

    def to_dict(self) -> Dict[str, object]:
        steady = self.steady_frames()
        misses = self.deadline_misses()
        return {
            "stream": self.stream,
            "frames": len(steady),
            "warmup_frames": len(self.frames) - len(steady),
            "overruns": self.overruns(),
            "latency_ms": _scale_summary(self.histogram),
            "jitter_ms": 1000.0 * self.jitter_seconds(),
            "mean_interval_ms": _mean_interval_ms(steady, self.config),
            "sustained_fps": self.sustained_fps(),
            "deadline": {
                "budget_ms": self.config.budget_ms,
                "misses": misses,
                "frames": len(steady),
                "miss_rate": misses / len(steady) if steady else 0.0,
            },
        }


def _mean_interval_ms(steady: Sequence[FrameRecord],
                      config: StreamConfig) -> float:
    if len(steady) < 2:
        return 1000.0 * config.period
    span = steady[-1].start - steady[0].start
    return 1000.0 * span / (len(steady) - 1)


def _scale_summary(histogram: LogHistogram) -> Dict[str, float]:
    """A latency summary in milliseconds from a seconds histogram."""
    summary = histogram.summary()
    scaled = {"count": summary["count"]}
    for key, value in summary.items():
        if key != "count":
            scaled[key] = 1000.0 * value
    return scaled


@dataclass
class StreamingReport:
    """All streams of one paced measurement plus merged aggregates."""

    config: StreamConfig
    streams: List[StreamResult]

    def ordered_streams(self) -> List[StreamResult]:
        """Streams sorted by index, so merged floating-point aggregates
        do not depend on thread completion order."""
        return sorted(self.streams, key=lambda s: s.stream)

    def merged_histogram(self) -> LogHistogram:
        merged = LogHistogram()
        for stream in self.ordered_streams():
            merged.merge(stream.histogram)
        return merged

    def merged_misses(self) -> Tuple[int, int]:
        """(missed frames, total steady frames) across all streams."""
        missed = sum(s.deadline_misses() for s in self.streams)
        total = sum(len(s.steady_frames()) for s in self.streams)
        return missed, total

    def merged_miss_rate(self) -> float:
        missed, total = self.merged_misses()
        return missed / total if total else 0.0

    def aggregate_fps(self) -> float:
        """Total frames/second delivered across all concurrent streams."""
        return sum(s.sustained_fps() for s in self.ordered_streams())

    def merged_jitter_seconds(self) -> float:
        """Pooled RMS interval deviation over every stream's intervals."""
        total_sq = 0.0
        count = 0
        for stream in self.ordered_streams():
            for deviation in stream.interval_deviations():
                total_sq += deviation * deviation
                count += 1
        if not count:
            return 0.0
        return (total_sq / count) ** 0.5

    def to_dict(self) -> Dict[str, object]:
        """The export's ``streaming`` block (schema v7)."""
        merged = self.merged_histogram()
        missed, total = self.merged_misses()
        return {
            "schema": STREAMING_SCHEMA,
            "config": self.config.to_dict(),
            "streams": [s.to_dict() for s in self.ordered_streams()],
            "merged": {
                "frames": total,
                "overruns": sum(s.overruns() for s in self.streams),
                "latency_ms": _scale_summary(merged),
                "jitter_ms": 1000.0 * self.merged_jitter_seconds(),
                "sustained_fps": self.aggregate_fps(),
                "deadline": {
                    "budget_ms": self.config.budget_ms,
                    "misses": missed,
                    "frames": total,
                    "miss_rate": missed / total if total else 0.0,
                },
                "histogram_ms": [
                    [1000.0 * lo, 1000.0 * hi, count]
                    for lo, hi, count in merged.nonzero_buckets()
                ],
            },
        }


# ----------------------------------------------------------------------
# The pacer


def default_frame_fn(config: StreamConfig) -> FrameFn:
    """Build the real frame executor: the registered application run on
    a cycling pool of prepared workloads (setup is untimed)."""
    benchmark = get_benchmark(config.benchmark)
    pool = [benchmark.setup(config.size, variant)
            for variant in range(config.variants)]

    def frame(index: int, profiler: KernelProfiler) -> None:
        benchmark.run(pool[index % len(pool)], profiler)

    return frame


def run_stream(config: StreamConfig,
               stream: int = 0,
               clock: Optional[Callable[[], float]] = None,
               sleep: Optional[Callable[[float], None]] = None,
               frame_fn: Optional[FrameFn] = None,
               recorder: Optional[TraceRecorder] = None) -> StreamResult:
    """Pace one stream of frames on an absolute schedule.

    Frame *k*'s release target is ``t0 + k * period`` — computed from
    the stream origin, never the previous frame — so neither sleep
    quantization nor slow frames accumulate drift.  Each frame's
    latency (steady frames only) lands in the stream's bounded
    histogram; all frames, warm-up included, are kept in the frame log
    and (optionally) emitted as ``frame`` spans on ``recorder``.
    """
    clock = clock or time.perf_counter
    sleep = sleep or time.sleep
    if frame_fn is None:
        frame_fn = default_frame_fn(config)
    result = StreamResult(stream=stream, config=config)
    period = config.period
    total_frames = config.warmup_frames + config.frames
    t0 = clock()
    for index in range(total_frames):
        target = t0 + index * period
        now = clock()
        overran = False
        if now < target:
            sleep(target - now)
            now = clock()
        else:
            overran = now - target > OVERRUN_EPSILON
        warmup = index < config.warmup_frames
        seq = None
        if recorder is not None:
            recorder.set_context(
                benchmark=config.benchmark, size=config.size.name,
                stream=stream, frame=index,
                phase="warmup" if warmup else "steady",
            )
            seq = recorder.span_open(f"frame[{index}]", CATEGORY_FRAME,
                                     now)
        profiler = KernelProfiler(clock=clock, recorder=recorder)
        with profiler.run():
            frame_fn(index, profiler)
        end = clock()
        if recorder is not None and seq is not None:
            recorder.span_close(seq, end)
        record = FrameRecord(index=index, scheduled=target - t0,
                             start=now - t0, end=end - t0, warmup=warmup,
                             overran=overran)
        result.frames.append(record)
        if not warmup:
            result.histogram.observe(record.latency)
    return result


def run_streams(config: StreamConfig,
                clock: Optional[Callable[[], float]] = None,
                sleep: Optional[Callable[[float], None]] = None,
                frame_fn: Optional[FrameFn] = None,
                recorder: Optional[TraceRecorder] = None
                ) -> StreamingReport:
    """Run ``config.streams`` concurrent pacers and merge their stats.

    A single stream runs inline.  Multiple streams run on a thread pool
    — one pacer per thread, each with its own workload pool and private
    :class:`TraceRecorder` (the shared recorder's span stack is not
    thread-safe); private traces are absorbed into ``recorder`` on
    separate tracks afterwards.  Backend selection is process-global,
    so it is applied once around the whole pool.
    """
    from .backend import use_backend

    with use_backend(config.backend):
        if config.streams == 1:
            streams = [run_stream(config, 0, clock, sleep, frame_fn,
                                  recorder)]
        else:
            def worker(stream: int) -> Tuple[StreamResult,
                                             Optional[TraceRecorder]]:
                local = TraceRecorder() if recorder is not None else None
                result = run_stream(config, stream, clock, sleep,
                                    frame_fn, local)
                return result, local

            with ThreadPoolExecutor(
                    max_workers=config.streams,
                    thread_name_prefix="sdvbs-stream") as pool:
                outcomes = list(pool.map(worker,
                                         range(config.streams)))
            streams = [result for result, _ in outcomes]
            if recorder is not None:
                for result, local in outcomes:
                    if local is not None:
                        recorder.absorb(local.to_serialized(),
                                        track=result.stream)
    return StreamingReport(config=config, streams=streams)


# ----------------------------------------------------------------------
# Human rendering (the `sdvbs stream` table)


def render_stream_report(report: StreamingReport) -> str:
    """Fixed-width per-stream + merged latency table."""
    payload = report.to_dict()
    config = payload["config"]
    header = (f"{config['benchmark']} @ {config['size']} | "
              f"target {config['fps']:g} fps x {config['streams']} "
              f"stream(s) | deadline {config['deadline_ms']:g} ms | "
              f"backend {config['backend'] or 'active'}")
    columns = ("stream", "frames", "p50", "p90", "p95", "p99", "p99.9",
               "jitter", "fps", "miss")
    widths = (7, 7, 9, 9, 9, 9, 9, 8, 8, 12)
    lines = [header, ""]
    lines.append("  ".join(f"{c:>{w}}" for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))

    def row(label: str, entry: Dict[str, object]) -> str:
        latency = entry["latency_ms"]
        deadline = entry["deadline"]
        cells = (
            label,
            f"{entry['frames']}",
            *(f"{latency[p]:.2f}" for p in
              ("p50", "p90", "p95", "p99", "p99.9")),
            f"{entry['jitter_ms']:.2f}",
            f"{entry['sustained_fps']:.2f}",
            f"{deadline['misses']}/{deadline['frames']}"
            f" ({100.0 * deadline['miss_rate']:.0f}%)",
        )
        return "  ".join(f"{c:>{w}}" for c, w in zip(cells, widths))

    for entry in payload["streams"]:
        lines.append(row(f"#{entry['stream']}", entry))
    merged = payload["merged"]
    if len(payload["streams"]) > 1:
        lines.append(row("merged", merged))
    lines.append("")
    lines.append(
        f"latency units: ms | overruns: {merged['overruns']} | "
        f"aggregate {merged['sustained_fps']:.2f} fps")
    return "\n".join(lines)
