"""Core value types shared across the SD-VBS reproduction.

These types encode the vocabulary of the paper: the three input sizes
(SQCIF/QCIF/CIF), the concentration areas of Table I, the data/compute
characteristic of Table II, and the ILP/DLP/TLP parallelism classes of
Table IV.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


class InputSize(enum.Enum):
    """The input scales of the suite.

    The paper ships three (SQCIF/QCIF/CIF); Figure 2/3 label them by
    relative pixel count: SQCIF is "1", QCIF is "2" (roughly 2x the
    pixels of SQCIF) and CIF is "4" (roughly 2x the pixels of QCIF).

    VGA (640x480) extends the axis beyond the paper's largest size so
    streaming runs can stress the Figure-2 scaling law; it is opt-in
    (``--sizes vga``) and excluded from the default paper-trio sweeps.
    """

    SQCIF = (128, 96)
    QCIF = (176, 144)
    CIF = (352, 288)
    VGA = (640, 480)

    @property
    def width(self) -> int:
        return self.value[0]

    @property
    def height(self) -> int:
        return self.value[1]

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols) shape for numpy images."""
        return (self.value[1], self.value[0])

    @property
    def pixels(self) -> int:
        return self.value[0] * self.value[1]

    @property
    def relative(self) -> int:
        """The paper's relative size label: SQCIF=1, QCIF=2, CIF=4.

        VGA extends the scale with the same pixel-count convention
        (640*480 / (128*96) = 25).
        """
        return {InputSize.SQCIF: 1, InputSize.QCIF: 2,
                InputSize.CIF: 4, InputSize.VGA: 25}[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Number of distinct input variants provided per size (the paper ships
#: "five distinct inputs for each of the sizes").
VARIANTS_PER_SIZE = 5


class ConcentrationArea(enum.Enum):
    """Vision concentration areas of Table I."""

    MOTION_TRACKING_STEREO = "Motion, Tracking and Stereo Vision"
    IMAGE_ANALYSIS = "Image Analysis"
    IMAGE_UNDERSTANDING = "Image Understanding"
    IMAGE_PROCESSING_FORMATION = "Image Processing and Formation"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Characteristic(enum.Enum):
    """Workload characteristic of Table II."""

    DATA_INTENSIVE = "Data intensive"
    COMPUTE_INTENSIVE = "Computationally intensive"
    DATA_AND_COMPUTE = "Data and computationally intensive"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ParallelismClass(enum.Enum):
    """Parallelism type assigned to each kernel in Table IV.

    ILP: fine-grained parallelism exploitable within a basic block.
    DLP: vector-style loops over large data sets with predictable access.
    TLP: independent coarse tasks schedulable simultaneously.
    """

    ILP = "ILP"
    DLP = "DLP"
    TLP = "TLP"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class KernelInfo:
    """Static description of one named kernel of an application."""

    name: str
    description: str
    parallelism_class: ParallelismClass


@dataclass
class KernelSample:
    """Accumulated timing for one kernel within a single benchmark run."""

    name: str
    seconds: float = 0.0
    calls: int = 0

    def merge(self, other: "KernelSample") -> None:
        if other.name != self.name:
            raise ValueError(f"cannot merge {other.name!r} into {self.name!r}")
        self.seconds += other.seconds
        self.calls += other.calls


#: Label used for time not attributed to any named kernel (the paper's
#: "Non-Kernel Work" slice of Figure 3).
NON_KERNEL_WORK = "NonKernelWork"


@dataclass(frozen=True)
class RunStats:
    """Statistics over repeated measurements of one quantity (seconds).

    The suite driver measures every (benchmark, size, variant) cell
    ``repeats`` times after ``warmup`` discarded runs; this type holds the
    retained samples and the aggregates the reports consume.  ``median``
    is the headline number (robust to a single slow outlier), ``stddev``
    is the sample standard deviation used to flag changes outside noise.
    """

    samples: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("RunStats requires at least one sample")

    @classmethod
    def of(cls, samples: Sequence[float]) -> "RunStats":
        return cls(samples=tuple(float(s) for s in samples))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def min(self) -> float:
        return min(self.samples)

    @property
    def max(self) -> float:
        return max(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def median(self) -> float:
        ordered = sorted(self.samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    @property
    def stddev(self) -> float:
        """Sample standard deviation (0.0 for a single sample)."""
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        var = sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1)
        return math.sqrt(var)

    def to_dict(self) -> Dict[str, object]:
        return {
            "samples": list(self.samples),
            "min": self.min,
            "median": self.median,
            "mean": self.mean,
            "stddev": self.stddev,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunStats":
        return cls.of(payload["samples"])  # type: ignore[arg-type]


@dataclass(frozen=True)
class AggregatedRun:
    """Repeated measurements of one (benchmark, size, variant) cell.

    ``total`` aggregates whole-application wall time; ``kernels`` holds a
    :class:`RunStats` per named kernel.  ``kernel_calls`` come from the
    first retained run (they are deterministic per workload and checked
    for consistency by the runner).
    """

    benchmark: str
    size: "InputSize"
    variant: int
    warmup: int
    total: RunStats
    kernels: Dict[str, RunStats] = field(default_factory=dict)
    kernel_calls: Dict[str, int] = field(default_factory=dict)

    @property
    def repeats(self) -> int:
        return self.total.count

    def representative(self) -> "BenchmarkRun":
        """The median-based :class:`BenchmarkRun` the reports consume."""
        return BenchmarkRun(
            benchmark=self.benchmark,
            size=self.size,
            variant=self.variant,
            total_seconds=self.total.median,
            kernel_seconds={k: s.median for k, s in self.kernels.items()},
            kernel_calls=dict(self.kernel_calls),
            stats=self,
        )


@dataclass
class BenchmarkRun:
    """Result of one application run on one input.

    ``kernel_seconds`` maps kernel name -> wall seconds spent inside that
    kernel (exclusive of nested named kernels).  ``total_seconds`` is the
    full application wall time, so occupancy percentages are
    ``kernel_seconds[k] / total_seconds`` and the remainder is non-kernel
    work.
    """

    benchmark: str
    size: InputSize
    variant: int
    total_seconds: float
    kernel_seconds: Dict[str, float] = field(default_factory=dict)
    kernel_calls: Dict[str, int] = field(default_factory=dict)
    outputs: Mapping[str, object] = field(default_factory=dict)
    #: Full repeat statistics when the run was measured with ``repeats>1``;
    #: ``total_seconds``/``kernel_seconds`` are then the per-cell medians.
    stats: Optional[AggregatedRun] = None
    #: Work-accounting metrics collected during the measured repeats (the
    #: :meth:`~repro.core.metrics.MetricsRegistry.to_dict` payload):
    #: counters, gauges, histogram summaries and per-kernel flop/byte
    #: totals with achieved GFLOP/s / GB/s.  ``None`` for runs measured
    #: before schema v4 or restored from older exports.
    metrics: Optional[Dict[str, object]] = None
    #: Statistical sampling profile collected alongside the measured
    #: repeats (the :meth:`~repro.core.sampling.SampledProfile.to_dict`
    #: payload): folded call stacks, per-kernel sample shares and the
    #: top NonKernelWork leaf functions.  ``None`` unless the run was
    #: measured with a :class:`~repro.core.sampling.StackSampler`
    #: attached (schema v5).
    sampling: Optional[Dict[str, object]] = None

    def occupancy(self) -> Dict[str, float]:
        """Percentage of total runtime per kernel, plus non-kernel work.

        Matches the y-axis of the paper's Figure 3.  Shares always sum to
        exactly 100%: when attributed kernel time exceeds the measured
        wall time (profiler overhead can skew either side), the kernel
        shares are rescaled onto the 100% budget instead of summing past
        it, and ``NonKernelWork`` is never negative.
        """
        if self.total_seconds <= 0.0:
            return {NON_KERNEL_WORK: 100.0}
        attributed = sum(self.kernel_seconds.values())
        denominator = max(self.total_seconds, attributed)
        shares = {
            name: 100.0 * seconds / denominator
            for name, seconds in self.kernel_seconds.items()
        }
        residual = max(0.0, denominator - attributed)
        shares[NON_KERNEL_WORK] = 100.0 * residual / denominator
        return shares


@dataclass
class ScalingPoint:
    """One point of Figure 2: relative input size vs relative runtime."""

    benchmark: str
    relative_size: int
    relative_time: float


@dataclass(frozen=True)
class ParallelismEstimate:
    """One row of Table IV: kernel work/span parallelism and its type."""

    benchmark: str
    kernel: str
    parallelism: float
    parallelism_class: ParallelismClass
    work: int
    span: int


@dataclass
class SuiteResult:
    """All runs collected by the suite runner, grouped for reporting.

    ``manifest`` is the reproducibility header (host configuration,
    software versions, CLI args, measurement knobs) attached by the JSON
    export layer; it is ``None`` until a caller stamps one on (the CLI
    does) or the result is restored from a schema-v3 payload.

    ``shard`` is the sharded-execution provenance block
    (:mod:`repro.core.shard`, schema v6): the plan hash plus either this
    result's shard index/cells or the ``merged_from`` record of a merged
    sweep.  ``None`` for ordinary unsharded runs.

    ``streaming`` is the paced-stream latency block
    (:mod:`repro.core.streaming`, schema v7): pacer config plus
    per-stream and merged latency percentiles, jitter, sustained FPS
    and deadline-miss accounting.  ``None`` for batch-style runs.

    ``job`` is the serve-layer provenance block (:mod:`repro.core.jobs`,
    schema v8): job id, canonical spec digest, client and priority when
    the result was produced by a ``sdvbs serve`` job.  ``None`` for
    direct CLI runs.
    """

    runs: List[BenchmarkRun] = field(default_factory=list)
    manifest: Optional[Dict[str, object]] = None
    shard: Optional[Dict[str, object]] = None
    streaming: Optional[Dict[str, object]] = None
    job: Optional[Dict[str, object]] = None

    def for_benchmark(self, name: str) -> List[BenchmarkRun]:
        return [run for run in self.runs if run.benchmark == name]

    def benchmarks(self) -> List[str]:
        seen: List[str] = []
        for run in self.runs:
            if run.benchmark not in seen:
                seen.append(run.benchmark)
        return seen

    def mean_total(self, benchmark: str, size: InputSize) -> Optional[float]:
        """Mean wall time over variants for one benchmark at one size."""
        times = [
            run.total_seconds
            for run in self.runs
            if run.benchmark == benchmark and run.size == size
        ]
        if not times:
            return None
        return sum(times) / len(times)

    def median_total(self, benchmark: str, size: InputSize) -> Optional[float]:
        """Median wall time over variants for one benchmark at one size.

        Each run's ``total_seconds`` is already the per-cell median when
        it was measured with repeats, so this is a median of medians —
        the robust headline the figures and comparisons use.
        """
        times = [
            run.total_seconds
            for run in self.runs
            if run.benchmark == benchmark and run.size == size
        ]
        if not times:
            return None
        return RunStats.of(times).median

    def total_stddev(self, benchmark: str, size: InputSize) -> Optional[float]:
        """Measurement noise for one benchmark/size cell.

        Combines the recorded per-run repeat stddevs (root-sum-square of
        the per-variant values, scaled to one variant).  Returns ``None``
        when *no* run in the cell carries repeat statistics with at least
        two samples — single-shot runs and pre-v3 exports have no noise
        estimate, and reporting 0.0 for them would make every comparison
        look infinitely significant.  Runs lacking stats alongside
        repeated ones contribute zero (the repeated runs bound the noise).
        """
        cell = [
            run
            for run in self.runs
            if run.benchmark == benchmark and run.size == size
        ]
        if not cell:
            return None
        if not any(run.stats is not None and run.stats.total.count >= 2
                   for run in cell):
            return None
        stds = [
            run.stats.total.stddev if run.stats is not None else 0.0
            for run in cell
        ]
        return math.sqrt(sum(s * s for s in stds) / len(stds))

    def mean_occupancy(self, benchmark: str, size: InputSize) -> Dict[str, float]:
        """Mean per-kernel occupancy over variants (Figure 3 bars)."""
        runs = [
            run
            for run in self.runs
            if run.benchmark == benchmark and run.size == size
        ]
        if not runs:
            return {}
        totals: Dict[str, float] = {}
        for run in runs:
            for kernel, share in run.occupancy().items():
                totals[kernel] = totals.get(kernel, 0.0) + share
        return {kernel: total / len(runs) for kernel, total in totals.items()}
