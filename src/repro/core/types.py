"""Core value types shared across the SD-VBS reproduction.

These types encode the vocabulary of the paper: the three input sizes
(SQCIF/QCIF/CIF), the concentration areas of Table I, the data/compute
characteristic of Table II, and the ILP/DLP/TLP parallelism classes of
Table IV.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple


class InputSize(enum.Enum):
    """The three input scales shipped with SD-VBS.

    The paper's Figure 2/3 x-axis labels these by relative pixel count:
    SQCIF is "1", QCIF is "2" (roughly 2x the pixels of SQCIF) and CIF is
    "4" (roughly 2x the pixels of QCIF).
    """

    SQCIF = (128, 96)
    QCIF = (176, 144)
    CIF = (352, 288)

    @property
    def width(self) -> int:
        return self.value[0]

    @property
    def height(self) -> int:
        return self.value[1]

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols) shape for numpy images."""
        return (self.value[1], self.value[0])

    @property
    def pixels(self) -> int:
        return self.value[0] * self.value[1]

    @property
    def relative(self) -> int:
        """The paper's relative size label: SQCIF=1, QCIF=2, CIF=4."""
        return {InputSize.SQCIF: 1, InputSize.QCIF: 2, InputSize.CIF: 4}[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Number of distinct input variants provided per size (the paper ships
#: "five distinct inputs for each of the sizes").
VARIANTS_PER_SIZE = 5


class ConcentrationArea(enum.Enum):
    """Vision concentration areas of Table I."""

    MOTION_TRACKING_STEREO = "Motion, Tracking and Stereo Vision"
    IMAGE_ANALYSIS = "Image Analysis"
    IMAGE_UNDERSTANDING = "Image Understanding"
    IMAGE_PROCESSING_FORMATION = "Image Processing and Formation"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Characteristic(enum.Enum):
    """Workload characteristic of Table II."""

    DATA_INTENSIVE = "Data intensive"
    COMPUTE_INTENSIVE = "Computationally intensive"
    DATA_AND_COMPUTE = "Data and computationally intensive"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ParallelismClass(enum.Enum):
    """Parallelism type assigned to each kernel in Table IV.

    ILP: fine-grained parallelism exploitable within a basic block.
    DLP: vector-style loops over large data sets with predictable access.
    TLP: independent coarse tasks schedulable simultaneously.
    """

    ILP = "ILP"
    DLP = "DLP"
    TLP = "TLP"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class KernelInfo:
    """Static description of one named kernel of an application."""

    name: str
    description: str
    parallelism_class: ParallelismClass


@dataclass
class KernelSample:
    """Accumulated timing for one kernel within a single benchmark run."""

    name: str
    seconds: float = 0.0
    calls: int = 0

    def merge(self, other: "KernelSample") -> None:
        if other.name != self.name:
            raise ValueError(f"cannot merge {other.name!r} into {self.name!r}")
        self.seconds += other.seconds
        self.calls += other.calls


#: Label used for time not attributed to any named kernel (the paper's
#: "Non-Kernel Work" slice of Figure 3).
NON_KERNEL_WORK = "NonKernelWork"


@dataclass
class BenchmarkRun:
    """Result of one application run on one input.

    ``kernel_seconds`` maps kernel name -> wall seconds spent inside that
    kernel (exclusive of nested named kernels).  ``total_seconds`` is the
    full application wall time, so occupancy percentages are
    ``kernel_seconds[k] / total_seconds`` and the remainder is non-kernel
    work.
    """

    benchmark: str
    size: InputSize
    variant: int
    total_seconds: float
    kernel_seconds: Dict[str, float] = field(default_factory=dict)
    kernel_calls: Dict[str, int] = field(default_factory=dict)
    outputs: Mapping[str, object] = field(default_factory=dict)

    def occupancy(self) -> Dict[str, float]:
        """Percentage of total runtime per kernel, plus non-kernel work.

        Matches the y-axis of the paper's Figure 3.
        """
        if self.total_seconds <= 0.0:
            return {NON_KERNEL_WORK: 100.0}
        shares = {
            name: 100.0 * seconds / self.total_seconds
            for name, seconds in self.kernel_seconds.items()
        }
        attributed = sum(self.kernel_seconds.values())
        residual = max(0.0, self.total_seconds - attributed)
        shares[NON_KERNEL_WORK] = 100.0 * residual / self.total_seconds
        return shares


@dataclass
class ScalingPoint:
    """One point of Figure 2: relative input size vs relative runtime."""

    benchmark: str
    relative_size: int
    relative_time: float


@dataclass(frozen=True)
class ParallelismEstimate:
    """One row of Table IV: kernel work/span parallelism and its type."""

    benchmark: str
    kernel: str
    parallelism: float
    parallelism_class: ParallelismClass
    work: int
    span: int


@dataclass
class SuiteResult:
    """All runs collected by the suite runner, grouped for reporting."""

    runs: List[BenchmarkRun] = field(default_factory=list)

    def for_benchmark(self, name: str) -> List[BenchmarkRun]:
        return [run for run in self.runs if run.benchmark == name]

    def benchmarks(self) -> List[str]:
        seen: List[str] = []
        for run in self.runs:
            if run.benchmark not in seen:
                seen.append(run.benchmark)
        return seen

    def mean_total(self, benchmark: str, size: InputSize) -> Optional[float]:
        """Mean wall time over variants for one benchmark at one size."""
        times = [
            run.total_seconds
            for run in self.runs
            if run.benchmark == benchmark and run.size == size
        ]
        if not times:
            return None
        return sum(times) / len(times)

    def mean_occupancy(self, benchmark: str, size: InputSize) -> Dict[str, float]:
        """Mean per-kernel occupancy over variants (Figure 3 bars)."""
        runs = [
            run
            for run in self.runs
            if run.benchmark == benchmark and run.size == size
        ]
        if not runs:
            return {}
        totals: Dict[str, float] = {}
        for run in runs:
            for kernel, share in run.occupancy().items():
                totals[kernel] = totals.get(kernel, 0.0) + share
        return {kernel: total / len(runs) for kernel, total in totals.items()}
