"""Deterministic synthetic inputs for every SD-VBS application.

The original suite ships 65 test vectors: five input variants at each of
three sizes (SQCIF/QCIF/CIF) per benchmark.  Those images are not
redistributable here, so this module generates seeded synthetic scenes with
the same sizes and variant counts.  Each generator produces inputs with
*known ground truth* (true disparity, true motion, true homography, true
robot path, true class labels), which both exercises the same code paths
and lets the test suite check algorithmic correctness — something the
original bitmap inputs could not do.

All images are ``float64`` arrays in ``[0, 1]`` with shape ``(rows, cols)``.
Generation is purely a function of ``(size, variant)`` plus a per-purpose
salt, so repeated calls are bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .types import VARIANTS_PER_SIZE, InputSize


def rng_for(size: InputSize, variant: int, salt: str) -> np.random.Generator:
    """Deterministic generator keyed by size, variant index and purpose."""
    if not 0 <= variant < VARIANTS_PER_SIZE:
        raise ValueError(
            f"variant must be in [0, {VARIANTS_PER_SIZE}), got {variant}"
        )
    seed = abs(hash((size.name, variant, salt))) % (2**32)
    # ``hash`` of strings is salted per-process; build a stable seed instead.
    stable = 0
    for ch in f"{size.name}:{variant}:{salt}":
        stable = (stable * 131 + ord(ch)) % (2**31 - 1)
    del seed
    return np.random.default_rng(stable)


def _smooth(rng: np.random.Generator, shape: Tuple[int, int], octaves: int = 4) -> np.ndarray:
    """Multi-octave value noise: smooth, natural-looking luminance field."""
    rows, cols = shape
    out = np.zeros(shape, dtype=np.float64)
    amplitude = 1.0
    for octave in range(octaves):
        grid_r = max(2, rows >> (octaves - octave))
        grid_c = max(2, cols >> (octaves - octave))
        coarse = rng.random((grid_r, grid_c))
        # Bilinear upsample of the coarse grid to full resolution.
        rr = np.linspace(0, grid_r - 1, rows)
        cc = np.linspace(0, grid_c - 1, cols)
        r0 = np.floor(rr).astype(int)
        c0 = np.floor(cc).astype(int)
        r1 = np.minimum(r0 + 1, grid_r - 1)
        c1 = np.minimum(c0 + 1, grid_c - 1)
        fr = (rr - r0)[:, None]
        fc = (cc - c0)[None, :]
        layer = (
            coarse[np.ix_(r0, c0)] * (1 - fr) * (1 - fc)
            + coarse[np.ix_(r1, c0)] * fr * (1 - fc)
            + coarse[np.ix_(r0, c1)] * (1 - fr) * fc
            + coarse[np.ix_(r1, c1)] * fr * fc
        )
        out += amplitude * layer
        amplitude *= 0.5
    out -= out.min()
    peak = out.max()
    if peak > 0:
        out /= peak
    return out


def _checker(shape: Tuple[int, int], period: int, phase: Tuple[int, int]) -> np.ndarray:
    rows, cols = shape
    r = (np.arange(rows)[:, None] + phase[0]) // period
    c = (np.arange(cols)[None, :] + phase[1]) // period
    return ((r + c) % 2).astype(np.float64)


def image(size: InputSize, variant: int = 0, salt: str = "image") -> np.ndarray:
    """A textured grayscale scene with corners, edges, and smooth regions.

    The blend of value noise, checker texture, and bright blobs gives every
    feature detector in the suite (Harris, SIFT DoG, KLT) something real to
    find, at every size.
    """
    rng = rng_for(size, variant, salt)
    shape = size.shape
    base = _smooth(rng, shape)
    texture = _checker(shape, period=6 + variant, phase=(variant, 2 * variant))
    img = 0.6 * base + 0.25 * texture
    # Sprinkle high-contrast blobs (trackable features).
    rows, cols = shape
    for _ in range(12 + 2 * variant):
        cy = int(rng.integers(4, rows - 4))
        cx = int(rng.integers(4, cols - 4))
        radius = int(rng.integers(2, 5))
        yy, xx = np.ogrid[-radius : radius + 1, -radius : radius + 1]
        disk = (yy * yy + xx * xx) <= radius * radius
        patch = img[cy - radius : cy + radius + 1, cx - radius : cx + radius + 1]
        patch[disk] = float(rng.random())
    img += 0.02 * rng.standard_normal(shape)
    return np.clip(img, 0.0, 1.0)


# ----------------------------------------------------------------------
# Disparity


@dataclass(frozen=True)
class StereoPair:
    """A rectified stereo pair with piecewise-constant ground truth."""

    left: np.ndarray
    right: np.ndarray
    true_disparity: np.ndarray
    max_disparity: int


def stereo_pair(size: InputSize, variant: int = 0, max_disparity: int = 12) -> StereoPair:
    """Left/right views of a layered scene.

    The scene is split into horizontal depth bands; the right image is the
    left image shifted *left* by the band's disparity (standard rectified
    geometry), so a dense SSD matcher should recover the band structure.
    """
    rng = rng_for(size, variant, "stereo")
    rows, cols = size.shape
    left = image(size, variant, salt="stereo-left")
    bands = int(rng.integers(3, 6))
    edges = np.linspace(0, rows, bands + 1).astype(int)
    true_disp = np.zeros((rows, cols), dtype=np.int64)
    levels = rng.permutation(np.linspace(1, max_disparity - 1, bands).astype(int))
    for band in range(bands):
        true_disp[edges[band] : edges[band + 1], :] = levels[band]
    right = np.empty_like(left)
    for r in range(rows):
        d = int(true_disp[r, 0])
        shifted = np.roll(left[r], -d)
        if d > 0:
            shifted[-d:] = shifted[-d - 1]  # replicate border
        right[r] = shifted
    right = np.clip(right + 0.01 * rng.standard_normal(right.shape), 0.0, 1.0)
    return StereoPair(left=left, right=right, true_disparity=true_disp,
                      max_disparity=max_disparity)


# ----------------------------------------------------------------------
# Feature tracking


@dataclass(frozen=True)
class ImageSequence:
    """Frames of a translating scene plus the true apparent motion.

    ``true_motion`` is the (dy, dx) displacement of scene content between
    consecutive frames as seen in image coordinates: a feature at (r, c)
    in frame ``t`` sits at ``(r + dy, c + dx)`` in frame ``t + 1``.
    """

    frames: List[np.ndarray]
    true_motion: Tuple[float, float]


def sequence(size: InputSize, variant: int = 0, n_frames: int = 4) -> ImageSequence:
    """A scene translating by a constant sub-pixel-free offset per frame."""
    rng = rng_for(size, variant, "sequence")
    # Render a larger canvas and crop a sliding window, so frame content
    # really moves instead of wrapping.
    rows, cols = size.shape
    canvas_shape = (rows + 8 * n_frames, cols + 8 * n_frames)
    canvas = _smooth(rng, canvas_shape) * 0.7
    canvas += 0.3 * _checker(canvas_shape, period=7, phase=(variant, variant))
    for _ in range(20):
        cy = int(rng.integers(4, canvas_shape[0] - 4))
        cx = int(rng.integers(4, canvas_shape[1] - 4))
        canvas[cy - 2 : cy + 3, cx - 2 : cx + 3] = float(rng.random())
    dy = int(rng.integers(1, 4))
    dx = int(rng.integers(1, 4))
    frames = []
    for f in range(n_frames):
        oy, ox = f * dy, f * dx
        frames.append(canvas[oy : oy + rows, ox : ox + cols].copy())
    # The crop window advances by (+dy, +dx), so scene content moves by
    # (-dy, -dx) in image coordinates.
    return ImageSequence(frames=frames, true_motion=(-float(dy), -float(dx)))


# ----------------------------------------------------------------------
# Segmentation


def segmentation_image(size: InputSize, variant: int = 0,
                       n_regions: int = 4) -> Tuple[np.ndarray, np.ndarray]:
    """A piecewise-smooth image of ``n_regions`` intensity regions.

    Returns ``(image, true_labels)`` where labels are Voronoi cells of
    random sites — contiguous regions with distinct mean intensities, the
    structure normalized cuts should recover.
    """
    rng = rng_for(size, variant, f"segments-{n_regions}")
    rows, cols = size.shape
    sites = np.stack(
        [rng.uniform(0, rows, n_regions), rng.uniform(0, cols, n_regions)], axis=1
    )
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    dists = (
        (rr[..., None] - sites[:, 0]) ** 2 + (cc[..., None] - sites[:, 1]) ** 2
    )
    labels = np.argmin(dists, axis=2)
    means = np.linspace(0.1, 0.9, n_regions)
    rng.shuffle(means)
    img = means[labels] + 0.03 * rng.standard_normal((rows, cols))
    return np.clip(img, 0.0, 1.0), labels


# ----------------------------------------------------------------------
# Stitch


@dataclass(frozen=True)
class OverlappingPair:
    """Two views of one scene related by a known integer translation."""

    first: np.ndarray
    second: np.ndarray
    true_offset: Tuple[int, int]  # (dy, dx): second = scene shifted by this


def overlapping_pair(size: InputSize, variant: int = 0) -> OverlappingPair:
    """Two crops of a wide canvas with ~60% overlap (stitch workload)."""
    rng = rng_for(size, variant, "stitch")
    rows, cols = size.shape
    dy = int(rng.integers(2, max(3, rows // 8)))
    dx = int(rng.integers(cols // 5, cols // 3))
    canvas_shape = (rows + dy, cols + dx)
    canvas = _smooth(rng, canvas_shape) * 0.65
    canvas += 0.2 * _checker(canvas_shape, period=9, phase=(variant, 1 + variant))
    for _ in range(30):
        cy = int(rng.integers(4, canvas_shape[0] - 4))
        cx = int(rng.integers(4, canvas_shape[1] - 4))
        canvas[cy - 2 : cy + 3, cx - 2 : cx + 3] = float(rng.random())
    first = canvas[:rows, :cols].copy()
    second = canvas[dy:, dx:][:rows, :cols].copy()
    return OverlappingPair(first=first, second=second, true_offset=(dy, dx))


# ----------------------------------------------------------------------
# Face detection


FACE_PATCH = 16  # side of the canonical training window


def _render_face(rng: np.random.Generator, jitter: float = 1.0) -> np.ndarray:
    """A synthetic face-like 16x16 patch: dark eyes/mouth on a light oval.

    Viola-Jones features key on exactly these contrast relationships
    (eye band darker than cheeks, etc.), so a detector trained on these
    patches exercises the full Haar/AdaBoost/cascade pipeline.
    """
    patch = 0.65 + 0.1 * rng.standard_normal((FACE_PATCH, FACE_PATCH)) * jitter
    yy, xx = np.ogrid[:FACE_PATCH, :FACE_PATCH]
    cy, cx = FACE_PATCH / 2 - 0.5, FACE_PATCH / 2 - 0.5
    oval = ((yy - cy) / (FACE_PATCH * 0.48)) ** 2 + (
        (xx - cx) / (FACE_PATCH * 0.40)
    ) ** 2
    patch[oval > 1.0] *= 0.55
    ey = int(FACE_PATCH * 0.34 + rng.normal(0, 0.3 * jitter))
    for ex in (int(FACE_PATCH * 0.30), int(FACE_PATCH * 0.68)):
        patch[max(0, ey - 1) : ey + 2, ex - 1 : ex + 2] = 0.12 + 0.05 * rng.random()
    my = int(FACE_PATCH * 0.72 + rng.normal(0, 0.3 * jitter))
    patch[my : my + 2, int(FACE_PATCH * 0.33) : int(FACE_PATCH * 0.67)] = (
        0.18 + 0.05 * rng.random()
    )
    return np.clip(patch, 0.0, 1.0)


def face_training_set(variant: int = 0, n_pos: int = 120,
                      n_neg: int = 360) -> Tuple[np.ndarray, np.ndarray]:
    """Labeled 16x16 patches: ``(patches[n, 16, 16], labels[n] in {0,1})``.

    Negatives mix white noise, smooth fields, checker texture, and crops
    from scene-background renders (the same distribution
    :func:`face_scene` composes its clutter from), so the cascade learns
    to reject what it will actually scan over.
    """
    rng = rng_for(InputSize.SQCIF, variant, "face-train")
    patches = []
    labels = []
    for _ in range(n_pos):
        patches.append(_augmented_face(rng))
        labels.append(1)
    background = _smooth(rng, (96, 128), octaves=3) * 0.5 + 0.2
    for _ in range(n_neg):
        kind = rng.integers(0, 4)
        if kind == 0:
            neg = rng.random((FACE_PATCH, FACE_PATCH))
        elif kind == 1:
            neg = _smooth(rng, (FACE_PATCH, FACE_PATCH), octaves=2)
        elif kind == 2:
            neg = _checker((FACE_PATCH, FACE_PATCH), period=int(rng.integers(2, 6)),
                           phase=(int(rng.integers(0, 4)), int(rng.integers(0, 4))))
            neg = 0.3 + 0.5 * neg
        else:
            r0 = int(rng.integers(0, background.shape[0] - FACE_PATCH))
            c0 = int(rng.integers(0, background.shape[1] - FACE_PATCH))
            neg = background[r0 : r0 + FACE_PATCH, c0 : c0 + FACE_PATCH]
        patches.append(np.clip(neg, 0.0, 1.0))
        labels.append(0)
    return np.stack(patches), np.array(labels, dtype=np.int64)


def _augmented_face(rng: np.random.Generator) -> np.ndarray:
    """A rendered face with the scan-time distortions baked in.

    The sliding-window detector sees faces at quantized scales and
    half-stride offsets; training positives therefore include random
    sub-window shifts (+-1 px) and scale jitter so every cascade stage
    stays permissive to them.
    """
    face = _render_face(rng)
    side = int(rng.integers(FACE_PATCH, FACE_PATCH + 7))
    canvas_side = side + 4
    canvas = 0.45 + 0.1 * rng.standard_normal((canvas_side, canvas_side))
    idx = np.minimum(np.arange(side) * FACE_PATCH // side, FACE_PATCH - 1)
    canvas[2 : 2 + side, 2 : 2 + side] = face[np.ix_(idx, idx)]
    oy = 2 + int(rng.integers(-1, 2))
    ox = 2 + int(rng.integers(-1, 2))
    crop = canvas[oy : oy + side, ox : ox + side]
    # Bilinear shrink back to the canonical window (mirrors scan scaling).
    rr = np.linspace(0, side - 1, FACE_PATCH)
    r0 = np.floor(rr).astype(int)
    r1 = np.minimum(r0 + 1, side - 1)
    fr = rr - r0
    rows = crop[r0] * (1 - fr)[:, None] + crop[r1] * fr[:, None]
    cols = rows[:, r0] * (1 - fr)[None, :] + rows[:, r1] * fr[None, :]
    return np.clip(cols, 0.0, 1.0)


@dataclass(frozen=True)
class FaceScene:
    """An image containing synthetic faces at known windows."""

    image: np.ndarray
    true_boxes: List[Tuple[int, int, int]]  # (row, col, side) per face


def face_scene(size: InputSize, variant: int = 0, n_faces: int = 3) -> FaceScene:
    """A cluttered scene with ``n_faces`` rendered faces at random scales."""
    rng = rng_for(size, variant, "face-scene")
    rows, cols = size.shape
    img = _smooth(rng, (rows, cols), octaves=3) * 0.5 + 0.2
    boxes: List[Tuple[int, int, int]] = []
    for _ in range(n_faces):
        scale = float(rng.uniform(1.0, 1.8))
        side = int(round(FACE_PATCH * scale))
        for _attempt in range(20):
            r0 = int(rng.integers(0, rows - side))
            c0 = int(rng.integers(0, cols - side))
            if all(
                abs(r0 - br) > side or abs(c0 - bc) > side for br, bc, _ in boxes
            ):
                break
        face = _render_face(rng, jitter=0.5)
        # Nearest-neighbour upscale of the canonical face to ``side``.
        idx = np.minimum(
            (np.arange(side) * FACE_PATCH // side), FACE_PATCH - 1
        )
        img[r0 : r0 + side, c0 : c0 + side] = face[np.ix_(idx, idx)]
        boxes.append((r0, c0, side))
    return FaceScene(image=np.clip(img, 0.0, 1.0), true_boxes=boxes)


# ----------------------------------------------------------------------
# Robot localization


@dataclass(frozen=True)
class RobotWorld:
    """An occupancy grid plus a driven trajectory with sensor readings.

    ``grid`` is 1 where occupied.  ``controls`` are (d_theta, distance)
    odometry commands; ``measurements[t]`` are noisy ranges along
    ``n_beams`` bearings from the true pose after control ``t``.
    """

    grid: np.ndarray
    resolution: float
    start_pose: Tuple[float, float, float]
    true_poses: List[Tuple[float, float, float]]
    controls: List[Tuple[float, float]]
    measurements: List[np.ndarray]
    n_beams: int
    max_range: float


def _raycast(grid: np.ndarray, x: float, y: float, theta: float,
             max_range: float, step: float = 0.25) -> float:
    """Distance (in cells) from (x, y) along theta to the first occupied cell."""
    rows, cols = grid.shape
    dist = 0.0
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    while dist < max_range:
        px = x + dist * cos_t
        py = y + dist * sin_t
        if not (0 <= px < cols and 0 <= py < rows):
            return dist
        if grid[int(py), int(px)]:
            return dist
        dist += step
    return max_range


def robot_world(size: InputSize, variant: int = 0, n_steps: int = 24,
                n_beams: int = 8) -> RobotWorld:
    """A walled grid world scaled with ``size`` plus a noisy driven path.

    The grid side scales with the input size's linear dimension so the
    "input size" knob exists, but — matching the paper's observation —
    localization cost is governed by the number of particles and steps,
    not by map size.
    """
    rng = rng_for(size, variant, "robot")
    # The map grows only mildly with input size: the paper observes that
    # localization cost follows the trace and particle count, not the
    # nominal input scale.
    side = max(24, size.height // 8)
    grid = np.zeros((side, side), dtype=np.int8)
    grid[0, :] = grid[-1, :] = grid[:, 0] = grid[:, -1] = 1
    # An off-centre partial wall breaks the map's rotational symmetry so
    # global localization has a unique solution.
    wall_r = side // 3
    grid[wall_r, 1 : side // 2] = 1
    grid[1 : side // 4, 2 * side // 3] = 1
    for _ in range(side // 3):  # interior obstacles
        r0 = int(rng.integers(2, side - 8))
        c0 = int(rng.integers(2, side - 8))
        h = int(rng.integers(1, 6))
        w = int(rng.integers(1, 6))
        grid[r0 : r0 + h, c0 : c0 + w] = 1
    max_range = float(side)
    # Find a free starting cell near the middle (spiral outward).
    free_r, free_c = np.nonzero(grid == 0)
    centre_dist = (free_r - side / 2.0) ** 2 + (free_c - side / 2.0) ** 2
    start_idx = int(np.argmin(centre_dist))
    x = float(free_c[start_idx]) + 0.5
    y = float(free_r[start_idx]) + 0.5
    theta = float(rng.uniform(-math.pi, math.pi))
    start = (x, y, theta)
    controls: List[Tuple[float, float]] = []
    poses: List[Tuple[float, float, float]] = []
    measurements: List[np.ndarray] = []
    for _ in range(n_steps):
        turn = float(rng.uniform(-0.5, 0.5))
        dist = float(rng.uniform(0.5, 1.5))
        # Keep the robot in free space: re-draw the step if it would collide,
        # and stay put (turning only) when boxed in.
        placed = False
        for _attempt in range(16):
            nt = theta + turn
            nx = x + dist * math.cos(nt)
            ny = y + dist * math.sin(nt)
            if 0 <= nx < side and 0 <= ny < side and not grid[int(ny), int(nx)]:
                placed = True
                break
            turn = float(rng.uniform(-math.pi, math.pi))
            dist *= 0.7
        if not placed:
            nt, nx, ny = theta + turn, x, y
            dist = 0.0
        theta, x, y = nt, nx, ny
        controls.append((turn, dist))
        poses.append((x, y, theta))
        bearings = np.linspace(-math.pi, math.pi, n_beams, endpoint=False)
        ranges = np.array(
            [_raycast(grid, x, y, theta + b, max_range) for b in bearings]
        )
        ranges += rng.normal(0.0, 0.15, size=n_beams)
        measurements.append(np.clip(ranges, 0.0, max_range))
    return RobotWorld(
        grid=grid,
        resolution=1.0,
        start_pose=start,
        true_poses=poses,
        controls=controls,
        measurements=measurements,
        n_beams=n_beams,
        max_range=max_range,
    )


# ----------------------------------------------------------------------
# SVM


@dataclass(frozen=True)
class SvmDataset:
    """A two-class training/test split with labels in {-1, +1}."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray


def svm_dataset(size: InputSize, variant: int = 0, dim: int = 16,
                margin: float = 1.2) -> SvmDataset:
    """Two Gaussian classes separated along a random direction.

    The number of training points scales with the input size (the paper's
    SVM working set "500x64" scales similarly), keeping the benchmark's
    size knob meaningful.
    """
    rng = rng_for(size, variant, "svm")
    n_train = 40 * size.relative + 40
    n_test = 60
    direction = rng.standard_normal(dim)
    direction /= np.linalg.norm(direction)

    def sample(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = np.where(rng.random(n) < 0.5, -1.0, 1.0)
        points = rng.standard_normal((n, dim)) + np.outer(labels * margin, direction)
        return points, labels

    train_x, train_y = sample(n_train)
    test_x, test_y = sample(n_test)
    return SvmDataset(train_x=train_x, train_y=train_y,
                      test_x=test_x, test_y=test_y)


# ----------------------------------------------------------------------
# Texture synthesis


def texture_sample(size: InputSize, variant: int = 0,
                   kind: str = "stochastic") -> np.ndarray:
    """A texture exemplar: ``stochastic`` (noise-like) or ``structural``.

    Matches the paper's split of texture-synthesis test images into
    stochastic and structural classes.
    """
    rng = rng_for(size, variant, f"texture-{kind}")
    rows = cols = max(32, min(size.height, size.width) // 2)
    if kind == "stochastic":
        tex = _smooth(rng, (rows, cols), octaves=5)
    elif kind == "structural":
        period = 6 + variant
        stripes = 0.5 + 0.5 * np.sin(
            2 * math.pi * np.arange(cols)[None, :] / period
        )
        tex = 0.6 * np.tile(stripes, (rows, 1))
        tex += 0.4 * _checker((rows, cols), period=period, phase=(variant, 0))
        tex += 0.05 * rng.standard_normal((rows, cols))
    else:
        raise ValueError(f"unknown texture kind {kind!r}")
    tex -= tex.min()
    peak = tex.max()
    if peak > 0:
        tex /= peak
    return tex


def all_variants(size: InputSize) -> List[int]:
    """The variant indices shipped per size (paper: five per size)."""
    return list(range(VARIANTS_PER_SIZE))
