"""Persistent benchmark history: an append-only on-disk result store.

Regression tracking needs more than two JSON files on someone's laptop —
it needs every measured run, keyed by the code revision that produced it,
durable across sessions.  This module ingests suite exports
(:func:`~repro.core.export.result_to_dict` payloads or live
:class:`~repro.core.types.SuiteResult` objects) into per-cell rows keyed
by ``(commit, benchmark, size, backend, manifest hash)``:

* **commit** — the repository revision measured (``git rev-parse HEAD``,
  or ``"unknown"`` outside a checkout).
* **benchmark / size** — one suite grid cell, aggregated over variants
  exactly like the comparison layer (median of per-cell medians, noise
  combined root-sum-square).
* **backend** — ``ref`` vs ``fast`` timings are not comparable, so they
  never share a history key.
* **manifest hash** — a stable digest of the run manifest minus its
  timestamp; re-recording the same export is a no-op (append-only with
  idempotent ingest), while a re-measurement of the same commit gets its
  own row.

Two interchangeable backends implement the store: :class:`SqliteHistory`
(the default — one ``history.sqlite`` file, queryable with stock tooling)
and :class:`JsonlHistory` (append-only text, for filesystems or builds
where the :mod:`sqlite3` stdlib module is unavailable).
:func:`open_history` picks by availability and file extension.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass, fields
from datetime import datetime
from typing import Dict, Iterable, List, Optional, Tuple

from .types import InputSize, SuiteResult

#: Schema identifier stamped on every JSONL history line.
HISTORY_SCHEMA = "sdvbs-repro/history/v1"

#: Commit recorded when the working directory is not a git checkout.
UNKNOWN_COMMIT = "unknown"


def current_commit(cwd: Optional[str] = None) -> str:
    """The repository HEAD revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return UNKNOWN_COMMIT
    if out.returncode != 0:
        return UNKNOWN_COMMIT
    revision = out.stdout.strip()
    return revision if revision else UNKNOWN_COMMIT


def format_created(created: str) -> str:
    """Normalize a history ``created`` stamp to ISO-8601 for display.

    New entries are written as ISO-8601 local time already; stores
    written by earlier revisions may hold raw epoch floats (e.g.
    ``"1754300000.123"``), which render as unreadable numbers in
    ``sdvbs history list``.  Epoch-looking values are converted to local
    ISO-8601 via :meth:`datetime.astimezone` — ``time.strftime`` with
    ``%z`` renders an *empty* UTC offset on platforms whose
    ``time.localtime`` carries no zone info, whereas an aware datetime
    always formats one.  Anything non-numeric passes through unchanged.
    """
    try:
        epoch = float(created)
    except (TypeError, ValueError):
        return created
    return datetime.fromtimestamp(epoch).astimezone().isoformat()


def created_sort_key(created: str) -> float:
    """Best-effort epoch seconds for ordering ``created`` stamps.

    Accepts the raw epoch floats of early stores, ISO-8601 with or
    without a ``%z``-style offset, and falls back to ``0.0`` for
    unparseable values (which then sort oldest, deferring to insertion
    order as the tie-break).
    """
    try:
        return float(created)
    except (TypeError, ValueError):
        pass
    text = str(created)
    try:
        return datetime.fromisoformat(text).timestamp()
    except ValueError:
        pass
    # time.strftime("%z") writes "+0000"-style offsets, which
    # fromisoformat only accepts from Python 3.11 on.
    try:
        return datetime.strptime(text, "%Y-%m-%dT%H:%M:%S%z").timestamp()
    except ValueError:
        return 0.0


def manifest_hash(manifest: Optional[Dict[str, object]]) -> str:
    """Stable digest of a run manifest, ignoring its creation timestamp.

    Two runs with identical host, software and measurement configuration
    hash identically even when taken at different times; an absent
    manifest hashes to a fixed sentinel so pre-v3 exports remain
    recordable.
    """
    if not manifest:
        return hashlib.sha256(b"no-manifest").hexdigest()[:16]
    payload = {k: v for k, v in manifest.items() if k != "created"}
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class HistoryEntry:
    """One recorded (commit, benchmark, size, backend, manifest) cell.

    ``median_seconds`` is the comparison-layer headline (median over
    variants of per-cell repeat medians); ``stddev`` is the combined
    repeat noise or ``None`` when the run carried no repeat statistics
    (single-shot — its noise is unknown, not zero).
    """

    commit: str
    benchmark: str
    size: str
    backend: str
    manifest_hash: str
    created: str
    median_seconds: float
    stddev: Optional[float]
    repeats: int
    runs: int

    @property
    def key(self) -> Tuple[str, str, str, str, str]:
        return (self.commit, self.benchmark, self.size, self.backend,
                self.manifest_hash)

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "HistoryEntry":
        stddev = payload.get("stddev")
        return cls(
            commit=str(payload["commit"]),
            benchmark=str(payload["benchmark"]),
            size=str(payload["size"]),
            backend=str(payload["backend"]),
            manifest_hash=str(payload["manifest_hash"]),
            created=str(payload["created"]),
            median_seconds=float(payload["median_seconds"]),  # type: ignore[arg-type]
            stddev=None if stddev is None else float(stddev),  # type: ignore[arg-type]
            repeats=int(payload.get("repeats", 1)),  # type: ignore[arg-type]
            runs=int(payload.get("runs", 1)),  # type: ignore[arg-type]
        )


def entries_from_result(result: SuiteResult,
                        commit: Optional[str] = None) -> List[HistoryEntry]:
    """Flatten a suite result into per-cell history entries.

    ``commit=None`` stamps the current checkout's HEAD.  The backend and
    manifest hash come from the result's manifest (absent pieces degrade
    to ``"fast"`` / the no-manifest sentinel, so legacy exports record).

    ``created`` is the *measurement* time — the manifest's ``created``
    stamp when the export carries one — not the ingest time.  Recording
    an old export late must not make its commit look like the newest
    measurement (the regression detector picks its default baseline by
    recency); only manifest-less legacy exports fall back to "now".
    """
    if commit is None:
        commit = current_commit()
    manifest = result.manifest or {}
    measurement = manifest.get("measurement", {})
    backend = "fast"
    if isinstance(measurement, dict) and measurement.get("backend"):
        backend = str(measurement["backend"])
    digest = manifest_hash(result.manifest)
    created = manifest.get("created")
    if not isinstance(created, str) or not created:
        created = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    entries: List[HistoryEntry] = []
    for slug in result.benchmarks():
        for size in InputSize:
            median = result.median_total(slug, size)
            if median is None:
                continue
            cell = [run for run in result.runs
                    if run.benchmark == slug and run.size == size]
            repeats = max(
                (run.stats.total.count for run in cell
                 if run.stats is not None),
                default=1,
            )
            entries.append(
                HistoryEntry(
                    commit=commit,
                    benchmark=slug,
                    size=size.name,
                    backend=backend,
                    manifest_hash=digest,
                    created=created,
                    median_seconds=median,
                    stddev=result.total_stddev(slug, size),
                    repeats=repeats,
                    runs=len(cell),
                )
            )
    return entries


class HistoryStore:
    """Common query/ingest logic over a backend-provided entry iterator.

    Subclasses implement :meth:`_insert` (idempotent single-entry write,
    returning whether the entry was new) and :meth:`_iter_entries`
    (insertion-ordered read of everything on disk); they may override
    :meth:`_insert_many` when the backend can amortize duplicate
    detection over a batch (the JSONL backend must — scanning the file
    per entry is quadratic in store size).
    """

    path: str

    def record(self, result: SuiteResult,
               commit: Optional[str] = None) -> List[HistoryEntry]:
        """Ingest a suite result; returns the entries actually added.

        Re-recording an identical export (same commit, cells, backend and
        manifest hash) adds nothing — the store is append-only but the
        ingest is idempotent.
        """
        return self.record_entries(entries_from_result(result, commit=commit))

    def record_entries(self,
                       entries: Iterable[HistoryEntry]) -> List[HistoryEntry]:
        """Bulk idempotent ingest; returns the entries actually added.

        The shard merger's entry point: folding N shard exports lands
        here as one batch, deduplicated in a single pass over the
        existing store rather than once per entry.
        """
        return self._insert_many(list(entries))

    def entries(self, commit: Optional[str] = None,
                benchmark: Optional[str] = None,
                size: Optional[str] = None,
                backend: Optional[str] = None,
                manifest_hash: Optional[str] = None) -> List[HistoryEntry]:
        """Stored entries in insertion order, optionally filtered.

        ``manifest_hash`` selects every cell recorded under one exact
        measurement configuration (host, software, warmup/repeats,
        backend) regardless of when it ran — the serve layer's result
        cache uses it to report how much history a job spec already has.
        """
        out = []
        for entry in self._iter_entries():
            if commit is not None and entry.commit != commit:
                continue
            if benchmark is not None and entry.benchmark != benchmark:
                continue
            if size is not None and entry.size != size:
                continue
            if backend is not None and entry.backend != backend:
                continue
            if manifest_hash is not None and \
                    entry.manifest_hash != manifest_hash:
                continue
            out.append(entry)
        return out

    def commits(self) -> List[str]:
        """Distinct commits in first-recorded order (oldest first)."""
        seen: List[str] = []
        for entry in self._iter_entries():
            if entry.commit not in seen:
                seen.append(entry.commit)
        return seen

    def latest_commit_before(self, commit: str) -> Optional[str]:
        """The most recently *measured* commit other than ``commit``.

        The regression detector's default baseline: "whatever this store
        saw last that isn't the revision under test".  Candidates are
        ordered by each commit's newest ``created`` stamp (measurement
        time), with insertion order as the tie-break — raw insertion
        order alone would let a stale export, re-recorded after a newer
        commit (say, for a second backend), hijack the baseline.
        ``None`` when the store holds no other commit.
        """
        latest: Dict[str, Tuple[float, int]] = {}
        for index, entry in enumerate(self._iter_entries()):
            if entry.commit == commit:
                continue
            key = (created_sort_key(entry.created), index)
            if entry.commit not in latest or key > latest[entry.commit]:
                latest[entry.commit] = key
        if not latest:
            return None
        return max(latest.items(), key=lambda item: item[1])[0]

    def close(self) -> None:
        """Release any backend resources (no-op by default)."""

    def __enter__(self) -> "HistoryStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # Backend contract -------------------------------------------------

    def _insert(self, entry: HistoryEntry) -> bool:
        raise NotImplementedError

    def _insert_many(self, entries: List[HistoryEntry]) -> List[HistoryEntry]:
        """Idempotent batch write; default delegates to :meth:`_insert`.

        Fine for backends whose per-entry dedup is O(1) (SQLite's
        ``INSERT OR IGNORE`` against the unique index); backends that
        scan the store to detect duplicates must override this to scan
        once per batch.
        """
        return [entry for entry in entries if self._insert(entry)]

    def _iter_entries(self) -> Iterable[HistoryEntry]:
        raise NotImplementedError


class SqliteHistory(HistoryStore):
    """SQLite-backed history (the default store).

    One ``history`` table with the five key columns as primary key;
    ingest uses ``INSERT OR IGNORE`` so duplicate recordings are no-ops
    at the database layer, immune to concurrent writers.
    """

    def __init__(self, path: str) -> None:
        import sqlite3

        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS history (
                rowid_order INTEGER PRIMARY KEY AUTOINCREMENT,
                commit_id TEXT NOT NULL,
                benchmark TEXT NOT NULL,
                size TEXT NOT NULL,
                backend TEXT NOT NULL,
                manifest_hash TEXT NOT NULL,
                created TEXT NOT NULL,
                median_seconds REAL NOT NULL,
                stddev REAL,
                repeats INTEGER NOT NULL,
                runs INTEGER NOT NULL,
                UNIQUE (commit_id, benchmark, size, backend, manifest_hash)
            )
            """
        )
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def _insert(self, entry: HistoryEntry) -> bool:
        cursor = self._conn.execute(
            """
            INSERT OR IGNORE INTO history
                (commit_id, benchmark, size, backend, manifest_hash,
                 created, median_seconds, stddev, repeats, runs)
            VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
            """,
            (entry.commit, entry.benchmark, entry.size, entry.backend,
             entry.manifest_hash, entry.created, entry.median_seconds,
             entry.stddev, entry.repeats, entry.runs),
        )
        self._conn.commit()
        return cursor.rowcount > 0

    def _iter_entries(self) -> Iterable[HistoryEntry]:
        rows = self._conn.execute(
            """
            SELECT commit_id, benchmark, size, backend, manifest_hash,
                   created, median_seconds, stddev, repeats, runs
            FROM history ORDER BY rowid_order
            """
        )
        for row in rows:
            yield HistoryEntry(
                commit=row[0], benchmark=row[1], size=row[2], backend=row[3],
                manifest_hash=row[4], created=row[5],
                median_seconds=float(row[6]),
                stddev=None if row[7] is None else float(row[7]),
                repeats=int(row[8]), runs=int(row[9]),
            )


class JsonlHistory(HistoryStore):
    """Append-only JSONL history (the portable fallback).

    One JSON object per line, each stamped with the history schema.
    Dedup happens at ingest against a key set built *once per batch* —
    rescanning the file for every entry would make a bulk ingest of N
    entries into a store of M lines O(N·M), which the sharded-sweep
    fan-in would amplify badly.  Corrupt or truncated lines (a crashed
    writer) are skipped on read rather than poisoning the whole store.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def _insert(self, entry: HistoryEntry) -> bool:
        return bool(self._insert_many([entry]))

    def _insert_many(self, entries: List[HistoryEntry]) -> List[HistoryEntry]:
        existing = {e.key for e in self._iter_entries()}
        added: List[HistoryEntry] = []
        with open(self.path, "a", encoding="utf-8") as handle:
            for entry in entries:
                if entry.key in existing:
                    continue
                existing.add(entry.key)
                line = json.dumps(
                    {"schema": HISTORY_SCHEMA, **entry.to_dict()},
                    sort_keys=True,
                )
                handle.write(line + "\n")
                added.append(entry)
        return added

    def _iter_entries(self) -> Iterable[HistoryEntry]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    yield HistoryEntry.from_dict(payload)
                except (ValueError, KeyError, TypeError):
                    continue


def open_history(path: str) -> HistoryStore:
    """Open (creating if needed) the history store at ``path``.

    ``*.jsonl`` paths select the append-only text backend explicitly;
    anything else gets SQLite when the :mod:`sqlite3` stdlib module is
    importable and falls back to JSONL otherwise.
    """
    if path.endswith(".jsonl"):
        return JsonlHistory(path)
    try:
        import sqlite3  # noqa: F401
    except ImportError:
        return JsonlHistory(path)
    return SqliteHistory(path)
