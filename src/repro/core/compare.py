"""Compare two suite results: speedups and occupancy drift.

Architecture studies run the suite on two configurations and compare;
this module diffs two :class:`~repro.core.types.SuiteResult` objects into
a speedup table (baseline time / candidate time per benchmark/size) and a
per-kernel occupancy delta, rendered in the same ASCII style as the
paper's artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .report import format_table
from .types import NON_KERNEL_WORK, InputSize, SuiteResult


#: Three-way significance verdicts produced by :meth:`SpeedupEntry.verdict`.
VERDICT_SIGNIFICANT = "significant"
VERDICT_WITHIN_NOISE = "within noise"
VERDICT_INSUFFICIENT = "insufficient data"


@dataclass(frozen=True)
class SpeedupEntry:
    """One benchmark/size comparison.

    ``baseline_seconds``/``candidate_seconds`` are medians (per-cell
    repeat medians, then the median over variants); the stddevs are the
    recorded measurement noise, ``None`` when a side carries no repeat
    statistics (single-shot runs, v1/v2 exports) — its noise is simply
    unknown, which is not the same as zero.
    """

    benchmark: str
    size: InputSize
    baseline_seconds: float
    candidate_seconds: float
    baseline_stddev: Optional[float] = None
    candidate_stddev: Optional[float] = None

    @property
    def speedup(self) -> float:
        if self.candidate_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.candidate_seconds

    @property
    def noise(self) -> Optional[float]:
        """Combined measurement noise of the two sides (seconds).

        ``None`` when either side carries no noise estimate — without
        one, no statement about significance can be made.
        """
        if self.baseline_stddev is None or self.candidate_stddev is None:
            return None
        return (self.baseline_stddev ** 2 + self.candidate_stddev ** 2) ** 0.5

    def is_significant(self, sigmas: float = 2.0) -> bool:
        """Whether the runtime change exceeds the recorded noise.

        ``False`` when the noise is unknown: a run without repeat
        statistics cannot support a significance claim (treating unknown
        noise as 0.0 would make every nonzero delta "significant").
        Use :meth:`verdict` to distinguish "within noise" from
        "insufficient data".
        """
        noise = self.noise
        if noise is None:
            return False
        delta = abs(self.baseline_seconds - self.candidate_seconds)
        return delta > sigmas * noise

    def verdict(self, sigmas: float = 2.0) -> str:
        """Three-way significance call for this comparison.

        ``"insufficient data"`` when either side lacks a noise estimate,
        else ``"significant"`` / ``"within noise"`` per
        :meth:`is_significant`.
        """
        if self.noise is None:
            return VERDICT_INSUFFICIENT
        if self.is_significant(sigmas):
            return VERDICT_SIGNIFICANT
        return VERDICT_WITHIN_NOISE


def speedups(baseline: SuiteResult,
             candidate: SuiteResult) -> List[SpeedupEntry]:
    """Per-(benchmark, size) median speedups over the shared run set."""
    entries: List[SpeedupEntry] = []
    for slug in baseline.benchmarks():
        if slug not in candidate.benchmarks():
            continue
        for size in InputSize:
            base = baseline.median_total(slug, size)
            cand = candidate.median_total(slug, size)
            if base is None or cand is None:
                continue
            entries.append(
                SpeedupEntry(
                    benchmark=slug,
                    size=size,
                    baseline_seconds=base,
                    candidate_seconds=cand,
                    baseline_stddev=baseline.total_stddev(slug, size),
                    candidate_stddev=candidate.total_stddev(slug, size),
                )
            )
    return entries


def geometric_mean_speedup(entries: List[SpeedupEntry]) -> float:
    """The architecture-standard aggregate over a benchmark suite."""
    if not entries:
        raise ValueError("no comparable entries")
    product = 1.0
    for entry in entries:
        product *= entry.speedup
    return product ** (1.0 / len(entries))


def occupancy_drift(
    baseline: SuiteResult,
    candidate: SuiteResult,
    slug: str,
    size: InputSize,
) -> Dict[str, float]:
    """Per-kernel occupancy change (candidate - baseline, in points)."""
    base = baseline.mean_occupancy(slug, size)
    cand = candidate.mean_occupancy(slug, size)
    if not base or not cand:
        raise ValueError(f"no runs for {slug} at {size.name}")
    kernels = sorted(set(base) | set(cand))
    return {
        kernel: cand.get(kernel, 0.0) - base.get(kernel, 0.0)
        for kernel in kernels
    }


def render_comparison(
    baseline: SuiteResult,
    candidate: SuiteResult,
    baseline_label: str = "baseline",
    candidate_label: str = "candidate",
) -> str:
    """Speedup table plus the geometric mean, paper-artifact style."""
    entries = speedups(baseline, candidate)
    if not entries:
        return "no comparable runs"
    rows: List[Tuple[str, str, str, str, str, str]] = []
    for entry in entries:
        verdict = entry.verdict()
        if verdict == VERDICT_SIGNIFICANT:
            verdict = "yes"
        rows.append(
            (
                entry.benchmark,
                entry.size.name,
                f"{entry.baseline_seconds * 1000:.1f} ms",
                f"{entry.candidate_seconds * 1000:.1f} ms",
                f"{entry.speedup:.2f}x",
                verdict,
            )
        )
    table = format_table(
        ("Benchmark", "Size", baseline_label, candidate_label, "Speedup",
         "Significant"),
        rows,
        title=f"Suite comparison: {candidate_label} vs {baseline_label}",
    )
    return (
        table
        + f"\ngeometric mean speedup: {geometric_mean_speedup(entries):.2f}x"
    )


def hotspot_shift_report(
    baseline: SuiteResult,
    candidate: SuiteResult,
    slug: str,
    size: InputSize,
    threshold: float = 1.0,
) -> Optional[str]:
    """Human-readable note of kernels whose share moved > ``threshold``
    points, or ``None`` when the profile is stable."""
    drift = occupancy_drift(baseline, candidate, slug, size)
    moved = {
        kernel: delta
        for kernel, delta in drift.items()
        if abs(delta) > threshold and kernel != NON_KERNEL_WORK
    }
    if not moved:
        return None
    parts = [
        f"{kernel} {delta:+.1f}pp"
        for kernel, delta in sorted(moved.items(), key=lambda kv: -abs(kv[1]))
    ]
    return f"{slug}@{size.name}: " + ", ".join(parts)
