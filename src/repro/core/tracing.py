"""Event-level observability: per-call kernel spans, exporters, manifests.

The paper's entire contribution is *characterization* — per-kernel runtime
shares (Figure 3), input-size scaling (Figure 2), critical-path
parallelism (Table IV).  :class:`~repro.core.profiler.KernelProfiler`
aggregates exclusive seconds per kernel, which is enough for the figures
but throws away the per-call timeline.  This module keeps it:

* :class:`TraceRecorder` — receives one :class:`TraceSpan` per kernel
  *call* (name, start, inclusive and exclusive duration, nesting depth,
  parent span, sequence number) plus a whole-application span per run.
  The profiler emits into it when one is attached; with no recorder the
  kernel hot path takes a single ``is None`` check and zero allocations.
* Opt-in ``track_memory``: :mod:`tracemalloc`-based peak-allocation
  sampling per span (see the caveat on :meth:`TraceRecorder.span_close`).
* Exporters — :func:`chrome_trace_dict` produces Chrome trace-event JSON
  loadable in ``chrome://tracing`` / Perfetto; :func:`events_to_jsonl` /
  :func:`events_from_jsonl` round-trip a structured JSONL event log.
* :func:`run_manifest` — the reproducibility header attached to every
  export: host configuration (the paper's Table III rows), Python/numpy
  versions, CLI arguments and the measurement knobs.

Spans serialize to plain dictionaries, so ``jobs=N`` process-pool workers
can record locally and ship their events back to the parent recorder
(:meth:`TraceRecorder.to_serialized` / :meth:`TraceRecorder.absorb`);
absorbed cells land on separate ``track`` lanes with their own t=0.
"""

from __future__ import annotations

import itertools
import json
import platform
import time
import tracemalloc
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .sysinfo import system_configuration

#: Schema identifier stamped on every manifest this module produces.
MANIFEST_SCHEMA = "sdvbs-repro/manifest/v1"
#: Schema identifier stamped on the JSONL event log header line.
EVENTS_SCHEMA = "sdvbs-repro/trace-events/v1"

#: Span category for one kernel call.
CATEGORY_KERNEL = "kernel"
#: Span category for one whole-application run.
CATEGORY_APP = "app"
#: Span category for one paced stream frame (wraps the app span; the
#: gap between consecutive frame spans is the pacer's idle time).
CATEGORY_FRAME = "frame"
#: Span category for a served job's lifecycle envelope: a root span per
#: job plus ``queued`` (submission -> worker pick-up) and ``running``
#: (pick-up -> completion) children wrapping the app/kernel spans, so a
#: job's trace shows where its wall time went *around* the kernels too.
CATEGORY_LIFECYCLE = "lifecycle"


@dataclass
class TraceSpan:
    """One completed span: a single kernel call or whole-app run.

    ``duration`` is inclusive wall time; ``self_duration`` excludes time
    spent in nested named kernels, so summing ``self_duration`` over a
    kernel's spans reproduces the profiler's exclusive
    ``kernel_seconds``.  ``seq`` numbers spans in *start* order and
    ``parent`` is the enclosing span's ``seq`` (``None`` at top level).
    ``track`` separates lanes when traces from parallel workers are
    merged.  ``attrs`` carries the run context (benchmark, size, variant,
    repeat, phase) and the optional ``memory_peak_bytes`` sample.
    """

    seq: int
    name: str
    category: str
    start: float
    duration: float
    self_duration: float
    depth: int
    parent: Optional[int] = None
    track: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "duration": self.duration,
            "self_duration": self.self_duration,
            "depth": self.depth,
            "parent": self.parent,
            "track": self.track,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TraceSpan":
        return cls(
            seq=int(payload["seq"]),  # type: ignore[arg-type]
            name=str(payload["name"]),
            category=str(payload["category"]),
            start=float(payload["start"]),  # type: ignore[arg-type]
            duration=float(payload["duration"]),  # type: ignore[arg-type]
            self_duration=float(payload["self_duration"]),  # type: ignore[arg-type]
            depth=int(payload["depth"]),  # type: ignore[arg-type]
            parent=None if payload.get("parent") is None
            else int(payload["parent"]),  # type: ignore[arg-type]
            track=int(payload.get("track", 0)),  # type: ignore[arg-type]
            attrs=dict(payload.get("attrs", {})),  # type: ignore[arg-type]
        )


class _OpenSpan:
    """Bookkeeping for a span between ``span_open`` and ``span_close``."""

    __slots__ = ("name", "category", "start_ts", "depth", "parent",
                 "attrs", "child_duration")

    def __init__(self, name: str, category: str, start_ts: float,
                 depth: int, parent: Optional[int],
                 attrs: Dict[str, object]) -> None:
        self.name = name
        self.category = category
        self.start_ts = start_ts
        self.depth = depth
        self.parent = parent
        self.attrs = attrs
        self.child_duration = 0.0


class TraceRecorder:
    """Collects per-call spans emitted by a profiler.

    Timestamps are whatever clock the emitting profiler uses; the first
    timestamp seen becomes the recorder's epoch, so recorded ``start``
    values are relative seconds.  Span sequence numbers are assigned at
    open time, numbering spans in start order (parents before children).

    ``track_memory=True`` turns on :mod:`tracemalloc` (if it is not
    already running) and samples the peak traced allocation per span.
    """

    def __init__(self, track_memory: bool = False) -> None:
        self._spans: List[TraceSpan] = []
        self._open: Dict[int, _OpenSpan] = {}
        self._stack: List[int] = []
        self._seq = itertools.count()
        self._epoch: Optional[float] = None
        self._context: Dict[str, object] = {}
        self.track_memory = bool(track_memory)
        self._started_tracemalloc = False

    # ------------------------------------------------------------------
    # Context and lifecycle

    def set_context(self, **fields: object) -> None:
        """Replace the run context stamped onto subsequently opened spans.

        ``None`` values are dropped, so callers can pass optional fields
        unconditionally.
        """
        self._context = {
            key: value for key, value in fields.items() if value is not None
        }

    def finish(self) -> None:
        """Release resources (stops tracemalloc if this recorder started it)."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False

    def __enter__(self) -> "TraceRecorder":
        """Context-manager entry: returns the recorder itself."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Always release resources — tracemalloc must stop even when the
        traced run raises mid-suite."""
        self.finish()

    # ------------------------------------------------------------------
    # Emission (called by KernelProfiler)

    def span_open(self, name: str, category: str, timestamp: float) -> int:
        """Open a span at ``timestamp``; returns its sequence number."""
        if self._epoch is None:
            self._epoch = timestamp
        seq = next(self._seq)
        parent = self._stack[-1] if self._stack else None
        record = _OpenSpan(
            name=name,
            category=category,
            start_ts=timestamp,
            depth=len(self._stack),
            parent=parent,
            attrs=dict(self._context),
        )
        if self.track_memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            tracemalloc.reset_peak()
        self._open[seq] = record
        self._stack.append(seq)
        return seq

    def span_close(self, seq: int, timestamp: float,
                   self_duration: Optional[float] = None) -> TraceSpan:
        """Close span ``seq`` at ``timestamp`` and return the record.

        When ``self_duration`` is omitted it is derived as the inclusive
        duration minus the inclusive durations of direct children — for
        matching timestamps this is bit-identical to the profiler's
        exclusive attribution.

        Memory caveat: ``memory_peak_bytes`` is the tracemalloc peak
        since the *most recent* span open (``reset_peak`` is per-process,
        not per-span), so for a span with traced children it reflects the
        tail segment after the last child closed, not the whole span.
        """
        if not self._stack or self._stack[-1] != seq:
            raise RuntimeError(
                f"span_close({seq}) does not match the innermost open span"
            )
        self._stack.pop()
        record = self._open.pop(seq)
        duration = timestamp - record.start_ts
        if self_duration is None:
            self_duration = max(0.0, duration - record.child_duration)
        if record.parent is not None and record.parent in self._open:
            self._open[record.parent].child_duration += duration
        attrs = record.attrs
        if self.track_memory and tracemalloc.is_tracing():
            attrs["memory_peak_bytes"] = tracemalloc.get_traced_memory()[1]
            tracemalloc.reset_peak()
        span = TraceSpan(
            seq=seq,
            name=record.name,
            category=record.category,
            start=record.start_ts - (self._epoch or record.start_ts),
            duration=duration,
            self_duration=self_duration,
            depth=record.depth,
            parent=record.parent,
            attrs=attrs,
        )
        self._spans.append(span)
        return span

    def annotate_current(self, **attrs: float) -> None:
        """Accumulate numeric attributes onto the innermost open span.

        Used by the kernel dispatch layer to attach work counts (flops,
        traffic bytes) to whatever profiler span is currently running.
        Values add onto any existing numeric value under the same key, so
        several kernel calls inside one span sum naturally.  A no-op when
        no span is open.
        """
        if not self._stack:
            return
        record = self._open[self._stack[-1]]
        for key, value in attrs.items():
            previous = record.attrs.get(key, 0.0)
            if isinstance(previous, (int, float)):
                record.attrs[key] = float(previous) + float(value)
            else:
                record.attrs[key] = float(value)

    def abandon_open(self, timestamp: float) -> None:
        """Close any still-open spans at ``timestamp``, innermost first.

        Called when a profiler is reset mid-run so the recorder never
        carries dangling open spans; abandoned spans are flagged with
        ``attrs["abandoned"] = True``.
        """
        while self._stack:
            seq = self._stack[-1]
            self._open[seq].attrs["abandoned"] = True
            self.span_close(seq, timestamp)

    # ------------------------------------------------------------------
    # Results

    @property
    def spans(self) -> List[TraceSpan]:
        """Completed spans in start (sequence) order."""
        return sorted(self._spans, key=lambda span: span.seq)

    @property
    def events(self) -> int:
        """Number of completed spans."""
        return len(self._spans)

    def kernel_self_seconds(self) -> Dict[str, float]:
        """Summed exclusive seconds per kernel, from the recorded spans.

        Agrees with :attr:`KernelProfiler.kernel_seconds` for a
        single-profiler trace (same clock, same subtraction).
        """
        totals: Dict[str, float] = {}
        for span in self._spans:
            if span.category != CATEGORY_KERNEL:
                continue
            totals[span.name] = totals.get(span.name, 0.0) + span.self_duration
        return totals

    # ------------------------------------------------------------------
    # Cross-process merging

    def to_serialized(self) -> List[Dict[str, object]]:
        """Spans as plain dictionaries (picklable / JSON-ready)."""
        return [span.to_dict() for span in self.spans]

    def absorb(self, serialized: Sequence[Dict[str, object]],
               track: Optional[int] = None) -> None:
        """Merge spans recorded elsewhere (e.g. a pool worker).

        Sequence numbers and parent links are re-based onto this
        recorder's counter so merged spans never collide; ``track``
        (default: the next free lane) separates the absorbed cell in
        timeline views, since each worker has its own t=0.
        """
        if not serialized:
            return
        if track is None:
            track = max((span.track for span in self._spans), default=-1) + 1
        remap: Dict[int, int] = {}
        for payload in serialized:
            span = TraceSpan.from_dict(payload)
            new_seq = next(self._seq)
            remap[span.seq] = new_seq
            span.seq = new_seq
            if span.parent is not None:
                span.parent = remap.get(span.parent)
            span.track = track
            self._spans.append(span)


class NullRecorder(TraceRecorder):
    """Recorder that drops everything; for callers wanting a valid object.

    The profiler's hot path already guards with ``is None``, so attaching
    nothing is the zero-cost default — this class exists so code that
    unconditionally calls recorder methods can run without emitting.
    """

    def set_context(self, **fields: object) -> None:  # noqa: D102
        pass

    def span_open(self, name: str, category: str, timestamp: float) -> int:  # noqa: D102
        return -1

    def span_close(self, seq: int, timestamp: float,
                   self_duration: Optional[float] = None) -> TraceSpan:  # noqa: D102
        return TraceSpan(seq=-1, name="", category="", start=0.0,
                         duration=0.0, self_duration=0.0, depth=0)

    def annotate_current(self, **attrs: float) -> None:  # noqa: D102
        pass

    def absorb(self, serialized: Sequence[Dict[str, object]],
               track: Optional[int] = None) -> None:  # noqa: D102
        pass


def ensure_recorder(recorder: Optional[TraceRecorder]) -> TraceRecorder:
    """Return ``recorder`` or a fresh no-op :class:`NullRecorder`."""
    if recorder is None:
        return NullRecorder()
    return recorder


# ----------------------------------------------------------------------
# Run manifests


def run_manifest(argv: Optional[Sequence[str]] = None,
                 warmup: int = 0, repeats: int = 1,
                 jobs: int = 1,
                 backend: Optional[str] = None,
                 instrumentation: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
    """The reproducibility header attached to JSON exports and traces.

    Records the Table III host rows (:func:`system_configuration`), the
    software versions that determine numeric behaviour, the CLI arguments
    that produced the run, the measurement knobs, and the kernel
    execution backend (``measurement.backend``: loop-faithful ``ref`` vs
    vectorized ``fast`` — timings from the two are not comparable, so
    every export says which one it measured).  ``backend=None`` records
    the process's current selection.

    ``instrumentation`` optionally attaches the measured per-probe
    profiler overhead (the payload of
    :func:`~repro.core.profiler.measure_probe_overhead`) so consumers of
    the export can judge how much of each kernel's time is probe cost.
    The key is additive — the manifest schema stays v1 and older readers
    ignore it.
    """
    from .backend import active_backend

    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    manifest: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": system_configuration(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "argv": list(argv) if argv is not None else [],
        "measurement": {"warmup": warmup, "repeats": repeats, "jobs": jobs,
                        "backend": backend or active_backend()},
    }
    if instrumentation is not None:
        manifest["instrumentation"] = dict(instrumentation)
    return manifest


# ----------------------------------------------------------------------
# Exporters


def chrome_trace_dict(spans: Iterable[TraceSpan],
                      manifest: Optional[Dict[str, object]] = None
                      ) -> Dict[str, object]:
    """Chrome trace-event (object-form) payload for ``chrome://tracing``.

    Every span becomes one complete ('X') event with microsecond
    ``ts``/``dur``; exclusive time and the run context ride in ``args``.
    The manifest lands under ``metadata`` (the object form allows extra
    keys; Perfetto shows them in trace info).
    """
    events: List[Dict[str, object]] = []
    for span in sorted(spans, key=lambda s: s.seq):
        args: Dict[str, object] = {
            "seq": span.seq,
            "depth": span.depth,
            "self_us": span.self_duration * 1e6,
        }
        if span.parent is not None:
            args["parent"] = span.parent
        args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": 1,
            "tid": span.track + 1,
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": manifest if manifest is not None else run_manifest(),
    }


def chrome_trace_json(spans: Iterable[TraceSpan],
                      manifest: Optional[Dict[str, object]] = None,
                      indent: int = 2) -> str:
    """Serialize :func:`chrome_trace_dict` to a JSON string."""
    return json.dumps(chrome_trace_dict(spans, manifest), indent=indent,
                      sort_keys=True)


def events_to_jsonl(spans: Iterable[TraceSpan],
                    manifest: Optional[Dict[str, object]] = None) -> str:
    """Structured JSONL event log: one manifest header line, one span per line."""
    header = {
        "type": "manifest",
        "schema": EVENTS_SCHEMA,
        "manifest": manifest if manifest is not None else run_manifest(),
    }
    lines = [json.dumps(header, sort_keys=True)]
    for span in sorted(spans, key=lambda s: s.seq):
        lines.append(json.dumps({"type": "span", **span.to_dict()},
                                sort_keys=True))
    return "\n".join(lines) + "\n"


def events_from_jsonl(text: str, strict: bool = False
                      ) -> Tuple[Optional[Dict[str, object]], List[TraceSpan]]:
    """Parse an :func:`events_to_jsonl` log back into (manifest, spans).

    Event logs are append-streamed, so a crashed or still-writing run
    leaves a truncated final line; by default malformed lines (bad JSON,
    unknown type, missing span fields) are skipped with a single
    :class:`RuntimeWarning` reporting how many were dropped.  Pass
    ``strict=True`` to raise on the first bad line instead.
    """
    manifest: Optional[Dict[str, object]] = None
    spans: List[TraceSpan] = []
    skipped = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            kind = payload.get("type")
            if kind == "manifest":
                manifest = payload.get("manifest")
            elif kind == "span":
                spans.append(TraceSpan.from_dict(payload))
            else:
                raise ValueError(f"unknown event type {kind!r}")
        except (ValueError, KeyError, TypeError) as exc:
            if strict:
                raise ValueError(
                    f"malformed event log line {lineno}: {exc}"
                ) from exc
            skipped += 1
    if skipped:
        warnings.warn(
            f"skipped {skipped} malformed event log line(s)",
            RuntimeWarning,
            stacklevel=2,
        )
    spans.sort(key=lambda s: s.seq)
    return manifest, spans
