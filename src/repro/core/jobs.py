"""Job layer of the benchmark service: specs, admission control, workers.

``sdvbs serve`` (:mod:`repro.core.serve`) turns the local CLI stack into
a long-running system; this module is the part that survives heavy
traffic.  It validates job *specs* (JSON descriptions of run / trace /
flame / report / regress work) against the same registry, size and
backend machinery the CLI uses, admits them through production-style
backpressure, and executes them on a bounded worker pool:

* **Priority queue** — each submission carries ``high`` / ``normal`` /
  ``low`` priority; workers always pick the highest-priority oldest
  queued job.
* **Watermark admission control** — the queue has a hard cap
  (``max_queue``) plus a low/high watermark pair with hysteresis: once
  the queued depth reaches the high watermark the server turns
  *saturated* and admits only high-priority work until the depth drains
  to the low watermark.  Rejections are typed
  (:class:`QueueFullError`) and carry a ``retry_after_s`` hint derived
  from the observed mean job duration.
* **Eviction** — at the hard cap a high-priority submission may evict
  the youngest queued job of strictly lower priority (state
  ``evicted``) instead of being turned away; nothing ever evicts a
  running job.
* **Per-client rate limiting** — a token bucket per client id
  (:class:`TokenBucket`); violations are typed
  (:class:`RateLimitedError`) with the exact ``retry_after_s`` until
  the next token.
* **Result cache** — every spec is canonicalized (defaults filled,
  names normalized) and hashed with the shard planner's
  plan-digest discipline (:func:`spec_digest`).  Submitting a spec
  whose digest already maps to a completed job returns that job
  immediately — no re-execution — and bumps the ``cache_hits``
  counter surfaced by ``server.info``.

Completed run jobs land in the persistent history store
(:mod:`repro.core.history`) with a canonical ``["serve", "job",
<digest>]`` manifest argv, so re-recording an identical spec is
idempotent, and the store's manifest-hash lookup reports how many runs
of this exact configuration history already holds.  Artifacts (suite
exports, chrome traces, flamegraphs, HTML reports, regression verdicts)
are written under ``work_dir/<job id>/`` and streamed back over HTTP by
job id.

Since PR 9 the manager is also the service's telemetry source
(SERVING.md "Telemetry" section): every admission decision, cache hit,
eviction, worker pick-up and state transition emits one structured
event into an :class:`~repro.core.telemetry.EventLog`; per-job-type
queue-wait and execution-latency land in labeled
:class:`~repro.core.metrics.LogHistogram` instruments; jobs-by-state
and worker-busy gauges track the pool live; and each executed job
carries a lifecycle :class:`~repro.core.tracing.TraceRecorder` whose
``job``/``queued``/``running`` envelope spans wrap the kernel spans in
the job's ``trace.json`` artifact.

Everything here is framework-free stdlib threading; the HTTP/JSON-RPC
envelope lives in :mod:`repro.core.serve` and the operator's manual in
``SERVING.md``.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .sampling import SampledProfile, StackSampler, to_collapsed
from .telemetry import EventLog, metric_key, parse_metric_key

#: Version stamp for job payloads and the ``job`` export block.
JOBS_SCHEMA = "sdvbs-repro/serve-job/v1"

#: The job types the service accepts (each has an executor below).
JOB_TYPES = ("run", "trace", "flame", "report", "regress")

#: Valid priorities, best first; rank = index (lower runs earlier).
PRIORITIES = ("high", "normal", "low")

# Job lifecycle states (see the diagram in SERVING.md):
#   queued -> running -> done | failed
#   queued -> cancelled (job.cancel) | evicted (admission control)
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
EVICTED = "evicted"
#: States a job can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED, EVICTED)


# ----------------------------------------------------------------------
# Typed admission errors (mapped onto JSON-RPC error codes in serve.py)


class JobError(Exception):
    """Base of every typed job-layer error; carries structured data."""

    def __init__(self, message: str, **data: object) -> None:
        super().__init__(message)
        self.message = message
        self.data: Dict[str, object] = dict(data)


class SpecError(JobError):
    """The job spec failed validation (unknown type/slug/size/...)."""


class QueueFullError(JobError):
    """Admission refused: hard queue cap or watermark backpressure."""


class RateLimitedError(JobError):
    """Admission refused: the client exceeded its token bucket."""


class UnknownJobError(JobError):
    """No job with the requested id."""


class JobNotDoneError(JobError):
    """The job exists but has not produced a result (yet, or ever)."""


class NotCancellableError(JobError):
    """Only queued jobs can be cancelled."""


# ----------------------------------------------------------------------
# Spec validation and canonical digests


def _require(condition: bool, message: str, **data: object) -> None:
    if not condition:
        raise SpecError(message, **data)


def _norm_size(name: object) -> str:
    from .types import InputSize

    _require(isinstance(name, str), f"size must be a string, got {name!r}")
    try:
        return InputSize[str(name).upper()].name
    except KeyError:
        choices = ", ".join(s.name for s in InputSize)
        raise SpecError(
            f"unknown size {name!r} (choose from {choices})",
            field="sizes") from None


def _norm_slug(slug: object) -> str:
    from .registry import get_benchmark

    _require(isinstance(slug, str),
             f"benchmark must be a string, got {slug!r}")
    try:
        return get_benchmark(str(slug)).slug
    except KeyError as exc:
        raise SpecError(str(exc.args[0]), field="benchmarks") from None


def _norm_backend(backend: object) -> Optional[str]:
    if backend is None:
        return None
    from .backend import BACKENDS

    if backend not in BACKENDS:
        known = ", ".join(sorted(BACKENDS))
        raise SpecError(f"unknown backend {backend!r}; known: {known}",
                        field="backend")
    return str(backend)


def _norm_int(spec: Dict[str, object], key: str, default: int,
              minimum: int, maximum: Optional[int] = None) -> int:
    value = spec.get(key, default)
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"{key} must be an integer, got {value!r}", field=key)
    value = int(value)  # type: ignore[arg-type]
    _require(value >= minimum, f"{key} must be >= {minimum}, got {value}",
             field=key)
    if maximum is not None:
        _require(value <= maximum,
                 f"{key} must be <= {maximum}, got {value}", field=key)
    return value


def _norm_float(spec: Dict[str, object], key: str, default: float,
                minimum: float, exclusive: bool = False) -> float:
    value = spec.get(key, default)
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"{key} must be a number, got {value!r}", field=key)
    value = float(value)  # type: ignore[arg-type]
    if exclusive:
        _require(value > minimum, f"{key} must be > {minimum}, got {value}",
                 field=key)
    else:
        _require(value >= minimum,
                 f"{key} must be >= {minimum}, got {value}", field=key)
    return value


def validate_spec(spec: object) -> Dict[str, object]:
    """Validate and canonicalize one job spec.

    Returns a *normalized* spec: defaults filled in, benchmark slugs and
    size names resolved through the registry, keys in a fixed set.  Two
    submissions meaning the same work therefore normalize to the same
    dictionary — and the same :func:`spec_digest` — whether or not they
    spelled the defaults out, which is what makes the result cache
    effective.  Raises :class:`SpecError` (JSON-RPC "invalid params")
    on anything unknown; validation must reject bad work at admission,
    never halfway into execution.
    """
    _require(isinstance(spec, dict), "job spec must be an object")
    spec = dict(spec)  # type: ignore[arg-type]
    job_type = spec.get("type")
    _require(job_type in JOB_TYPES,
             f"unknown job type {job_type!r} (choose from "
             f"{', '.join(JOB_TYPES)})", field="type")

    normalized: Dict[str, object] = {"type": job_type}
    if job_type == "run":
        from .runner import ALL_SIZES

        benchmarks = spec.get("benchmarks") or []
        _require(isinstance(benchmarks, list),
                 "benchmarks must be a list of slugs", field="benchmarks")
        normalized["benchmarks"] = [_norm_slug(s) for s in benchmarks]
        sizes = spec.get("sizes") or [s.name for s in ALL_SIZES]
        _require(isinstance(sizes, list) and sizes,
                 "sizes must be a non-empty list", field="sizes")
        normalized["sizes"] = [_norm_size(s) for s in sizes]
        normalized["variants"] = _norm_int(spec, "variants", 1, 1, 5)
        normalized["warmup"] = _norm_int(spec, "warmup", 0, 0)
        normalized["repeats"] = _norm_int(spec, "repeats", 1, 1)
        normalized["backend"] = _norm_backend(spec.get("backend"))
    elif job_type in ("trace", "flame"):
        _require("benchmark" in spec, "trace/flame specs need a benchmark",
                 field="benchmark")
        normalized["benchmark"] = _norm_slug(spec["benchmark"])
        normalized["size"] = _norm_size(
            spec.get("size", "SQCIF" if job_type == "trace" else "CIF"))
        normalized["variant"] = _norm_int(spec, "variant", 0, 0, 4)
        normalized["backend"] = _norm_backend(spec.get("backend"))
        if job_type == "flame":
            normalized["repeats"] = _norm_int(spec, "repeats", 10, 1)
            normalized["warmup"] = _norm_int(spec, "warmup", 2, 0)
            normalized["interval"] = _norm_float(spec, "interval", 0.0002,
                                                 0.0, exclusive=True)
            fmt = spec.get("format", "collapsed")
            _require(fmt in ("collapsed", "speedscope"),
                     f"unknown flame format {fmt!r}", field="format")
            normalized["format"] = fmt
    elif job_type == "report":
        from_job = spec.get("from_job")
        if from_job is not None:
            _require(isinstance(from_job, str),
                     "from_job must be a job id string", field="from_job")
            normalized["from_job"] = from_job
        else:
            from .runner import ALL_SIZES

            benchmarks = spec.get("benchmarks") or []
            _require(isinstance(benchmarks, list),
                     "benchmarks must be a list of slugs",
                     field="benchmarks")
            normalized["benchmarks"] = [_norm_slug(s) for s in benchmarks]
            sizes = spec.get("sizes") or [s.name for s in ALL_SIZES]
            _require(isinstance(sizes, list) and sizes,
                     "sizes must be a non-empty list", field="sizes")
            normalized["sizes"] = [_norm_size(s) for s in sizes]
            normalized["warmup"] = _norm_int(spec, "warmup", 0, 0)
            normalized["repeats"] = _norm_int(spec, "repeats", 1, 1)
            normalized["backend"] = _norm_backend(spec.get("backend"))
    else:  # regress
        for key in ("candidate_job", "baseline_job"):
            value = spec.get(key)
            _require(isinstance(value, str) and bool(value),
                     f"regress specs need a {key} job id", field=key)
            normalized[key] = value
        normalized["sigmas"] = _norm_float(spec, "sigmas", 2.0, 0.0)
        normalized["min_slowdown"] = _norm_float(spec, "min_slowdown",
                                                 0.10, 0.0)
    return normalized


def spec_digest(spec: Dict[str, object]) -> str:
    """Canonical hash of a normalized spec — the result-cache key.

    Same construction as the shard planner's plan digest
    (:func:`repro.core.shard.plan_digest`): sha256 over the sorted-key
    canonical JSON, truncated to 16 hex characters.  Validation has
    already filled every default, so logically identical submissions
    collide here by design.
    """
    canonical = json.dumps(spec, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Rate limiting


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``take`` consumes one token if available and otherwise reports how
    long until the next one accrues — the ``retry_after_s`` hint of a
    rate-limit rejection.  The clock is injectable for deterministic
    tests; callers provide locking (the manager's lock covers it).
    """

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def take(self) -> Tuple[bool, float]:
        """Consume one token; ``(False, seconds_until_next)`` if empty."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate


# ----------------------------------------------------------------------
# Continuous worker profiling


def measure_sampler_overhead(interval: float,
                             work_seconds: float = 0.05,
                             passes: int = 3,
                             clock: Callable[[], float] = time.perf_counter
                             ) -> Dict[str, float]:
    """Calibrate what the continuous sampler costs the sampled thread.

    The serve-side analogue of the probe-overhead audit
    (:func:`~repro.core.profiler.measure_probe_overhead`): run the same
    fixed-duration arithmetic busy loop bare and under a live
    :class:`StackSampler` at ``interval``, and charge the iteration-rate
    drop to the sampler.  The best (lowest) of ``passes`` is kept —
    scheduler noise only ever inflates the estimate.  The result rides
    served manifests as the ``continuous_profiler`` block and
    ``server.info`` / ``/metrics`` as ``profile.overhead_pct``, so the
    "always-on profiling is nearly free" claim is a recorded number,
    not folklore.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")

    def burn(duration: float) -> int:
        count = 0
        value = 1.0
        deadline = clock() + duration
        while clock() < deadline:
            value = value * 1.0000001 + 1.0
            count += 1
        return count

    best: Optional[float] = None
    for _ in range(passes):
        bare = burn(work_seconds)
        sampler = StackSampler(interval=interval)
        sampler.start()
        try:
            sampled = burn(work_seconds)
        finally:
            sampler.stop()
        pct = (max(0.0, 100.0 * (bare - sampled) / bare)
               if bare > 0 else 0.0)
        if best is None or pct < best:
            best = pct
    return {
        "interval_seconds": float(interval),
        "work_seconds": float(work_seconds),
        "passes": float(passes),
        "overhead_pct": float(best or 0.0),
    }


class ContinuousProfiler:
    """Opt-in low-duty-cycle profiling of every executed job.

    When the manager is built with a ``profile_interval``, each worker
    wraps its executor call in a :class:`StackSampler` targeting the
    worker thread, and the resulting per-job profile merges into a
    per-job-type aggregate here (:meth:`SampledProfile.merge` is
    order-independent, so concurrent workers' contributions commute).
    The interval defaults well above the CLI flame default — continuous
    profiling trades resolution for negligible overhead, and the
    aggregate recovers resolution by accumulating across jobs.

    Aggregates are served three ways: ``server.profile`` (RPC
    snapshot), ``/artifacts/profile/<type>.collapsed`` (flamegraph
    text, rendered on demand), and the ``sdvbs top`` profiler line.
    """

    #: 5 ms between samples: ~0.2% measured overhead on the workloads,
    #: versus 0.2 ms for the dedicated ``flame`` job type.
    DEFAULT_INTERVAL = 0.005

    def __init__(self, interval: float = DEFAULT_INTERVAL,
                 measure_overhead: bool = True) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self._lock = threading.Lock()
        self._aggregates: Dict[str, SampledProfile] = {}
        self.jobs_sampled = 0
        #: One-time overhead audit (tests disable it for determinism).
        self.overhead: Dict[str, float] = (
            measure_sampler_overhead(self.interval) if measure_overhead
            else {"interval_seconds": self.interval, "work_seconds": 0.0,
                  "passes": 0.0, "overhead_pct": 0.0})

    def sampler_for(self, job: "Job") -> StackSampler:
        """A sampler for one job, mapped to its benchmarks' kernels.

        Must be called on the worker thread that will execute the job
        (the sampler targets its constructing thread).  Multi-benchmark
        jobs get the union of the per-app frame maps — attribution for
        a frame two apps label differently follows the later app, an
        acceptable approximation for an operational aggregate.
        """
        from .sampling import kernel_frame_map

        spec = job.spec
        slugs: List[str] = []
        single = spec.get("benchmark")
        if isinstance(single, str):
            slugs = [single]
        else:
            many = spec.get("benchmarks")
            if isinstance(many, list):
                slugs = [str(s) for s in many]
        frame_map: Dict[Tuple[str, str], Optional[str]] = {}
        for slug in slugs:
            try:
                frame_map.update(kernel_frame_map(slug))
            except Exception:  # noqa: BLE001 — profiling is best-effort
                continue
        return StackSampler(interval=self.interval, frame_map=frame_map)

    def record(self, job_type: str, profile: SampledProfile) -> None:
        """Merge one finished job's profile into its type's aggregate."""
        with self._lock:
            aggregate = self._aggregates.get(job_type)
            if aggregate is None:
                aggregate = self._aggregates[job_type] = SampledProfile(
                    interval=self.interval, observable=())
            aggregate.merge(profile)
            self.jobs_sampled += 1

    @property
    def samples(self) -> int:
        with self._lock:
            return sum(p.samples for p in self._aggregates.values())

    def job_types(self) -> List[str]:
        with self._lock:
            return sorted(self._aggregates)

    def collapsed(self, job_type: str) -> Optional[str]:
        """The aggregate flamegraph for one job type (None if unseen)."""
        with self._lock:
            aggregate = self._aggregates.get(job_type)
            if aggregate is None:
                return None
            return to_collapsed(aggregate)

    def info(self) -> Dict[str, object]:
        """The ``server.info`` / ``sdvbs top`` summary block."""
        with self._lock:
            samples = sum(p.samples for p in self._aggregates.values())
            job_types = sorted(self._aggregates)
            jobs_sampled = self.jobs_sampled
        return {
            "enabled": True,
            "interval_seconds": self.interval,
            "jobs_sampled": jobs_sampled,
            "samples": samples,
            "overhead_pct": self.overhead.get("overhead_pct", 0.0),
            "job_types": job_types,
        }

    def audit_block(self) -> Dict[str, float]:
        """The manifest's ``continuous_profiler`` audit block."""
        return dict(self.overhead)

    def snapshot(self, job_type: Optional[str] = None,
                 top: int = 10) -> Dict[str, object]:
        """The ``server.profile`` RPC body: per-type aggregate summaries."""
        with self._lock:
            selected = ([job_type] if job_type is not None
                        else sorted(self._aggregates))
            types: Dict[str, object] = {}
            for name in selected:
                aggregate = self._aggregates.get(name)
                if aggregate is None:
                    continue
                ordered = sorted(aggregate.folded.items(),
                                 key=lambda kv: (-kv[1], kv[0]))
                types[name] = {
                    "samples": aggregate.samples,
                    "sampled_seconds": round(aggregate.sampled_seconds, 6),
                    "shares": {k: round(v, 2)
                               for k, v in aggregate.shares().items()},
                    "top_stacks": [
                        [";".join(stack), round(seconds, 6)]
                        for stack, seconds in ordered[:max(1, top)]
                    ],
                    "artifact": f"/artifacts/profile/{name}.collapsed",
                }
            jobs_sampled = self.jobs_sampled
        return {
            "enabled": True,
            "interval_seconds": self.interval,
            "jobs_sampled": jobs_sampled,
            "overhead": dict(self.overhead),
            "types": types,
        }


# ----------------------------------------------------------------------
# Jobs


@dataclass
class Job:
    """One submitted unit of work and everything recorded about it."""

    id: str
    spec: Dict[str, object]
    digest: str
    priority: str
    client: str
    seq: int
    state: str = QUEUED
    submitted: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    error: Optional[str] = None
    result: Optional[Dict[str, object]] = None
    artifacts: Dict[str, str] = field(default_factory=dict)
    #: Request id of the submitting HTTP request, propagated into the
    #: structured log and the lifecycle trace (None for direct submits).
    request_id: Optional[str] = None
    #: Submission stamp on the manager's monotonic clock (queue-wait
    #: arithmetic; ``submitted`` stays wall-clock for humans).
    submitted_mono: float = 0.0
    #: Seconds spent queued before a worker picked the job up.
    queue_wait: Optional[float] = None
    #: Seconds the executor ran (set at completion or failure).
    exec_seconds: Optional[float] = None
    #: Lifecycle trace recorder, attached by the worker at pick-up;
    #: executors thread it into run_benchmark/run_suite so kernel spans
    #: nest inside the job's ``running`` envelope span.
    trace: Optional[object] = None

    @property
    def rank(self) -> int:
        return PRIORITIES.index(self.priority)

    def to_dict(self) -> Dict[str, object]:
        """The ``job.status`` payload: everything but the result body."""
        return {
            "id": self.id,
            "type": self.spec.get("type"),
            "state": self.state,
            "priority": self.priority,
            "client": self.client,
            "digest": self.digest,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "artifacts": sorted(self.artifacts),
            "request_id": self.request_id,
            "queue_wait_s": (None if self.queue_wait is None
                             else round(self.queue_wait, 6)),
            "exec_s": (None if self.exec_seconds is None
                       else round(self.exec_seconds, 6)),
        }


def job_block(job: Job) -> Dict[str, object]:
    """The schema-v8 ``job`` provenance block a served export carries.

    Identifies which service job produced the export — id, canonical
    spec digest, client and priority — without contaminating the
    *manifest* (whose hash must depend only on the measurement
    configuration, so identical specs stay idempotent in history).
    """
    return {
        "schema": JOBS_SCHEMA,
        "id": job.id,
        "type": job.spec.get("type"),
        "digest": job.digest,
        "client": job.client,
        "priority": job.priority,
        "submitted": job.submitted,
    }


#: Executes one job: (job, manager) -> (result payload, artifacts).
#: Injectable so tests can block workers or count executions.
JobExecutor = Callable[["Job", "JobManager"],
                       Tuple[Dict[str, object], Dict[str, str]]]


class JobManager:
    """Bounded worker pool with admission control and a result cache.

    The synchronization discipline: one lock (condition variable)
    guards the queue, the job table, the cache, the saturation latch
    and the rate-limit buckets; job *execution* happens outside the
    lock on worker threads.  Counters and gauges live in a thread-safe
    :class:`~repro.core.metrics.MetricsRegistry` so ``server.info``
    snapshots are consistent without touching the queue lock.
    """

    def __init__(self,
                 workers: int = 2,
                 max_queue: int = 16,
                 low_watermark: Optional[int] = None,
                 high_watermark: Optional[int] = None,
                 rate_limit: float = 0.0,
                 rate_burst: Optional[int] = None,
                 history_db: Optional[str] = None,
                 work_dir: Optional[str] = None,
                 executor: Optional[JobExecutor] = None,
                 events: Optional[EventLog] = None,
                 profile_interval: float = 0.0,
                 profiler: Optional[ContinuousProfiler] = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.workers = int(workers)
        self.max_queue = int(max_queue)
        self.high_watermark = (int(high_watermark)
                               if high_watermark is not None else max_queue)
        self.low_watermark = (int(low_watermark)
                              if low_watermark is not None
                              else max(1, max_queue // 2))
        if not 1 <= self.low_watermark <= self.high_watermark <= max_queue:
            raise ValueError(
                f"need 1 <= low ({self.low_watermark}) <= high "
                f"({self.high_watermark}) <= max_queue ({max_queue})")
        self.rate_limit = float(rate_limit)
        self.rate_burst = (int(rate_burst) if rate_burst is not None
                           else max(1, int(self.rate_limit)))
        self.history_db = history_db
        if work_dir is None:
            import tempfile

            work_dir = tempfile.mkdtemp(prefix="sdvbs-serve-")
        self.work_dir = work_dir
        self.executor: JobExecutor = executor or execute_job
        # One shared registry across workers and handlers — threadsafe
        # by construction, never opt-out (a dropped counter increment
        # under concurrency is an observability bug).
        self.metrics = MetricsRegistry(threadsafe=True)
        self.events = events if events is not None else EventLog()
        self._clock = clock
        self._cond = threading.Condition()
        self._jobs: Dict[str, Job] = {}
        self._heap: List[Tuple[int, int, str]] = []
        self._queued = 0
        self._running = 0
        self._saturated = False
        self._seq = 0
        self._cache: Dict[str, str] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._threads: List[threading.Thread] = []
        self._stopping = False
        self._mean_seconds = 0.0
        self._completed = 0
        self._started_at: Optional[float] = None
        self._state_tally: Dict[str, int] = {
            state: 0 for state in (QUEUED, RUNNING) + TERMINAL_STATES}
        # Pre-seed the catalog so every series exists from the first
        # scrape (a counter that has never incremented still exposes 0).
        for name in ("jobs.submitted", "jobs.accepted", "jobs.completed",
                     "jobs.failed", "jobs.cancelled", "jobs.evicted",
                     "rejected.queue_full", "rejected.backpressure",
                     "rejected.rate_limited", "cache.hits", "cache.misses",
                     "events.sink_disabled"):
            self.metrics.inc(name, 0.0)
        self.metrics.set_gauge("workers.total", self.workers)
        self.metrics.set_gauge("workers.busy", 0)
        self.metrics.set_gauge("server.saturated", 0)
        self._refresh_state_gauges()
        # A sink disabled before the manager existed still counts; from
        # here on the hook keeps /metrics in lockstep with the log.
        if self.events.sink_disabled:
            self.metrics.inc("events.sink_disabled",
                             self.events.sink_disabled)
        self.events.on_sink_disabled = self._sink_disabled
        self.profiler = profiler
        if self.profiler is None and profile_interval > 0:
            self.profiler = ContinuousProfiler(interval=profile_interval)
        if self.profiler is not None:
            self.metrics.inc("profile.jobs_sampled", 0.0)
            self.metrics.inc("profile.samples", 0.0)
            self.metrics.set_gauge(
                "profile.overhead_pct",
                self.profiler.overhead.get("overhead_pct", 0.0))

    def _sink_disabled(self, error: str) -> None:
        """EventLog hook: mirror sink loss into the scraped registry."""
        self.metrics.inc("events.sink_disabled")

    # ------------------------------------------------------------------
    # Telemetry plumbing

    def _refresh_state_gauges(self) -> None:
        """Publish the per-state tally as labeled gauges (cheap, O(states))."""
        for state, count in self._state_tally.items():
            self.metrics.set_gauge(metric_key("jobs.state", state=state),
                                   count)

    def _transition(self, job: Job, new_state: str) -> None:
        """Move ``job`` between lifecycle states; caller holds the lock.

        Keeps the incremental per-state tally (and its gauges) exact
        without an O(jobs) rescan, and emits one structured state-
        transition event — the job-lifecycle audit trail an operator
        greps when a job goes missing.
        """
        old_state = job.state
        job.state = new_state
        self._state_tally[old_state] -= 1
        self._state_tally[new_state] = self._state_tally.get(new_state,
                                                             0) + 1
        self._refresh_state_gauges()
        self.events.emit("job.state", id=job.id,
                         type=str(job.spec.get("type")),
                         state=new_state, previous=old_state,
                         request_id=job.request_id)

    def uptime(self) -> float:
        """Seconds since :meth:`start` (0.0 before the pool exists)."""
        if self._started_at is None:
            return 0.0
        return max(0.0, self._clock() - self._started_at)

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        with self._cond:
            if self._threads:
                return
            self._stopping = False
            if self._started_at is None:
                self._started_at = self._clock()
            for index in range(self.workers):
                thread = threading.Thread(target=self._worker,
                                          name=f"sdvbs-worker-{index}",
                                          daemon=True)
                thread.start()
                self._threads.append(thread)

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the pool: running jobs finish, queued jobs stay queued.

        Queued-but-never-run jobs are *not* silently discarded — they
        remain visible as ``queued`` in ``job.list`` so an operator can
        see what a shutdown abandoned (SERVING.md documents this).
        """
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    # ------------------------------------------------------------------
    # Admission

    def _retry_after(self) -> float:
        """Backoff hint: roughly one queue-drain's worth of seconds."""
        per_job = self._mean_seconds if self._completed else 1.0
        estimate = max(1.0, self._queued * max(per_job, 0.05) / self.workers)
        return round(min(estimate, 600.0), 2)

    def submit(self, spec: object, client: str = "anonymous",
               priority: str = "normal",
               request_id: Optional[str] = None) -> Tuple[Job, bool]:
        """Validate, admit and enqueue one job.

        Returns ``(job, cached)``; ``cached`` means the spec's digest
        matched a completed job and that job is returned instead of
        re-executing.  Raises a typed :class:`JobError` subclass when
        validation, rate limiting or admission control refuses.

        Admission order is deliberate: validate first (a malformed spec
        is the submitter's bug regardless of load), then rate-limit
        (cheap, per client), then serve from cache (a hit costs the
        server nothing, so it must not be charged against the queue),
        then apply queue bounds.
        """
        if priority not in PRIORITIES:
            raise SpecError(
                f"unknown priority {priority!r} (choose from "
                f"{', '.join(PRIORITIES)})", field="priority")
        normalized = validate_spec(spec)
        digest = spec_digest(normalized)
        job_type = str(normalized.get("type"))
        with self._cond:
            self.metrics.inc("jobs.submitted")
            if self.rate_limit > 0:
                bucket = self._buckets.get(client)
                if bucket is None:
                    bucket = self._buckets[client] = TokenBucket(
                        self.rate_limit, self.rate_burst, clock=self._clock)
                allowed, wait = bucket.take()
                if not allowed:
                    self.metrics.inc("rejected.rate_limited")
                    self.events.emit("job.rejected", level="warning",
                                     reason="rate-limited", client=client,
                                     type=job_type, digest=digest,
                                     retry_after_s=round(wait, 3),
                                     request_id=request_id)
                    raise RateLimitedError(
                        f"client {client!r} exceeded {self.rate_limit:g} "
                        "submissions/s",
                        retry_after_s=round(wait, 3),
                        limit_per_s=self.rate_limit,
                        burst=self.rate_burst,
                    )
            cached_id = self._cache.get(digest)
            if cached_id is not None:
                cached = self._jobs.get(cached_id)
                if cached is not None and cached.state == DONE:
                    self.metrics.inc("cache.hits")
                    self.events.emit("job.cache_hit", id=cached.id,
                                     client=client, type=job_type,
                                     digest=digest, request_id=request_id)
                    return cached, True
            job = self._admit(normalized, digest, client, priority,
                              request_id)
            self.metrics.inc("cache.misses")
            self._cond.notify()
            return job, False

    def _admit(self, spec: Dict[str, object], digest: str, client: str,
               priority: str, request_id: Optional[str] = None) -> Job:
        """Queue-bound admission; caller holds the lock."""
        rank = PRIORITIES.index(priority)
        job_type = str(spec.get("type"))
        # Watermark hysteresis: saturate at high, drain to low.
        if self._queued >= self.high_watermark:
            if not self._saturated:
                self.events.emit("server.saturated", level="warning",
                                 queue_depth=self._queued,
                                 high_watermark=self.high_watermark)
            self._saturated = True
            self.metrics.set_gauge("server.saturated", 1)
        if self._saturated and rank > 0 and self._queued > self.low_watermark:
            self.metrics.inc("rejected.backpressure")
            self.events.emit("job.rejected", level="warning",
                             reason="backpressure", client=client,
                             type=job_type, digest=digest,
                             queue_depth=self._queued,
                             request_id=request_id)
            raise QueueFullError(
                f"queue saturated ({self._queued} queued >= high watermark "
                f"{self.high_watermark}); only high-priority jobs are "
                "admitted until the backlog drains to "
                f"{self.low_watermark}",
                reason="backpressure",
                retry_after_s=self._retry_after(),
                queue_depth=self._queued,
                high_watermark=self.high_watermark,
                low_watermark=self.low_watermark,
            )
        if self._queued >= self.max_queue:
            evicted = self._evict_for(rank) if rank == 0 else None
            if evicted is None:
                self.metrics.inc("rejected.queue_full")
                self.events.emit("job.rejected", level="warning",
                                 reason="queue-full", client=client,
                                 type=job_type, digest=digest,
                                 queue_depth=self._queued,
                                 request_id=request_id)
                raise QueueFullError(
                    f"queue full ({self._queued}/{self.max_queue} jobs "
                    "queued)",
                    reason="queue-full",
                    retry_after_s=self._retry_after(),
                    queue_depth=self._queued,
                    max_queue=self.max_queue,
                )
        self._seq += 1
        job = Job(
            id=f"job-{self._seq:06d}",
            spec=spec,
            digest=digest,
            priority=priority,
            client=client,
            seq=self._seq,
            submitted=time.time(),
            request_id=request_id,
            submitted_mono=self._clock(),
        )
        self._jobs[job.id] = job
        heapq.heappush(self._heap, (job.rank, job.seq, job.id))
        self._queued += 1
        self._state_tally[QUEUED] += 1
        self._refresh_state_gauges()
        self.metrics.inc("jobs.accepted")
        self.metrics.set_gauge("queue.depth", self._queued)
        self.events.emit("job.submit", id=job.id, type=job_type,
                         client=client, priority=priority, digest=digest,
                         queue_depth=self._queued, request_id=request_id)
        return job

    def _evict_for(self, rank: int) -> Optional[Job]:
        """Evict the youngest queued job of strictly lower priority."""
        victim: Optional[Job] = None
        for job in self._jobs.values():
            if job.state != QUEUED or job.rank <= rank:
                continue
            if victim is None or (job.rank, job.seq) > (victim.rank,
                                                        victim.seq):
                victim = job
        if victim is None:
            return None
        self._transition(victim, EVICTED)
        victim.finished = time.time()
        victim.error = ("evicted under queue pressure by a high-priority "
                        "submission")
        self._queued -= 1
        self.metrics.inc("jobs.evicted")
        self.metrics.set_gauge("queue.depth", self._queued)
        self.events.emit("job.evicted", level="warning", id=victim.id,
                         type=str(victim.spec.get("type")),
                         priority=victim.priority,
                         request_id=victim.request_id)
        return victim

    # ------------------------------------------------------------------
    # Queries

    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no job with id {job_id!r}",
                                  job_id=job_id)
        return job

    def status(self, job_id: str) -> Dict[str, object]:
        with self._cond:
            return self._get(job_id).to_dict()

    def result(self, job_id: str) -> Dict[str, object]:
        """The completed job's payload (typed error otherwise)."""
        with self._cond:
            job = self._get(job_id)
            if job.state == FAILED:
                raise JobNotDoneError(
                    f"job {job_id} failed: {job.error}",
                    state=job.state, job_id=job_id)
            if job.state != DONE:
                raise JobNotDoneError(
                    f"job {job_id} is {job.state}, not done",
                    state=job.state, job_id=job_id)
            return {
                "job": job.to_dict(),
                "result": dict(job.result or {}),
                "artifacts": {
                    name: f"/artifacts/{job.id}/{name}"
                    for name in sorted(job.artifacts)
                },
            }

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Cancel a *queued* job (running/terminal jobs are typed errors)."""
        with self._cond:
            job = self._get(job_id)
            if job.state != QUEUED:
                raise NotCancellableError(
                    f"job {job_id} is {job.state}; only queued jobs can "
                    "be cancelled", state=job.state, job_id=job_id)
            self._transition(job, CANCELLED)
            job.finished = time.time()
            self._queued -= 1
            self._maybe_drain()
            self.metrics.inc("jobs.cancelled")
            self.metrics.set_gauge("queue.depth", self._queued)
            self.events.emit("job.cancelled", id=job.id,
                             type=str(job.spec.get("type")),
                             request_id=job.request_id)
            return job.to_dict()

    def list_jobs(self, state: Optional[str] = None,
                  client: Optional[str] = None,
                  limit: int = 50) -> List[Dict[str, object]]:
        """Newest-first job summaries, optionally filtered."""
        with self._cond:
            out = []
            for job in reversed(list(self._jobs.values())):
                if state is not None and job.state != state:
                    continue
                if client is not None and job.client != client:
                    continue
                out.append(job.to_dict())
                if len(out) >= max(1, limit):
                    break
            return out

    def artifact_path(self, job_id: str, name: str) -> str:
        """Filesystem path of one artifact (typed errors otherwise)."""
        with self._cond:
            job = self._get(job_id)
            path = job.artifacts.get(name)
            if path is None:
                known = ", ".join(sorted(job.artifacts)) or "none"
                raise UnknownJobError(
                    f"job {job_id} has no artifact {name!r} "
                    f"(available: {known})", job_id=job_id, artifact=name)
            return path

    def counts(self) -> Dict[str, int]:
        with self._cond:
            return dict(self._state_tally)

    def latency_summaries(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Per-job-type queue-wait and exec-latency histogram summaries.

        ``{"run": {"queue_wait": {...count/sum/p50/p95/p99...},
        "exec": {...}}, ...}`` — the numbers ``sdvbs top`` renders and
        the exact aggregates the Prometheus ``_count``/``_sum`` series
        must agree with (both read the same bounded histograms).
        """
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for key, histogram in self.metrics.histogram_snapshot().items():
            base, labels = parse_metric_key(key)
            if base == "job.queue_wait_seconds":
                slot = "queue_wait"
            elif base == "job.exec_seconds":
                slot = "exec"
            else:
                continue
            summary = histogram.summary()
            out.setdefault(labels.get("type", "all"), {})[slot] = {
                stat: summary[stat]
                for stat in ("count", "sum", "mean", "min", "max",
                             "p50", "p95", "p99")
            }
        return out

    def health(self) -> Dict[str, object]:
        """A cheap readiness snapshot for ``/healthz`` probes.

        Deliberately lighter than :meth:`info` — no latency summaries,
        no cache scan — because external probes poll this every few
        seconds.
        """
        with self._cond:
            return {
                "queue_depth": self._queued,
                "saturated": self._saturated,
                "workers": {"total": self.workers, "busy": self._running},
                "uptime_s": round(self.uptime(), 3),
            }

    def info(self) -> Dict[str, object]:
        """The ``server.info`` body: config, counters, gauges, cache."""
        with self._cond:
            cache_entries = sum(
                1 for digest, job_id in self._cache.items()
                if self._jobs.get(job_id) is not None
                and self._jobs[job_id].state == DONE)
            saturated = self._saturated
            queued, running = self._queued, self._running
            mean_seconds = self._mean_seconds
            jobs = dict(self._state_tally)
        counters = self.metrics.counters
        return {
            "config": {
                "workers": self.workers,
                "max_queue": self.max_queue,
                "watermarks": [self.low_watermark, self.high_watermark],
                "rate_limit_per_s": self.rate_limit,
                "rate_burst": self.rate_burst,
                "history_db": self.history_db,
                "work_dir": self.work_dir,
                "profile_interval": (self.profiler.interval
                                     if self.profiler is not None else 0.0),
            },
            "counters": counters,
            "gauges": {
                "queue_depth": queued,
                "running": running,
                "saturated": int(saturated),
                "mean_job_seconds": round(mean_seconds, 6),
            },
            "workers": {"total": self.workers, "busy": running},
            "uptime_s": round(self.uptime(), 3),
            "cache": {
                "entries": cache_entries,
                "hits": int(counters.get("cache.hits", 0)),
                "misses": int(counters.get("cache.misses", 0)),
            },
            "jobs": jobs,
            "latency": self.latency_summaries(),
            "events": {
                "emitted": self.events.emitted,
                "suppressed": self.events.suppressed,
                "sink_disabled": self.events.sink_disabled,
                "sink_error": self.events.sink_error,
            },
            "profile": (self.profiler.info() if self.profiler is not None
                        else {"enabled": False}),
        }

    # ------------------------------------------------------------------
    # Worker pool

    def _next_job(self) -> Optional[Job]:
        """Pop the best queued job; caller holds the lock."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs.get(job_id)
            if job is not None and job.state == QUEUED:
                return job
        return None

    def _maybe_drain(self) -> None:
        """Release the saturation latch once the backlog reaches low."""
        if self._saturated and self._queued <= self.low_watermark:
            self._saturated = False
            self.metrics.set_gauge("server.saturated", 0)
            self.events.emit("server.drained", queue_depth=self._queued,
                             low_watermark=self.low_watermark)

    def _job_trace(self, job: Job, pickup: float) -> Tuple[object, int, int]:
        """Open the lifecycle trace envelope for one picked-up job.

        The recorder's clock is the manager's (``time.perf_counter`` by
        default — the same clock the kernel profiler stamps spans with,
        so envelope and kernel spans nest consistently).  Layout::

            job:<id>            submission ........... completion
            ├─ queued           submission ... worker pick-up
            └─ running          pick-up ............. completion
               └─ app/kernels   (emitted by the executor, if any)
        """
        from .tracing import CATEGORY_LIFECYCLE, TraceRecorder

        recorder = TraceRecorder()
        recorder.set_context(job=job.id, type=str(job.spec.get("type")),
                             priority=job.priority,
                             request_id=job.request_id)
        root = recorder.span_open(f"job:{job.id}", CATEGORY_LIFECYCLE,
                                  job.submitted_mono)
        queued_seq = recorder.span_open("queued", CATEGORY_LIFECYCLE,
                                        job.submitted_mono)
        recorder.span_close(queued_seq, pickup)
        running_seq = recorder.span_open("running", CATEGORY_LIFECYCLE,
                                         pickup)
        job.trace = recorder
        return recorder, running_seq, root

    def _write_trace_artifact(self, job: Job, recorder: object
                              ) -> Optional[Tuple[str, str]]:
        """Render the lifecycle trace as the job's ``trace.json`` artifact."""
        from .tracing import chrome_trace_json

        spec = job.spec
        manifest = _serve_manifest(
            job, warmup=int(spec.get("warmup", 0) or 0),  # type: ignore[arg-type]
            repeats=int(spec.get("repeats", 1) or 1),  # type: ignore[arg-type]
            backend=spec.get("backend"))  # type: ignore[arg-type]
        try:
            return _write_artifact(
                self, job, "trace.json",
                chrome_trace_json(recorder.spans,  # type: ignore[attr-defined]
                                  manifest))
        except OSError as exc:  # pragma: no cover - disk full etc.
            self.events.emit("job.trace_artifact_failed", level="error",
                             id=job.id, error=str(exc))
            return None

    def _record_profile(self, job: Job, job_type: str,
                        sampler: Optional[StackSampler]) -> None:
        """Stop a job's continuous sampler and fold in its profile."""
        if sampler is None or self.profiler is None:
            return
        try:
            profile = sampler.stop()
        except Exception:  # noqa: BLE001 — profiling is best-effort
            return
        self.profiler.record(job_type, profile)
        self.metrics.inc("profile.jobs_sampled")
        self.metrics.inc("profile.samples", profile.samples)
        self.events.emit("job.profiled", level="debug", id=job.id,
                         type=job_type, samples=profile.samples,
                         request_id=job.request_id)

    def profile_snapshot(self, job_type: Optional[str] = None,
                         top: int = 10) -> Dict[str, object]:
        """The ``server.profile`` RPC body (disabled stub when off)."""
        if self.profiler is None:
            return {"enabled": False}
        return self.profiler.snapshot(job_type=job_type, top=top)

    def _worker(self) -> None:
        worker_name = threading.current_thread().name
        while True:
            with self._cond:
                job = self._next_job()
                while job is None:
                    if self._stopping:
                        return
                    self._cond.wait(timeout=0.2)
                    job = self._next_job()
                pickup = self._clock()
                self._transition(job, RUNNING)
                job.started = time.time()
                job.queue_wait = max(0.0, pickup - job.submitted_mono)
                self._queued -= 1
                self._running += 1
                self._maybe_drain()
                self.metrics.set_gauge("queue.depth", self._queued)
                self.metrics.set_gauge("workers.busy", self._running)
                job_type = str(job.spec.get("type"))
            self.metrics.observe(
                metric_key("job.queue_wait_seconds", type=job_type),
                job.queue_wait)
            self.events.emit("job.pickup", id=job.id, type=job_type,
                             worker=worker_name,
                             queue_wait_s=round(job.queue_wait, 6),
                             request_id=job.request_id)
            recorder, running_seq, root_seq = self._job_trace(job, pickup)
            sampler: Optional[StackSampler] = None
            if self.profiler is not None:
                try:
                    # Constructed on this worker thread, so the sampler
                    # targets exactly the thread about to execute.
                    sampler = self.profiler.sampler_for(job)
                    sampler.start()
                except Exception:  # noqa: BLE001 — profiling is best-effort
                    sampler = None
            started = self._clock()
            try:
                payload, artifacts = self.executor(job, self)
            except Exception as exc:  # noqa: BLE001 — jobs fail, not the pool
                elapsed = self._clock() - started
                self._record_profile(job, job_type, sampler)
                # Close any spans the executor left open (innermost
                # first), then the envelope itself.
                recorder.abandon_open(self._clock())
                self.metrics.observe(
                    metric_key("job.exec_seconds", type=job_type), elapsed)
                self.events.emit("job.failed", level="error", id=job.id,
                                 type=job_type, worker=worker_name,
                                 error=f"{type(exc).__name__}: {exc}",
                                 exec_s=round(elapsed, 6),
                                 request_id=job.request_id)
                with self._cond:
                    self._transition(job, FAILED)
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.finished = time.time()
                    job.exec_seconds = elapsed
                    self._running -= 1
                    self.metrics.inc("jobs.failed")
                    self.metrics.set_gauge("workers.busy", self._running)
                continue
            elapsed = self._clock() - started
            self._record_profile(job, job_type, sampler)
            finish = self._clock()
            recorder.span_close(running_seq, finish)
            recorder.span_close(root_seq, finish)
            artifacts = dict(artifacts)
            trace_artifact = self._write_trace_artifact(job, recorder)
            if trace_artifact is not None:
                artifacts.setdefault(*trace_artifact)
            self.metrics.observe(
                metric_key("job.exec_seconds", type=job_type), elapsed)
            self.events.emit("job.done", id=job.id, type=job_type,
                             worker=worker_name, exec_s=round(elapsed, 6),
                             artifacts=sorted(artifacts),
                             request_id=job.request_id)
            with self._cond:
                job.result = payload
                job.artifacts = artifacts
                self._transition(job, DONE)
                job.finished = time.time()
                job.exec_seconds = elapsed
                self._running -= 1
                self._completed += 1
                # EMA over completed durations feeds the retry-after hint.
                alpha = 0.3
                self._mean_seconds = (elapsed if self._completed == 1 else
                                      alpha * elapsed
                                      + (1 - alpha) * self._mean_seconds)
                self._cache[job.digest] = job.id
                self.metrics.inc("jobs.completed")
                self.metrics.observe("job.seconds", elapsed)
                self.metrics.set_gauge("workers.busy", self._running)


# ----------------------------------------------------------------------
# Executors: one per job type, all running on worker threads


def _job_dir(manager: JobManager, job: Job) -> str:
    path = os.path.join(manager.work_dir, job.id)
    os.makedirs(path, exist_ok=True)
    return path


def _write_artifact(manager: JobManager, job: Job, name: str,
                    payload: str) -> Tuple[str, str]:
    path = os.path.join(_job_dir(manager, job), name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return name, path


def _serve_manifest(job: Job, warmup: int = 0, repeats: int = 1,
                    backend: Optional[str] = None) -> Dict[str, object]:
    """A canonical manifest for served runs: argv is the spec digest.

    Two submissions of the same spec produce the same argv — and, on one
    host, the same :func:`~repro.core.history.manifest_hash` — so
    recording a re-served job into history is idempotent, exactly like
    re-merging the same shard plan.
    """
    from .tracing import run_manifest

    return run_manifest(argv=["serve", "job", job.digest], warmup=warmup,
                        repeats=repeats, backend=backend)


def _execute_run(job: Job, manager: JobManager
                 ) -> Tuple[Dict[str, object], Dict[str, str]]:
    from .export import result_to_json
    from .runner import run_suite
    from .types import InputSize

    spec = job.spec
    result = run_suite(
        spec["benchmarks"] or None,  # type: ignore[index]
        sizes=[InputSize[name] for name in spec["sizes"]],  # type: ignore[index]
        variants=list(range(int(spec["variants"]))),  # type: ignore[arg-type]
        warmup=int(spec["warmup"]),  # type: ignore[arg-type]
        repeats=int(spec["repeats"]),  # type: ignore[arg-type]
        recorder=job.trace,  # type: ignore[arg-type]
        backend=spec["backend"],  # type: ignore[arg-type]
    )
    result.manifest = _serve_manifest(
        job, warmup=int(spec["warmup"]),  # type: ignore[arg-type]
        repeats=int(spec["repeats"]),  # type: ignore[arg-type]
        backend=spec["backend"])  # type: ignore[arg-type]
    if manager.profiler is not None:
        result.manifest["continuous_profiler"] = manager.profiler.audit_block()
    result.job = job_block(job)
    artifacts = dict([_write_artifact(manager, job, "export.json",
                                      result_to_json(result))])
    payload: Dict[str, object] = {
        "type": "run",
        "cells": len(result.runs),
        "summary": [
            {
                "benchmark": run.benchmark,
                "size": run.size.name,
                "variant": run.variant,
                "median_ms": round(run.total_seconds * 1000.0, 3),
            }
            for run in result.runs
        ],
    }
    if manager.history_db:
        from .history import manifest_hash, open_history

        digest = manifest_hash(result.manifest)
        with open_history(manager.history_db) as store:
            added = store.record(result)
            recorded_before = len(store.entries(manifest_hash=digest))
        manager.metrics.inc("history.recorded_cells", len(added))
        payload["history"] = {
            "db": manager.history_db,
            "recorded": len(added),
            "manifest_hash": digest,
            # How many cells history holds for this exact measurement
            # configuration — >len(added) means an identical spec was
            # recorded before (by an earlier job or an earlier server).
            "cells_for_manifest": recorded_before,
        }
    return payload, artifacts


def _execute_trace(job: Job, manager: JobManager
                   ) -> Tuple[Dict[str, object], Dict[str, str]]:
    from .registry import get_benchmark
    from .runner import run_benchmark
    from .types import InputSize

    spec = job.spec
    # The worker already opened the lifecycle envelope on ``job.trace``;
    # recording into it nests the kernel spans under ``running``, and the
    # worker writes the combined ``trace.json`` artifact at completion.
    recorder = job.trace
    run = run_benchmark(
        get_benchmark(str(spec["benchmark"])),
        InputSize[str(spec["size"])],
        int(spec["variant"]),  # type: ignore[arg-type]
        recorder=recorder,  # type: ignore[arg-type]
        backend=spec["backend"],  # type: ignore[arg-type]
    )
    return {
        "type": "trace",
        "spans": recorder.events,  # type: ignore[attr-defined]
        "traced_ms": round(run.total_seconds * 1000.0, 3),
    }, {}


def _execute_flame(job: Job, manager: JobManager
                   ) -> Tuple[Dict[str, object], Dict[str, str]]:
    from .registry import get_benchmark
    from .runner import run_benchmark
    from .sampling import (
        StackSampler,
        kernel_frame_map,
        speedscope_json,
        to_collapsed,
    )
    from .types import InputSize

    spec = job.spec
    slug = str(spec["benchmark"])
    sampler = StackSampler(interval=float(spec["interval"]),  # type: ignore[arg-type]
                           frame_map=kernel_frame_map(slug))
    run_benchmark(
        get_benchmark(slug),
        InputSize[str(spec["size"])],
        int(spec["variant"]),  # type: ignore[arg-type]
        warmup=int(spec["warmup"]),  # type: ignore[arg-type]
        repeats=int(spec["repeats"]),  # type: ignore[arg-type]
        backend=spec["backend"],  # type: ignore[arg-type]
        sampler=sampler,
    )
    profile = sampler.profile
    if spec["format"] == "speedscope":
        name = "flame.speedscope.json"
        payload_text = speedscope_json(
            profile, name=f"{slug}@{spec['size']}")
    else:
        name = "flame.collapsed"
        payload_text = to_collapsed(profile)
    artifacts = dict([_write_artifact(manager, job, name, payload_text)])
    shares = sorted(profile.shares().items(), key=lambda kv: -kv[1])
    return {
        "type": "flame",
        "samples": profile.samples,
        "sampled_seconds": round(profile.sampled_seconds, 6),
        "top_shares": [
            {"kernel": kernel, "share_pct": round(share, 2)}
            for kernel, share in shares[:5]
        ],
    }, artifacts


def _load_job_export(manager: JobManager, job_id: str):
    """A completed run job's suite export (SpecError if unusable)."""
    from .export import result_from_json

    try:
        path = manager.artifact_path(job_id, "export.json")
    except UnknownJobError as exc:
        raise SpecError(
            f"job {job_id!r} has no suite export to build on "
            "(is it a completed run job?)", job_id=job_id) from exc
    with open(path, "r", encoding="utf-8") as handle:
        return result_from_json(handle.read())


def _execute_report(job: Job, manager: JobManager
                    ) -> Tuple[Dict[str, object], Dict[str, str]]:
    from .htmlreport import render_html_report
    from .runner import run_suite
    from .types import InputSize

    spec = job.spec
    if "from_job" in spec:
        result = _load_job_export(manager, str(spec["from_job"]))
    else:
        result = run_suite(
            spec["benchmarks"] or None,  # type: ignore[index]
            sizes=[InputSize[name] for name in spec["sizes"]],  # type: ignore[index]
            warmup=int(spec["warmup"]),  # type: ignore[arg-type]
            repeats=int(spec["repeats"]),  # type: ignore[arg-type]
            backend=spec["backend"],  # type: ignore[arg-type]
        )
        result.manifest = _serve_manifest(
            job, warmup=int(spec["warmup"]),  # type: ignore[arg-type]
            repeats=int(spec["repeats"]),  # type: ignore[arg-type]
            backend=spec["backend"])  # type: ignore[arg-type]
        if manager.profiler is not None:
            result.manifest["continuous_profiler"] = (
                manager.profiler.audit_block())
        result.job = job_block(job)
    artifacts = dict([_write_artifact(manager, job, "report.html",
                                      render_html_report(result))])
    return {"type": "report", "cells": len(result.runs)}, artifacts


def _execute_regress(job: Job, manager: JobManager
                     ) -> Tuple[Dict[str, object], Dict[str, str]]:
    import json as json_module

    from .profstore import pair_lookup_from_results
    from .regress import (
        attribute_regressions,
        cells_from_result,
        detect_regressions,
        latency_cells_from_result,
        report_to_dict,
    )

    spec = job.spec
    candidate = _load_job_export(manager, str(spec["candidate_job"]))
    baseline = _load_job_export(manager, str(spec["baseline_job"]))
    candidate_cells = cells_from_result(candidate)
    candidate_cells.update(latency_cells_from_result(candidate))
    baseline_cells = cells_from_result(baseline)
    baseline_cells.update(latency_cells_from_result(baseline))
    report = detect_regressions(
        baseline_cells,
        candidate_cells,
        sigmas=float(spec["sigmas"]),  # type: ignore[arg-type]
        min_slowdown=float(spec["min_slowdown"]),  # type: ignore[arg-type]
        baseline_label=str(spec["baseline_job"]),
        candidate_label=str(spec["candidate_job"]),
    )
    # Best-effort attribution: run exports only carry sampling payloads
    # when produced by sampled tooling, so most serve regressions have
    # nothing to join — the verdict is simply unattributed then.
    attribute_regressions(
        report, pair_lookup_from_results(baseline, candidate))
    verdict = report_to_dict(report)
    artifacts = dict([_write_artifact(
        manager, job, "verdict.json",
        json_module.dumps(verdict, indent=2, sort_keys=True))])
    return {
        "type": "regress",
        "verdict": verdict,
        "exit_code": report.exit_code,
    }, artifacts


_EXECUTORS: Dict[str, JobExecutor] = {
    "run": _execute_run,
    "trace": _execute_trace,
    "flame": _execute_flame,
    "report": _execute_report,
    "regress": _execute_regress,
}


def execute_job(job: Job, manager: JobManager
                ) -> Tuple[Dict[str, object], Dict[str, str]]:
    """Dispatch one job to its type's executor (the default executor)."""
    return _EXECUTORS[str(job.spec["type"])](job, manager)
