"""Text renderers regenerating the paper's tables and figures.

Each ``render_*`` function returns a plain-text block whose rows/series
match what the paper reports:

* :func:`render_table1` / :func:`render_table2` — classification metadata.
* :func:`render_table3` — profiling-host configuration.
* :func:`render_figure2` — relative execution time vs relative input size.
* :func:`render_figure3` — per-kernel occupancy bars per input size.
* :func:`render_table4` — work/span parallelism per kernel.

Trace drilldowns (event-level observability, not in the paper):

* :func:`render_top_spans` — the N slowest individual kernel invocations
  recorded in a trace.
* :func:`render_kernel_drilldown` — per-kernel calls / total / mean /
  max, computed from recorded spans rather than aggregate profiles.
* :func:`render_cross_check` — instrumented vs statistically sampled
  per-kernel shares with the agreement gate's verdicts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .metrics import work_model_table
from .registry import Benchmark, all_benchmarks, table4_benchmarks
from .runner import ALL_SIZES, scaling_series
from .sampling import CrossCheckResult
from .sysinfo import system_configuration
from .tracing import CATEGORY_KERNEL, TraceSpan
from .types import (
    NON_KERNEL_WORK,
    InputSize,
    ParallelismEstimate,
    SuiteResult,
)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]],
                 title: Optional[str] = None) -> str:
    """Render an ASCII table with column widths fit to content."""
    materialized = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in materialized:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1() -> str:
    """Table I: benchmark classification by concentration area."""
    rows = [(b.name, str(b.area)) for b in all_benchmarks()]
    return format_table(
        ("Benchmark", "Concentration Area"),
        rows,
        title="Table I. Benchmark classification based on concentration area",
    )


def render_table2() -> str:
    """Table II: description / characteristic / application domain."""
    rows = [
        (b.name, b.description, str(b.characteristic), b.application_domain)
        for b in all_benchmarks()
    ]
    return format_table(
        ("Benchmark", "Description", "Characteristic", "Application Domain"),
        rows,
        title="Table II. Brief description of SD-VBS benchmarks",
    )


def render_table3() -> str:
    """Table III: configuration of the profiling system (this host)."""
    config = system_configuration()
    return format_table(
        ("Feature", "Description"),
        config.items(),
        title="Table III. Configuration of profiling system",
    )


def render_figure2(result: SuiteResult,
                   slugs: Optional[Sequence[str]] = None,
                   show_noise: bool = False) -> str:
    """Figure 2: relative execution time at relative sizes 1x / 2x / 4x.

    Series are built from medians (robust to one slow run).  With
    ``show_noise=True`` every cell carries a ``±`` half-width derived from
    the recorded repeat stddev, normalized like the cell itself.
    """
    if slugs is None:
        slugs = [b.slug for b in all_benchmarks() if b.in_figure2]
    headers = ["Benchmark"] + [f"{s.relative}x ({s.name})" for s in ALL_SIZES]
    rows = []
    for slug in slugs:
        series = scaling_series(result, slug)
        by_size = {p.relative_size: p.relative_time for p in series}
        base = None
        if series:
            base_relative = min(p.relative_size for p in series)
            for size in ALL_SIZES:
                if size.relative == base_relative:
                    base = result.median_total(slug, size)
        cells = []
        for size in ALL_SIZES:
            if size.relative not in by_size:
                cells.append("-")
                continue
            text = f"{by_size[size.relative]:.2f}x"
            if show_noise and base:
                stddev = result.total_stddev(slug, size) or 0.0
                text += f" ±{stddev / base:.2f}"
            cells.append(text)
        rows.append([slug] + cells)
    return format_table(
        headers, rows,
        title="Figure 2. Execution time versus input size (normalized to SQCIF)",
    )


def _bar(share: float, scale: float = 0.5) -> str:
    return "#" * max(0, int(round(share * scale)))


def render_figure3(result: SuiteResult,
                   benchmark: Optional[Benchmark] = None) -> str:
    """Figure 3: per-kernel % occupancy at each input size.

    With ``benchmark=None`` renders all applications present in ``result``.
    """
    if benchmark is not None:
        targets: List[Benchmark] = [benchmark]
    else:
        by_slug = {b.slug: b for b in all_benchmarks()}
        targets = [by_slug[slug] for slug in result.benchmarks() if slug in by_slug]
    blocks: List[str] = []
    for bench in targets:
        lines = [f"Figure 3 [{bench.name}] kernel occupancy (% of runtime)"]
        kernel_order = bench.kernel_names() + [NON_KERNEL_WORK]
        for size in ALL_SIZES:
            occupancy = result.mean_occupancy(bench.slug, size)
            if not occupancy:
                continue
            lines.append(f"  input {size.relative} ({size.name}):")
            for kernel in kernel_order:
                share = occupancy.get(kernel)
                if share is None:
                    continue
                lines.append(
                    f"    {kernel:<18} {share:6.1f}% {_bar(share)}"
                )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_table4(
    estimates: Optional[Mapping[str, List[ParallelismEstimate]]] = None,
    size: InputSize = InputSize.SQCIF,
) -> str:
    """Table IV: per-kernel parallelism from critical-path analysis.

    ``estimates`` maps benchmark slug -> rows; when omitted, models are
    evaluated fresh at ``size`` (the paper uses the smallest input size).
    The ``Work (ops)`` column is the critical-path model's total
    operation count — the numerator of ``parallelism = work / span``.
    """
    if estimates is None:
        estimates = {
            b.slug: b.parallelism(size)
            for b in table4_benchmarks()
            if b.parallelism is not None
        }
    rows = []
    for slug, rows_for_bench in estimates.items():
        for est in rows_for_bench:
            rows.append(
                (
                    slug,
                    est.kernel,
                    _format_count(est.work),
                    _format_parallelism(est.parallelism),
                    str(est.parallelism_class),
                )
            )
    return format_table(
        ("Benchmark", "Kernel", "Work (ops)", "Parallelism", "Type"),
        rows,
        title="Table IV. Parallelism across benchmarks and kernels "
        "(critical-path analysis, smallest input size)",
    )


def render_work_models(size: InputSize = InputSize.SQCIF) -> str:
    """Analytic work accounting for every registered kernel at ``size``.

    Rows come from the kernel registry's work models evaluated on the
    deterministic equivalence cases — flop count, compulsory memory
    traffic, and their ratio (arithmetic intensity), the roofline-model
    x-axis.  Kernels without a work model are omitted.
    """
    rows = []
    for name, estimate in work_model_table(size):
        rows.append(
            (
                name,
                _format_count(estimate.flops),
                _format_count(estimate.traffic_bytes),
                f"{estimate.arithmetic_intensity:.3f}",
            )
        )
    return format_table(
        ("Kernel", "FLOPs", "Bytes", "FLOP/byte"),
        rows,
        title=f"Kernel work models (analytic, one call at {size.name})",
    )


def _format_parallelism(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}x"
    if value >= 10:
        return f"{value:.0f}x"
    return f"{value:.1f}x"


def _format_count(value: float) -> str:
    """Human-scaled operation/byte count: 24.6k, 1.2M, 3.4G."""
    value = float(value)
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return f"{value:.0f}"


def _span_context(span: TraceSpan) -> str:
    """Compact run context for one span: ``benchmark@SIZE v0 r1``."""
    attrs = span.attrs
    parts = []
    if "benchmark" in attrs:
        label = str(attrs["benchmark"])
        if "size" in attrs:
            label += f"@{attrs['size']}"
        parts.append(label)
    if "variant" in attrs:
        parts.append(f"v{attrs['variant']}")
    if "repeat" in attrs:
        parts.append(f"r{attrs['repeat']}")
    if attrs.get("phase") == "warmup":
        parts.append("(warmup)")
    return " ".join(parts) if parts else "-"


def render_top_spans(spans: Iterable[TraceSpan], limit: int = 10) -> str:
    """The ``limit`` slowest individual kernel invocations in a trace.

    Sorted by inclusive duration; the ``Self`` column excludes time spent
    in nested named kernels.  Memory peaks appear when the trace was
    recorded with ``track_memory``.
    """
    kernel_spans = [s for s in spans if s.category == CATEGORY_KERNEL]
    ranked = sorted(kernel_spans, key=lambda s: s.duration,
                    reverse=True)[:max(0, limit)]
    any_memory = any("memory_peak_bytes" in s.attrs for s in ranked)
    headers = ["#", "Kernel", "Run", "Start", "Duration", "Self", "Depth"]
    if any_memory:
        headers.append("Peak mem")
    rows = []
    for rank, span in enumerate(ranked, start=1):
        row = [
            str(rank),
            span.name,
            _span_context(span),
            f"{span.start * 1000:.2f} ms",
            f"{span.duration * 1000:.3f} ms",
            f"{span.self_duration * 1000:.3f} ms",
            str(span.depth),
        ]
        if any_memory:
            peak = span.attrs.get("memory_peak_bytes")
            row.append(f"{int(peak) / 1024:.0f} KiB" if peak is not None
                       else "-")
        rows.append(row)
    return format_table(
        headers, rows,
        title=f"Top {len(ranked)} slowest kernel invocations",
    )


def render_kernel_drilldown(spans: Iterable[TraceSpan]) -> str:
    """Per-kernel call counts and durations computed from recorded spans.

    ``Total self`` sums exclusive time (matches the profiler's
    ``kernel_seconds``); ``Mean``/``Max`` are per-invocation inclusive
    durations, the call-granular view the aggregate profile cannot give.
    """
    per_kernel: Dict[str, List[TraceSpan]] = {}
    for span in spans:
        if span.category == CATEGORY_KERNEL:
            per_kernel.setdefault(span.name, []).append(span)
    rows = []
    order = sorted(
        per_kernel.items(),
        key=lambda item: sum(s.self_duration for s in item[1]),
        reverse=True,
    )
    for name, group in order:
        total_self = sum(s.self_duration for s in group)
        durations = [s.duration for s in group]
        rows.append(
            (
                name,
                str(len(group)),
                f"{total_self * 1000:.3f} ms",
                f"{sum(durations) / len(durations) * 1000:.3f} ms",
                f"{max(durations) * 1000:.3f} ms",
            )
        )
    return format_table(
        ("Kernel", "Calls", "Total self", "Mean call", "Max call"),
        rows,
        title="Per-kernel invocation drilldown",
    )


def render_cross_check(result: CrossCheckResult,
                       title: Optional[str] = None) -> str:
    """Instrumented-vs-sampled agreement table (``sdvbs xcheck``).

    One row per instrumented kernel plus the ``NonKernelWork`` residual;
    the verdict column states whether the row passes the tolerance gate,
    diverges, is below the gated share, or cannot be sampled at all.
    """
    failures = set(id(row) for row in result.failures())
    gated = set(id(row) for row in result.gated_rows())
    rows = []
    for row in result.rows:
        if row.sampled is None:
            sampled, delta, verdict = "-", "-", "unobservable"
        else:
            sampled = f"{row.sampled:.1f}"
            delta = f"{row.delta:+.1f}"
            if id(row) in failures:
                verdict = "DIVERGES"
            elif id(row) in gated:
                verdict = "agree"
            else:
                verdict = "minor"
        rows.append((row.kernel, f"{row.instrumented:.1f}", sampled,
                     delta, verdict))
    if title is None:
        title = (f"Instrumented vs sampled shares "
                 f"({result.samples} samples, "
                 f"gate ±{result.tolerance:g} points at "
                 f">={result.min_share:g}% share)")
    return format_table(
        ("Kernel", "Instrumented %", "Sampled %", "Delta", "Verdict"),
        rows,
        title=title,
    )


def render_suite_summary(result: SuiteResult) -> str:
    """Wall-time summary of every run in ``result``.

    Runs measured with repeats show the median with a ``±`` stddev.
    """
    rows = []
    for run in result.runs:
        wall = f"{run.total_seconds * 1000:.1f} ms"
        if run.stats is not None and run.stats.repeats > 1:
            wall += f" ±{run.stats.total.stddev * 1000:.1f}"
        rows.append(
            (
                run.benchmark,
                run.size.name,
                str(run.variant),
                wall,
                f"{100.0 - run.occupancy().get(NON_KERNEL_WORK, 0.0):.0f}%",
            )
        )
    return format_table(
        ("Benchmark", "Size", "Variant", "Wall time", "Kernel coverage"),
        rows,
        title="Suite run summary",
    )
