"""Dual-backend kernel execution: loop-faithful ``ref`` vs vectorized ``fast``.

The paper's claim is structural: SD-VBS kernels are "clean" loop nests
whose regularity exposes enormous parallelism (Table IV).  Validating an
optimized implementation against the literal loop nest is the standard
methodology for vision-kernel speedup studies (Schwambach et al.; Bethel
et al.'s traditional-vs-data-parallel primitive pairs), and this module
is that methodology as infrastructure:

* every hot kernel registers two implementations under one name —

  - ``ref`` — the *loop-faithful reference*: scalar Python loop nests
    mirroring the original C suite's loop structure statement for
    statement.  Slow, obviously-correct, and the ground truth the
    equivalence harness checks against.
  - ``fast`` — the numpy-vectorized production path (the implementation
    the suite actually measures by default).

* the active backend is selected suite-wide — ``run_benchmark(...,
  backend=...)``, ``run_suite(..., backend=...)``, or the CLI's
  ``--backend {ref,fast}`` — and recorded in the run manifest;
* a kernel registered without a ``fast`` implementation transparently
  falls back to ``ref`` under ``backend="fast"``, so partial coverage
  never breaks a run;
* :mod:`repro.core.equivalence` replays every registered kernel on the
  deterministic input generators under both backends and asserts
  tolerance-bounded agreement (``sdvbs verify-backends``).

Registration happens at import of the defining module; call
:func:`load_all_kernels` before enumerating the registry so every
kernel-bearing module has been imported.

See ``KERNELS.md`` for the catalog of registered kernels and the
numerical-divergence policy each tolerance implements.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from . import metrics as _metrics

#: The two execution backends, in documentation order.
BACKENDS = ("ref", "fast")

#: Backend used when none is selected: the vectorized production path.
DEFAULT_BACKEND = "fast"

_registry: Dict[str, "KernelSpec"] = {}
_active: str = DEFAULT_BACKEND


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise ValueError(f"unknown backend {backend!r}; choose from {known}")
    return backend


@dataclass
class KernelSpec:
    """One dual-backend kernel: its implementations plus catalog metadata.

    ``rtol``/``atol`` are the *documented* agreement tolerances between
    the two backends (see KERNELS.md "when may fast diverge"): zero-cost
    dispatch differences need exact agreement, reassociated reductions
    (different summation order) are allowed round-off-sized drift.

    ``work`` is the kernel's analytic *work model* (see
    :mod:`repro.core.metrics`): a callable with the kernel's signature
    returning a :class:`~repro.core.metrics.WorkEstimate` (flop and byte
    counts) from the argument shapes alone.  When a metrics registry is
    active, the dispatcher evaluates it per call.
    """

    name: str                      # registry key, e.g. "disparity.ssd"
    paper_kernel: str              # Table II typography, e.g. "SSD"
    apps: Tuple[str, ...]          # benchmark slugs that execute it
    ref: Callable
    fast: Optional[Callable] = None
    rtol: float = 1e-9
    atol: float = 1e-12
    doc: str = ""
    module: str = field(default="")
    work: Optional[Callable] = None

    def backends(self) -> Tuple[str, ...]:
        """Backends this kernel actually implements."""
        return BACKENDS if self.fast is not None else ("ref",)

    def implementation(self, backend: str) -> Callable:
        """The callable for ``backend``; ``fast`` falls back to ``ref``.

        The fallback is the contract that lets the suite run end-to-end
        under ``--backend fast`` while fast paths are rolled out kernel
        by kernel.
        """
        _check_backend(backend)
        if backend == "fast" and self.fast is not None:
            return self.fast
        return self.ref


def _first_doc_line(fn: Callable) -> str:
    lines = (fn.__doc__ or "").strip().splitlines()
    return lines[0] if lines else ""


def _make_dispatch(spec: "KernelSpec", wrapped: Callable) -> Callable:
    """The public wrapper for one kernel: backend dispatch + work accounting.

    Without an active metrics registry (or without a work model) the
    call costs one module-global read on top of the implementation —
    the measured hot path is unchanged.  With one, the call is timed
    and the work model's flop/byte estimate is recorded under the
    kernel's registry name; an active span annotator (the trace
    recorder) additionally receives the estimate for the innermost
    open span.
    """

    @functools.wraps(wrapped)
    def dispatch(*args, **kwargs):
        impl = spec.implementation(_active)
        registry = _metrics.active_metrics()
        if registry is None or spec.work is None:
            return impl(*args, **kwargs)
        start = time.perf_counter()
        out = impl(*args, **kwargs)
        seconds = time.perf_counter() - start
        estimate = spec.work(*args, **kwargs)
        registry.record_work(spec.name, estimate, seconds)
        annotator = _metrics.active_annotator()
        if annotator is not None:
            annotator.annotate_current(flops=estimate.flops,
                                       traffic_bytes=estimate.traffic_bytes)
        return out

    dispatch.kernel_spec = spec  # type: ignore[attr-defined]
    return dispatch


def register_kernel(
    name: str,
    *,
    paper_kernel: str,
    apps: Sequence[str],
    ref: Callable,
    rtol: float = 1e-9,
    atol: float = 1e-12,
    doc: str = "",
    work: Optional[Callable] = None,
) -> Callable[[Callable], Callable]:
    """Decorator: register the decorated function as the ``fast`` path.

    The decorated (vectorized) function becomes the kernel's ``fast``
    implementation and ``ref`` its loop-faithful reference; the returned
    wrapper dispatches on the suite-wide active backend, so callers keep
    calling the public name unchanged::

        def _ssd_ref(left, right, d): ...        # literal loop nest

        @register_kernel("disparity.ssd", paper_kernel="SSD",
                         apps=("disparity",), ref=_ssd_ref)
        def ssd_map(left, right, d): ...         # vectorized

    Registering the same name twice is an error (kernels are
    module-level singletons).
    """

    def decorate(fast_fn: Callable) -> Callable:
        spec = KernelSpec(
            name=name,
            paper_kernel=paper_kernel,
            apps=tuple(apps),
            ref=ref,
            fast=fast_fn,
            rtol=rtol,
            atol=atol,
            doc=doc or _first_doc_line(fast_fn),
            module=fast_fn.__module__,
            work=work,
        )
        _register(spec)
        return _make_dispatch(spec, fast_fn)

    return decorate


def register_ref_only(
    name: str,
    *,
    paper_kernel: str,
    apps: Sequence[str],
    doc: str = "",
    work: Optional[Callable] = None,
) -> Callable[[Callable], Callable]:
    """Register a kernel that (so far) has only its reference path.

    The returned wrapper dispatches like any other kernel; under
    ``backend="fast"`` it transparently runs ``ref`` (the fallback the
    tests pin down).  Adding a fast path later means switching the
    module to :func:`register_kernel`.
    """

    def decorate(ref_fn: Callable) -> Callable:
        spec = KernelSpec(
            name=name,
            paper_kernel=paper_kernel,
            apps=tuple(apps),
            ref=ref_fn,
            fast=None,
            doc=doc or _first_doc_line(ref_fn),
            module=ref_fn.__module__,
            work=work,
        )
        _register(spec)
        return _make_dispatch(spec, ref_fn)

    return decorate


def _register(spec: KernelSpec) -> None:
    if spec.name in _registry:
        raise ValueError(f"kernel {spec.name!r} already registered")
    _registry[spec.name] = spec


def active_backend() -> str:
    """The currently selected backend (``"fast"`` unless overridden)."""
    return _active


def set_backend(backend: str) -> None:
    """Select the suite-wide backend (validates the name)."""
    global _active
    _active = _check_backend(backend)


@contextmanager
def use_backend(backend: Optional[str]) -> Iterator[str]:
    """Scoped backend selection; restores the previous choice on exit.

    ``None`` is a no-op scope (keeps the current backend), so callers
    can thread an optional ``backend=`` argument straight through.
    """
    previous = _active
    if backend is not None:
        set_backend(backend)
    try:
        yield _active
    finally:
        set_backend(previous)


def get_kernel(name: str) -> KernelSpec:
    """Look up one registered kernel by name."""
    load_all_kernels()
    try:
        return _registry[name]
    except KeyError:
        known = ", ".join(sorted(_registry))
        raise KeyError(f"unknown kernel {name!r}; known: {known}") from None


def registered_kernels() -> List[KernelSpec]:
    """All registered kernels, sorted by name (stable for reports)."""
    load_all_kernels()
    return [_registry[name] for name in sorted(_registry)]


#: Modules whose import registers dual-backend kernels.  Kept explicit —
#: like the benchmark registry — so enumeration does not depend on what
#: happens to have been imported already.
_KERNEL_MODULES = (
    "repro.imgproc.convolution",
    "repro.imgproc.gradient",
    "repro.imgproc.integral",
    "repro.imgproc.interpolate",
    "repro.imgproc.warp",
    "repro.disparity.algorithm",
    "repro.tracking.features",
    "repro.sift.descriptors",
    "repro.stitch.matching",
    "repro.svm.kernels",
)


def load_all_kernels() -> None:
    """Import every kernel-bearing module so the registry is complete."""
    import importlib

    for module_name in _KERNEL_MODULES:
        importlib.import_module(module_name)
