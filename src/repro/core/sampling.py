"""Statistical sampling profiler: the suite's second, independent observer.

The instrumented :class:`~repro.core.profiler.KernelProfiler` is the
paper's Figure-3 measurement method; everything downstream (traces,
metrics, occupancy stacks) inherits whatever bias its probes introduce.
This module adds the standard cross-validation tool: a low-overhead
*statistical* sampler — a background thread walking
``sys._current_frames()`` at a fixed interval, with no ``signal`` or
``sys.setprofile`` machinery — whose per-kernel shares can be diffed
against the instrumented shares (:func:`cross_check`, ``sdvbs xcheck``).

Pieces:

* :class:`StackSampler` — the background sampling thread.  Runs beside
  any benchmark (``run_benchmark(..., sampler=...)``), samples the
  target thread's Python stack every ``interval`` seconds and folds the
  stacks into a :class:`SampledProfile`.  The frames provider and target
  thread are injectable, so tests drive it deterministically without
  threads or wall clocks.
* :func:`kernel_frame_map` — maps code frames back to the *instrumented*
  Figure-3 kernel names: registered dual-backend implementations (both
  ``ref`` and ``fast``) are translated through a per-app label table,
  and each :class:`~repro.core.registry.Benchmark` may declare extra
  ``sampling_frames`` for kernel phases that are inline code rather than
  registered functions.
* Attribution walks each sampled stack leaf→root and charges the sample
  to the first mapped frame — the sampled analogue of the profiler's
  *exclusive* attribution (numpy's C-level work shows up under the
  Python frame that called it, which is exactly the frame we mapped).
  Unmapped stacks are the sampled ``NonKernelWork``, and their leaf
  frames name what actually lives inside that slice
  (:meth:`SampledProfile.non_kernel_top`).
* Samples are *time-weighted*: each carries the wall time since the
  previous sample rather than a uniform count.  A pure-Python sampler
  can only run when the GIL is available, so fixed-weight samples
  systematically undercount phases dominated by GIL-holding C calls
  (numpy's ``cumsum`` holds it; thresholded ufuncs release it) — the
  sampler's wake is delayed and entire hold windows collapse into one
  sample.  Weighting each sample by its elapsed window restores the
  time base: the sample taken right after a long C call (whose frame is
  still the calling function) carries that call's full duration.
  Measured on disparity@CIF this cuts the worst per-kernel bias from
  ~12 points to ~1.
* Exporters: flamegraph collapsed-stack text (:func:`to_collapsed`,
  ``%``/``;``/space escaped since they are format delimiters, with
  :func:`parse_collapsed` as the round-trip) and speedscope JSON
  (:func:`speedscope_json`).
* :func:`cross_check` — the agreement table between instrumented and
  sampled shares with a ±tolerance gate on every kernel holding at
  least ``min_share`` percent of the runtime.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .backend import registered_kernels
from .types import NON_KERNEL_WORK

#: One sampled frame: (module name, function name, source filename).
Frame = Tuple[str, str, str]

#: Frame-map key: (source filename, function name) — the pieces of a
#: code object a live frame exposes and a registered callable exposes.
FrameKey = Tuple[str, str]

#: Default sampling interval: 1 ms keeps sampler overhead far below the
#: workloads while collecting hundreds of samples per CIF-scale run.
DEFAULT_INTERVAL = 0.001


# ----------------------------------------------------------------------
# Frame -> Figure-3 kernel mapping

#: Registry kernel -> instrumented Figure-3 label, per application.
#:
#: The registry's ``paper_kernel`` names use Table II typography
#: ("Integral Image"); the instrumented ``profiler.kernel("...")``
#: blocks use Figure-3 typography ("IntegralImage") and differ per app
#: (the same convolution runs inside "GaussianFilter" in tracking but
#: outside any kernel block in disparity).  ``None`` means "this
#: registered kernel executes outside any instrumented block in this
#: app" — its frames stay unmapped so attribution keeps walking up the
#: stack (and falls through to ``NonKernelWork``, matching what the
#: instrumented profiler reports for that code).  Unlisted (app, kernel)
#: pairs default to ``None``.
_FIGURE3_LABELS: Dict[Tuple[str, str], Optional[str]] = {
    # disparity: prefilter convolution is uninstrumented NonKernelWork.
    ("disparity", "disparity.ssd"): "SSD",
    ("disparity", "imgproc.integral_image"): "IntegralImage",
    ("disparity", "imgproc.convolve_rows"): None,
    ("disparity", "imgproc.convolve_cols"): None,
    # tracking: smoothing runs inside "GaussianFilter", the eigensolve
    # inside the "AreaSum" scoring phase, patch sampling inside the
    # "MatrixInversion" solve loop.
    ("tracking", "imgproc.gradient"): "Gradient",
    ("tracking", "imgproc.integral_image"): "IntegralImage",
    ("tracking", "imgproc.convolve_rows"): "GaussianFilter",
    ("tracking", "imgproc.convolve_cols"): "GaussianFilter",
    ("tracking", "tracking.min_eigenvalue"): "AreaSum",
    ("tracking", "imgproc.bilinear"): "MatrixInversion",
    # sift
    ("sift", "imgproc.integral_image"): "IntegralImage",
    ("sift", "imgproc.bilinear"): "Interpolation",
    ("sift", "sift.descriptor"): "SIFT",
    # stitch: smoothing + gradients run inside the "Convolution" phase.
    ("stitch", "imgproc.convolve2d"): "Convolution",
    ("stitch", "imgproc.gradient"): "Convolution",
    ("stitch", "stitch.match_distances"): "Match",
    # svm
    ("svm", "svm.kernel_matrix"): "MatrixOps",
    # face
    ("face", "imgproc.integral_image"): "IntegralImage",
}


def _frame_key(fn: Callable) -> Optional[FrameKey]:
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    return (code.co_filename, code.co_name)


def kernel_frame_map(slug: str) -> Dict[FrameKey, Optional[str]]:
    """Frame map for one application: code frame -> Figure-3 kernel name.

    Combines two sources:

    * every registered dual-backend kernel whose ``apps`` include
      ``slug`` contributes the code objects of its ``ref`` and ``fast``
      implementations, labelled through :data:`_FIGURE3_LABELS`;
    * the application's :class:`~repro.core.registry.Benchmark` may
      declare ``sampling_frames`` (Figure-3 name -> functions) for
      kernel phases whose bodies are factored helpers rather than
      registered kernels (e.g. disparity's winner-take-all "Sort").

    A ``None`` label marks a frame as *known but uninstrumented*:
    attribution skips it and keeps walking toward the stack root.
    """
    from .registry import get_benchmark

    mapping: Dict[FrameKey, Optional[str]] = {}
    for spec in registered_kernels():
        if slug not in spec.apps:
            continue
        label = _FIGURE3_LABELS.get((slug, spec.name))
        for fn in (spec.ref, spec.fast):
            if fn is None:
                continue
            key = _frame_key(fn)
            if key is not None:
                mapping[key] = label
    declared = getattr(get_benchmark(slug), "sampling_frames", None)
    if declared:
        for label, fns in declared.items():
            for fn in fns:
                key = _frame_key(fn)
                if key is not None:
                    mapping[key] = label
    return mapping


def observable_kernels(frame_map: Mapping[FrameKey, Optional[str]]
                       ) -> List[str]:
    """The instrumented kernel names the sampler can attribute to."""
    return sorted({label for label in frame_map.values() if label})


# ----------------------------------------------------------------------
# Sampled profile

def walk_stack(frame: object) -> Tuple[Frame, ...]:
    """Flatten a live frame chain into (module, function, file) tuples.

    Returns the stack root→leaf (outermost caller first), the order the
    collapsed flamegraph format expects.
    """
    stack: List[Frame] = []
    while frame is not None:
        code = frame.f_code  # type: ignore[attr-defined]
        stack.append((
            frame.f_globals.get("__name__", "?"),  # type: ignore[attr-defined]
            code.co_name,
            code.co_filename,
        ))
        frame = frame.f_back  # type: ignore[attr-defined]
    stack.reverse()
    return tuple(stack)


def frame_label(frame: Frame) -> str:
    """Display label of one frame: ``module:function``."""
    return f"{frame[0]}:{frame[1]}"


@dataclass
class SampledProfile:
    """Folded, time-weighted stack samples plus per-kernel attribution.

    ``folded`` maps root→leaf label stacks to sampled seconds (the
    flamegraph input); ``kernel_seconds`` accumulates sampled seconds
    per attributed Figure-3 kernel (``NonKernelWork`` included);
    ``non_kernel_leaves`` accumulates the leaf functions of unattributed
    samples — the answer to "what actually lives inside the
    NonKernelWork slice".  ``samples`` counts raw samples (the
    statistical resolution; the weights carry the time base).
    """

    interval: float = DEFAULT_INTERVAL
    frame_map: Dict[FrameKey, Optional[str]] = field(default_factory=dict)
    samples: int = 0
    folded: Dict[Tuple[str, ...], float] = field(default_factory=dict)
    kernel_seconds: Dict[str, float] = field(default_factory=dict)
    non_kernel_leaves: Dict[str, float] = field(default_factory=dict)
    #: Attributable kernel names; derived from ``frame_map`` for live
    #: profiles, restored verbatim for profiles read back from exports
    #: (where the frame map itself is not serialized).
    observable: Optional[Tuple[str, ...]] = None
    #: Distinct folded stacks cut by :meth:`to_dict`'s ``max_stacks``
    #: cap.  Zero for live profiles (nothing has been cut from *this*
    #: object); restored from the payload on :meth:`from_dict` so a
    #: profile read back from an export knows it is partial.
    stacks_truncated: int = 0

    def attribute(self, stack: Sequence[Frame]) -> str:
        """Instrumented kernel name for one stack (leaf→root, first hit).

        Walking from the leaf gives the sampled analogue of the
        profiler's exclusive attribution: a sample inside a helper
        called by a kernel body lands on the kernel, and a ``None``
        mapping (kernel code running outside any instrumented block in
        this app) is skipped rather than matched.
        """
        for module, function, filename in reversed(stack):
            label = self.frame_map.get((filename, function))
            if label:
                return label
        return NON_KERNEL_WORK

    def add(self, stack: Sequence[Frame],
            weight: Optional[float] = None) -> None:
        """Fold one sampled stack into the profile.

        ``weight`` is the sampled window in seconds — the wall time this
        sample stands for (the live sampler passes the elapsed time
        since its previous sample); ``None`` uses one nominal interval,
        which makes hand-fed test samples uniform.
        """
        if not stack:
            return
        if weight is None:
            weight = self.interval
        self.samples += 1
        labels = tuple(frame_label(frame) for frame in stack)
        self.folded[labels] = self.folded.get(labels, 0.0) + weight
        kernel = self.attribute(stack)
        self.kernel_seconds[kernel] = \
            self.kernel_seconds.get(kernel, 0.0) + weight
        if kernel == NON_KERNEL_WORK:
            leaf = labels[-1]
            self.non_kernel_leaves[leaf] = \
                self.non_kernel_leaves.get(leaf, 0.0) + weight

    @property
    def sampled_seconds(self) -> float:
        """Total weighted time across all samples."""
        return sum(self.kernel_seconds.values())

    def shares(self) -> Dict[str, float]:
        """Percent of sampled time per attributed kernel (sums to 100)."""
        total = self.sampled_seconds
        if total <= 0.0:
            return {}
        return {
            kernel: 100.0 * seconds / total
            for kernel, seconds in sorted(self.kernel_seconds.items())
        }

    def non_kernel_top(self, limit: int = 10) -> List[Tuple[str, float]]:
        """Top leaf functions (by sampled seconds) inside NonKernelWork."""
        ordered = sorted(self.non_kernel_leaves.items(),
                         key=lambda kv: (-kv[1], kv[0]))
        return ordered[:limit]

    def observable_kernels(self) -> List[str]:
        if self.observable is not None:
            return sorted(self.observable)
        return observable_kernels(self.frame_map)

    def merge(self, other: "SampledProfile") -> None:
        """Fold another profile's samples into this one, in place.

        Every accumulator is a key-wise sum, so merging a set of
        profiles in any order produces identical state — the property
        the serve-side aggregates and the profile store's per-cell
        variant merge rely on.  The interval keeps the finer of the two
        (min is symmetric and associative); ``observable`` becomes the
        union of both sides' attributable kernels.
        """
        self.interval = min(self.interval, other.interval)
        self.samples += other.samples
        self.stacks_truncated += other.stacks_truncated
        for stack, seconds in other.folded.items():
            self.folded[stack] = self.folded.get(stack, 0.0) + seconds
        for kernel, seconds in other.kernel_seconds.items():
            self.kernel_seconds[kernel] = \
                self.kernel_seconds.get(kernel, 0.0) + seconds
        for leaf, seconds in other.non_kernel_leaves.items():
            self.non_kernel_leaves[leaf] = \
                self.non_kernel_leaves.get(leaf, 0.0) + seconds
        merged = set(self.observable_kernels()) | \
            set(other.observable_kernels())
        self.observable = tuple(sorted(merged))

    @classmethod
    def merged(cls, profiles: Iterable["SampledProfile"]
               ) -> "SampledProfile":
        """Merge any number of profiles into a fresh one (order-free)."""
        out = cls(observable=())
        for profile in profiles:
            out.merge(profile)
        return out

    # ------------------------------------------------------------------
    # Serialization (rides the schema-v5 export as a run's ``sampling``)

    def to_dict(self, max_stacks: int = 500) -> Dict[str, object]:
        """JSON-ready payload; folded stacks capped at ``max_stacks``.

        The cap keeps exports bounded on pathological stack diversity;
        ``folded_dropped`` records how many distinct stacks (never how
        many samples of the top stacks) were cut.
        """
        ordered = sorted(self.folded.items(), key=lambda kv: (-kv[1], kv[0]))
        kept = ordered[:max_stacks]
        truncated = self.stacks_truncated + (len(ordered) - len(kept))
        return {
            "interval_seconds": self.interval,
            "samples": self.samples,
            "shares": self.shares(),
            "kernel_seconds": dict(sorted(self.kernel_seconds.items())),
            "observable": self.observable_kernels(),
            "folded": {
                ";".join(escape_frame(label) for label in stack): seconds
                for stack, seconds in kept
            },
            "folded_dropped": len(ordered) - len(kept),
            # ``folded_dropped`` is this serialization's cut;
            # ``stacks_truncated`` carries cuts across round-trips, so a
            # re-exported profile still reports the total loss.
            "stacks_truncated": truncated,
            "non_kernel_top": [
                [label, seconds] for label, seconds in self.non_kernel_top()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SampledProfile":
        """Rebuild a profile from :meth:`to_dict` output.

        The frame map is not serialized; attribution state
        (``kernel_seconds``, ``observable``, ``non_kernel_leaves``) is
        restored verbatim instead, so shares and cross-checks recompute
        exactly even though ``add`` would need a live map.
        """
        profile = cls(
            interval=float(payload.get("interval_seconds",
                                       DEFAULT_INTERVAL)),  # type: ignore[arg-type]
            samples=int(payload.get("samples", 0)),  # type: ignore[arg-type]
            kernel_seconds={
                str(k): float(v)
                for k, v in payload.get("kernel_seconds", {}).items()  # type: ignore[union-attr]
            },
            observable=tuple(payload.get("observable", ())),  # type: ignore[arg-type]
            stacks_truncated=int(
                payload.get("stacks_truncated",
                            payload.get("folded_dropped", 0))),  # type: ignore[arg-type]
        )
        folded: Mapping[str, float] = payload.get("folded", {})  # type: ignore[assignment]
        for line, seconds in folded.items():
            stack = tuple(unescape_frame(part) for part in line.split(";"))
            profile.folded[stack] = float(seconds)
        for label, seconds in payload.get("non_kernel_top", []):  # type: ignore[union-attr]
            profile.non_kernel_leaves[str(label)] = float(seconds)
        return profile


# ----------------------------------------------------------------------
# The sampling thread

class StackSampler:
    """Background thread sampling one thread's Python stack.

    ``interval`` is the target seconds between samples.  The sampled
    thread defaults to the *constructing* thread (start the sampler from
    the thread that will run the benchmark); ``frames_provider``
    defaults to ``sys._current_frames`` and is injectable for
    deterministic tests, as are ``target_thread_id`` and ``clock``.

    Samples are weighted by the measured time since the previous sample
    (see the module docstring: fixed weights are biased against
    GIL-holding C calls), so the profile's time base tracks wall time
    even when individual wakes are delayed.

    Use as a context manager or via explicit :meth:`start`/:meth:`stop`;
    the collected :class:`SampledProfile` is available as ``.profile``
    throughout and is returned by :meth:`stop`.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        frame_map: Optional[Mapping[FrameKey, Optional[str]]] = None,
        frames_provider: Optional[Callable[[], Mapping[int, object]]] = None,
        target_thread_id: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self._frames_provider = frames_provider or sys._current_frames
        self._target = (target_thread_id if target_thread_id is not None
                        else threading.get_ident())
        self._clock: Callable[[], float] = clock or time.perf_counter
        self._last: Optional[float] = None
        self.profile = SampledProfile(interval=self.interval,
                                      frame_map=dict(frame_map or {}))
        self._stop_event: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None

    def sample_once(self) -> bool:
        """Take one sample of the target thread; False if it has no frame.

        The sample's weight is the clock time since the previous call
        (one nominal interval for the first).
        """
        frame = self._frames_provider().get(self._target)
        now = self._clock()
        weight = (self.interval if self._last is None
                  else max(0.0, now - self._last))
        self._last = now
        if frame is None:
            return False
        self.profile.add(walk_stack(frame), weight)
        return True

    def start(self) -> None:
        """Start the background sampling thread."""
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop_event = threading.Event()
        self._last = self._clock()
        self._thread = threading.Thread(
            target=self._loop, name="sdvbs-sampler", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        assert self._stop_event is not None
        while not self._stop_event.wait(self.interval):
            try:
                self.sample_once()
            except Exception:
                # A sampler must never take the benchmark down; stop
                # sampling and let stop() join us normally.
                return

    def stop(self) -> SampledProfile:
        """Stop the sampling thread (idempotent) and return the profile."""
        if self._thread is not None:
            assert self._stop_event is not None
            self._stop_event.set()
            self._thread.join()
            self._thread = None
            self._stop_event = None
        return self.profile

    def __enter__(self) -> "StackSampler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Flamegraph exporters

def escape_frame(label: str) -> str:
    """Escape a frame label for the collapsed-stack format.

    ``;`` separates frames and space separates the stack from its count,
    so both (and the escape character itself) are percent-encoded.
    """
    return (label.replace("%", "%25")
                 .replace(";", "%3B")
                 .replace(" ", "%20"))


def unescape_frame(label: str) -> str:
    """Invert :func:`escape_frame`."""
    return (label.replace("%20", " ")
                 .replace("%3B", ";")
                 .replace("%25", "%"))


def to_collapsed(profile: SampledProfile) -> str:
    """Brendan Gregg collapsed-stack text: ``frame;frame;frame usec``.

    The trailing integer is the stack's sampled time in *microseconds*
    (flamegraph tools expect integer counts; microseconds keep the
    time-weighted resolution).  Lines are sorted for deterministic
    output; feed to any flamegraph renderer (``flamegraph.pl``,
    speedscope, inferno).
    """
    lines = []
    for stack, seconds in sorted(profile.folded.items()):
        micros = int(round(seconds * 1e6))
        lines.append(
            ";".join(escape_frame(label) for label in stack) + f" {micros}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> Dict[Tuple[str, ...], int]:
    """Parse collapsed-stack text back into folded stacks (round-trip).

    Values are the integer microsecond weights :func:`to_collapsed`
    wrote.
    """
    folded: Dict[Tuple[str, ...], int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_part, _, count_part = line.rpartition(" ")
        if not stack_part:
            raise ValueError(f"malformed collapsed-stack line: {line!r}")
        stack = tuple(unescape_frame(part)
                      for part in stack_part.split(";"))
        folded[stack] = folded.get(stack, 0) + int(count_part)
    return folded


def speedscope_dict(profile: SampledProfile,
                    name: str = "sdvbs") -> Dict[str, object]:
    """Speedscope file-format payload (``"type": "sampled"`` profile).

    Each distinct folded stack becomes one sample weighted by its
    sampled seconds, so the rendered time axis approximates real
    seconds.
    """
    frames: List[Dict[str, str]] = []
    index: Dict[str, int] = {}
    samples: List[List[int]] = []
    weights: List[float] = []
    for stack, seconds in sorted(profile.folded.items()):
        row = []
        for label in stack:
            if label not in index:
                index[label] = len(frames)
                frames.append({"name": label})
            row.append(index[label])
        samples.append(row)
        weights.append(seconds)
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "sdvbs-repro",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
    }


def speedscope_json(profile: SampledProfile, name: str = "sdvbs",
                    indent: int = 2) -> str:
    """Serialize :func:`speedscope_dict` to JSON."""
    return json.dumps(speedscope_dict(profile, name=name), indent=indent,
                      sort_keys=True)


# ----------------------------------------------------------------------
# Instrumented-vs-sampled agreement

@dataclass(frozen=True)
class AgreementRow:
    """One kernel's instrumented vs sampled runtime share (percent).

    ``sampled`` is ``None`` when the sampler has no frame mapping for
    this kernel in this app (inline instrumented block with no factored
    function) — its instrumented share folds into the residual row
    instead of being compared point-for-point.
    """

    kernel: str
    instrumented: float
    sampled: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.sampled is None:
            return None
        return self.sampled - self.instrumented


@dataclass(frozen=True)
class CrossCheckResult:
    """The agreement table plus its tolerance gate."""

    rows: Tuple[AgreementRow, ...]
    tolerance: float
    min_share: float
    samples: int

    def gated_rows(self) -> List[AgreementRow]:
        """Rows the gate applies to: comparable and holding enough share."""
        return [
            row for row in self.rows
            if row.sampled is not None
            and max(row.instrumented, row.sampled) >= self.min_share
        ]

    def failures(self) -> List[AgreementRow]:
        return [row for row in self.gated_rows()
                if abs(row.delta or 0.0) > self.tolerance]

    @property
    def ok(self) -> bool:
        return not self.failures()


def cross_check(
    instrumented: Mapping[str, float],
    sampled: Mapping[str, float],
    observable: Iterable[str],
    tolerance: float = 5.0,
    min_share: float = 10.0,
    samples: int = 0,
) -> CrossCheckResult:
    """Diff instrumented Figure-3 shares against sampled shares.

    ``instrumented`` and ``sampled`` are percent shares (both including
    their own ``NonKernelWork`` entries); ``observable`` names the
    kernels the sampler can attribute (see :func:`observable_kernels`).
    Instrumented kernels the sampler cannot observe keep their own rows
    (marked unobservable) but are compared inside the residual
    ``NonKernelWork`` row, which aggregates both sides' leftovers — so
    the two columns of the table each sum to ~100 and the residual
    comparison still catches gross attribution bias.

    The gate: every *comparable* row whose share reaches ``min_share``
    percent on either side must agree within ``tolerance`` points.
    """
    observable = set(observable)
    rows: List[AgreementRow] = []
    residual_instrumented = 0.0
    residual_sampled = 0.0
    kernels = sorted(
        (k for k in instrumented if k != NON_KERNEL_WORK),
        key=lambda k: (-instrumented[k], k),
    )
    for kernel in kernels:
        share = instrumented[kernel]
        if kernel in observable:
            rows.append(AgreementRow(kernel, share, sampled.get(kernel, 0.0)))
        else:
            rows.append(AgreementRow(kernel, share, None))
            residual_instrumented += share
    residual_instrumented += instrumented.get(NON_KERNEL_WORK, 0.0)
    for kernel, share in sampled.items():
        if kernel == NON_KERNEL_WORK or kernel not in instrumented:
            # The sampler's own leftovers: unattributed samples plus
            # any label the instrumented profiler never recorded.
            residual_sampled += share
    rows.append(AgreementRow(NON_KERNEL_WORK, residual_instrumented,
                             residual_sampled))
    return CrossCheckResult(
        rows=tuple(rows),
        tolerance=tolerance,
        min_share=min_share,
        samples=samples,
    )
