"""Work/span dataflow analysis — the Table IV substrate.

SD-VBS reports, per kernel, the parallelism "estimated by a critical path
analysis ... [which] corresponds roughly to the speedup possible on a
dataflow machine with infinite hardware resources and free communication"
(Lam & Wilson style limit study).  On such a machine the runtime of a
computation is the length of its longest dependence chain (the *span*) and
its speedup over serial execution is ``work / span``.

This module provides two equivalent ways to compute that limit:

* **Cost-model combinators** (:class:`Op`, :class:`Seq`, :class:`Par`,
  :class:`ParMap`, :class:`Chain`, :class:`Reduce`, :class:`Scan`) that
  mirror the loop-nest structure of a kernel analytically.  Every kernel in
  the suite publishes such a model via its application's
  ``parallelism_models()``.
* An explicit :class:`TaskGraph` whose work/span is computed by longest-path
  over the DAG.  It is used to cross-check the combinators in tests and to
  analyze small dynamic traces.

Both count "operations" abstractly (one arithmetic op = 1 unit), exactly as
an idealized dataflow limit study does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


class CostModel:
    """Base class: an analytic (work, span) pair for a computation."""

    work: int
    span: int

    @property
    def parallelism(self) -> float:
        """Ideal dataflow speedup, ``work / span``."""
        if self.span <= 0:
            return 1.0
        return self.work / self.span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(work={self.work}, span={self.span}, "
            f"parallelism={self.parallelism:.1f})"
        )


@dataclass(repr=False)
class Op(CostModel):
    """A straight-line block of ``count`` dependent operations.

    Models a basic-block body whose operations form a chain (worst case for
    ILP); use ``Par`` of ``Op(1)`` for independent scalar ops.
    """

    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("op count must be non-negative")
        self.work = self.count
        self.span = self.count


class Seq(CostModel):
    """Sequential composition: works and spans both add."""

    def __init__(self, *parts: CostModel) -> None:
        self.parts: Tuple[CostModel, ...] = tuple(parts)
        self.work = sum(p.work for p in self.parts)
        self.span = sum(p.span for p in self.parts)


class Par(CostModel):
    """Parallel composition of independent parts: span is the max."""

    def __init__(self, *parts: CostModel) -> None:
        self.parts: Tuple[CostModel, ...] = tuple(parts)
        self.work = sum(p.work for p in self.parts)
        self.span = max((p.span for p in self.parts), default=0)


class ParMap(CostModel):
    """``n`` independent instances of ``body`` (a fully parallel loop).

    This is the shape of a DLP/TLP loop with no inter-iteration dependence:
    work multiplies, span stays the body's span.
    """

    def __init__(self, n: int, body: CostModel) -> None:
        if n < 0:
            raise ValueError("iteration count must be non-negative")
        self.n = n
        self.body = body
        self.work = n * body.work
        self.span = body.span if n > 0 else 0


class Chain(CostModel):
    """``n`` iterations of ``body`` with a loop-carried dependence.

    The serial-loop shape: both work and span multiply by ``n``.
    """

    def __init__(self, n: int, body: CostModel) -> None:
        if n < 0:
            raise ValueError("iteration count must be non-negative")
        self.n = n
        self.body = body
        self.work = n * body.work
        self.span = n * body.span


class Reduce(CostModel):
    """Tree reduction of ``n`` values with an ``op_cost``-op combiner.

    Work is ``(n - 1) * op_cost``; span is ``ceil(log2 n) * op_cost`` — the
    dataflow machine reassociates the reduction into a balanced tree.
    """

    def __init__(self, n: int, op_cost: int = 1) -> None:
        if n < 0:
            raise ValueError("element count must be non-negative")
        self.n = n
        self.op_cost = op_cost
        self.work = max(0, n - 1) * op_cost
        self.span = (max(1, math.ceil(math.log2(n))) * op_cost) if n > 1 else 0


class Scan(CostModel):
    """Parallel prefix (scan) over ``n`` values (Blelloch-style).

    Work ``~2n``, span ``~2 log2 n``.  This is the dataflow-limit shape of
    the integral-image row/column passes: although the C code writes a
    serial accumulation, an ideal machine reassociates it into a scan,
    which is why the paper measures such high parallelism for Integral
    Image despite its serial-looking loops.
    """

    def __init__(self, n: int, op_cost: int = 1) -> None:
        if n < 0:
            raise ValueError("element count must be non-negative")
        self.n = n
        self.op_cost = op_cost
        self.work = 2 * max(0, n - 1) * op_cost
        self.span = (2 * max(1, math.ceil(math.log2(n))) * op_cost) if n > 1 else 0


# ----------------------------------------------------------------------
# Explicit task graphs


class TaskGraph:
    """An explicit dataflow DAG with per-node operation costs.

    ``add(task, cost, deps)`` inserts a node; :meth:`analyze` returns the
    (work, span) pair where span is the longest cost-weighted path.  Nodes
    must be added after all of their dependencies (which any dynamic trace
    satisfies naturally); this keeps the analysis a single O(V + E) pass.
    """

    def __init__(self) -> None:
        self._cost: Dict[object, int] = {}
        self._finish: Dict[object, int] = {}
        self._work: int = 0
        self._span: int = 0

    def add(self, task: object, cost: int = 1, deps: Iterable[object] = ()) -> None:
        """Add ``task`` with ``cost`` ops, depending on completed ``deps``."""
        if task in self._cost:
            raise ValueError(f"duplicate task {task!r}")
        if cost < 0:
            raise ValueError("task cost must be non-negative")
        start = 0
        for dep in deps:
            if dep not in self._finish:
                raise KeyError(f"unknown dependency {dep!r} for task {task!r}")
            start = max(start, self._finish[dep])
        finish = start + cost
        self._cost[task] = cost
        self._finish[task] = finish
        self._work += cost
        self._span = max(self._span, finish)

    def __len__(self) -> int:
        return len(self._cost)

    def __contains__(self, task: object) -> bool:
        return task in self._cost

    @property
    def work(self) -> int:
        return self._work

    @property
    def span(self) -> int:
        return self._span

    @property
    def parallelism(self) -> float:
        if self._span <= 0:
            return 1.0
        return self._work / self._span

    def analyze(self) -> Tuple[int, int]:
        """Return ``(work, span)`` for the graph built so far."""
        return self._work, self._span


def graph_from_model(model: CostModel) -> TaskGraph:
    """Expand an analytic cost model into an explicit :class:`TaskGraph`.

    Used by tests to cross-validate the combinator algebra against a
    longest-path computation.  Expansion is exact for ``Op``/``Seq``/``Par``/
    ``ParMap``/``Chain`` and structural (balanced tree) for ``Reduce`` and
    ``Scan``.  Intended for small models only — the graph has one node per
    operation group.
    """

    graph = TaskGraph()
    counter = [0]

    def fresh() -> int:
        counter[0] += 1
        return counter[0]

    def emit(m: CostModel, deps: Sequence[object]) -> List[object]:
        """Emit nodes for ``m`` after ``deps``; return its sink nodes."""
        if isinstance(m, Op):
            if m.count == 0:
                return list(deps)
            node = fresh()
            graph.add(node, m.count, deps)
            return [node]
        if isinstance(m, Seq):
            sinks: List[object] = list(deps)
            for part in m.parts:
                sinks = emit(part, sinks)
            return sinks
        if isinstance(m, Par):
            all_sinks: List[object] = []
            for part in m.parts:
                all_sinks.extend(emit(part, deps))
            return all_sinks or list(deps)
        if isinstance(m, ParMap):
            all_sinks = []
            for _ in range(m.n):
                all_sinks.extend(emit(m.body, deps))
            return all_sinks or list(deps)
        if isinstance(m, Chain):
            sinks = list(deps)
            for _ in range(m.n):
                sinks = emit(m.body, sinks)
            return sinks
        if isinstance(m, (Reduce, Scan)):
            # Structural stand-in: a balanced up-sweep tree over n leaves;
            # Scan adds a mirrored down-sweep below the root.
            if m.n <= 1:
                return list(deps)
            frontier: List[object] = []
            for _ in range(m.n):
                leaf = fresh()
                graph.add(leaf, 0, deps)
                frontier.append(leaf)
            while len(frontier) > 1:
                nxt: List[object] = []
                for i in range(0, len(frontier) - 1, 2):
                    node = fresh()
                    graph.add(node, m.op_cost, [frontier[i], frontier[i + 1]])
                    nxt.append(node)
                if len(frontier) % 2 == 1:
                    nxt.append(frontier[-1])
                frontier = nxt
            if isinstance(m, Scan):
                # Down-sweep: n - 1 combine ops expanding from the root,
                # frontier at most doubling per level (height ceil(log2 n)).
                remaining = m.n - 1
                while remaining > 0:
                    nxt = []
                    for parent in frontier:
                        nxt.append(parent)
                        if remaining > 0:
                            node = fresh()
                            graph.add(node, m.op_cost, [parent])
                            nxt.append(node)
                            remaining -= 1
                    frontier = nxt
            return frontier
        raise TypeError(f"cannot expand {type(m).__name__}")

    emit(model, [])
    return graph
