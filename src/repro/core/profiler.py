"""Kernel-level profiler used to attribute application runtime to kernels.

SD-VBS characterizes each application by the share of runtime spent in each
named kernel (Figure 3).  The original C suite did this with external
profilers; here every application threads a :class:`KernelProfiler` through
its kernels and wraps each kernel body in ``with profiler.kernel("Name")``.

Nested kernels are attributed *exclusively*: time spent inside an inner
named kernel is subtracted from the enclosing kernel, so per-kernel shares
sum to at most 100% and the remainder is the paper's "NonKernelWork".
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from .metrics import MetricsRegistry
from .tracing import CATEGORY_APP, CATEGORY_KERNEL, TraceRecorder
from .types import KernelSample


class KernelProfiler:
    """Accumulates exclusive wall time per named kernel.

    The profiler is re-entrant: the same kernel name may appear at several
    nesting depths and its samples are merged.  A ``clock`` callable can be
    injected for deterministic tests.

    With a :class:`~repro.core.tracing.TraceRecorder` attached, every
    kernel call additionally emits one span (and ``start``/``stop`` emit a
    whole-application span) into the recorder.  Without one, the hot path
    pays a single ``is None`` check and allocates nothing extra.  A
    :class:`~repro.core.metrics.MetricsRegistry` can likewise be attached
    to feed per-kernel call counters and self-time histograms.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 recorder: Optional[TraceRecorder] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._clock: Callable[[], float] = clock or time.perf_counter
        self._samples: Dict[str, KernelSample] = {}
        # Stack of [kernel name, accumulated child time] for the active
        # nest of ``kernel`` contexts.
        self._stack: List[List[object]] = []
        self._total_start: Optional[float] = None
        self._total_seconds: float = 0.0
        self._recorder: Optional[TraceRecorder] = recorder
        self._metrics: Optional[MetricsRegistry] = metrics
        self._app_seq: Optional[int] = None

    @property
    def recorder(self) -> Optional[TraceRecorder]:
        """The attached trace recorder, if any."""
        return self._recorder

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        """The attached metrics registry, if any."""
        return self._metrics

    # ------------------------------------------------------------------
    # Whole-application timing

    def start(self) -> None:
        """Begin timing the whole application run."""
        if self._total_start is not None:
            raise RuntimeError("profiler already started")
        self._total_start = self._clock()
        recorder = self._recorder
        if recorder is not None:
            self._app_seq = recorder.span_open(
                "app", CATEGORY_APP, self._total_start
            )

    def stop(self) -> float:
        """Stop whole-application timing and return total elapsed seconds."""
        if self._total_start is None:
            raise RuntimeError("profiler not started")
        end = self._clock()
        elapsed = end - self._total_start
        self._total_seconds += elapsed
        self._total_start = None
        recorder = self._recorder
        if recorder is not None and self._app_seq is not None:
            recorder.span_close(self._app_seq, end)
            self._app_seq = None
        if self._metrics is not None:
            self._metrics.inc("app/runs")
            self._metrics.observe("app/seconds", elapsed)
        return self._total_seconds

    @contextmanager
    def run(self) -> Iterator["KernelProfiler"]:
        """Context manager wrapping :meth:`start`/:meth:`stop`."""
        self.start()
        try:
            yield self
        finally:
            self.stop()

    # ------------------------------------------------------------------
    # Kernel attribution

    @contextmanager
    def kernel(self, name: str) -> Iterator[None]:
        """Attribute the wall time of the enclosed block to ``name``.

        Time spent in nested ``kernel`` blocks is excluded (charged to the
        inner kernel only).
        """
        start = self._clock()
        recorder = self._recorder
        seq = -1
        if recorder is not None:
            seq = recorder.span_open(name, CATEGORY_KERNEL, start)
        frame: List[object] = [name, 0.0]
        self._stack.append(frame)
        try:
            yield
        finally:
            end = self._clock()
            elapsed = end - start
            self._stack.pop()
            child_time = float(frame[1])  # accumulated by nested kernels
            exclusive = max(0.0, elapsed - child_time)
            sample = self._samples.setdefault(name, KernelSample(name))
            sample.seconds += exclusive
            sample.calls += 1
            if self._stack:
                parent = self._stack[-1]
                parent[1] = float(parent[1]) + elapsed
            if recorder is not None:
                recorder.span_close(seq, end, self_duration=exclusive)
            if self._metrics is not None:
                self._metrics.inc(f"kernel/{name}/calls")
                self._metrics.observe(f"kernel/{name}/self_seconds",
                                      exclusive)

    # ------------------------------------------------------------------
    # Results

    @property
    def total_seconds(self) -> float:
        return self._total_seconds

    @property
    def kernel_seconds(self) -> Dict[str, float]:
        return {name: s.seconds for name, s in self._samples.items()}

    @property
    def kernel_calls(self) -> Dict[str, int]:
        return {name: s.calls for name, s in self._samples.items()}

    def attributed_seconds(self) -> float:
        """Total seconds charged to named kernels."""
        return sum(s.seconds for s in self._samples.values())

    def reset(self) -> None:
        """Discard all samples and timing state."""
        self._samples.clear()
        self._stack.clear()
        self._total_start = None
        self._total_seconds = 0.0
        self._app_seq = None
        recorder = self._recorder
        if recorder is not None:
            # Close any spans this profiler left open so the recorder's
            # nesting stack stays consistent for subsequent runs.
            recorder.abandon_open(self._clock())


class NullProfiler(KernelProfiler):
    """Profiler that records nothing; used when callers pass ``None``.

    Keeps the kernel annotations in application code free of ``if`` guards.
    Because :func:`ensure_profiler` hands out one shared instance, every
    inherited mutating path (``start``/``stop``/``run``/``kernel``/
    ``reset``) is overridden to a stateless no-op — concurrent users can
    never observe each other through it.
    """

    @contextmanager
    def kernel(self, name: str) -> Iterator[None]:  # noqa: D102
        yield

    def start(self) -> None:  # noqa: D102
        pass

    def stop(self) -> float:  # noqa: D102
        return 0.0

    @contextmanager
    def run(self) -> Iterator["KernelProfiler"]:  # noqa: D102
        yield self

    def reset(self) -> None:  # noqa: D102
        pass


def measure_probe_overhead(
    probes: int = 2000,
    passes: int = 3,
    clock: Optional[Callable[[], float]] = None,
) -> Dict[str, float]:
    """Calibrate the cost of one ``with profiler.kernel(...)`` probe.

    Times ``probes`` empty kernel blocks against an equally long empty
    loop and charges the difference to the probes; the best of
    ``passes`` repetitions is kept (scheduler noise only ever inflates
    the estimate).  The result is what the instrumented Figure-3 numbers
    silently include per kernel call — the manifest records it
    (``instrumentation`` block) and ``sdvbs run`` warns when the
    per-cell total exceeds its threshold.

    ``clock`` injects a deterministic time source for tests (it drives
    both the measurement and the profiler under test).
    """
    if probes < 1:
        raise ValueError(f"probes must be >= 1, got {probes}")
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    clock = clock or time.perf_counter
    best: Optional[float] = None
    calibration = 0.0
    for _ in range(passes):
        profiler = KernelProfiler(clock=clock)
        start = clock()
        for _index in range(probes):
            with profiler.kernel("calibration"):
                pass
        probed = clock() - start
        start = clock()
        for _index in range(probes):
            pass
        baseline = clock() - start
        calibration += probed + baseline
        per_probe = max(0.0, (probed - baseline) / probes)
        if best is None or per_probe < best:
            best = per_probe
    return {
        "probes": float(probes),
        "passes": float(passes),
        "seconds_per_probe": float(best or 0.0),
        "calibration_seconds": calibration,
    }


#: The shared no-op profiler handed out by :func:`ensure_profiler`.  A
#: single module-level instance is safe because NullProfiler holds no
#: mutable state reachable through its public API.
_NULL_PROFILER = NullProfiler()


def ensure_profiler(profiler: Optional[KernelProfiler]) -> KernelProfiler:
    """Return ``profiler`` or the shared no-op profiler when ``None``."""
    if profiler is None:
        return _NULL_PROFILER
    return profiler
