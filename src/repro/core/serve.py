"""HTTP/JSON-RPC envelope of the benchmark service (``sdvbs serve``).

:mod:`repro.core.jobs` holds the substance — spec validation, admission
control, the worker pool, the result cache.  This module is the thin
wire layer over it: a stdlib :class:`ThreadingHTTPServer` speaking
JSON-RPC 2.0 on ``POST /`` plus three plain-HTTP conveniences:

* ``GET /healthz`` — readiness probe.  Reports real state (queue
  depth, saturation, worker occupancy, uptime) and flips to
  ``503 {"ok": false, ...}`` the moment the server starts draining,
  so external probes see degradation instead of a static ok.
* ``GET /metrics`` — Prometheus text exposition (version 0.0.4) of
  the manager's :class:`~repro.core.metrics.MetricsRegistry`:
  counters, gauges, and latency histograms as cumulative
  ``_bucket``/``_sum``/``_count`` series.  Rendered by
  :func:`repro.core.telemetry.render_prometheus`.
* ``GET /artifacts/<job id>/<name>`` — stream a completed job's
  artifact (suite export, chrome trace, flamegraph, HTML report,
  regression verdict) with a content type inferred from the name.
  Artifact names are resolved against the job's recorded artifact
  table, never joined into filesystem paths from request input, so
  traversal is structurally impossible.  The reserved id ``profile``
  (``GET /artifacts/profile/<job type>.collapsed``) instead renders
  the continuous profiler's live per-job-type aggregate as a folded
  flamegraph — it belongs to no single job, so it has no job id.

Exposed JSON-RPC methods (full schemas in SERVING.md): ``job.submit``,
``job.status``, ``job.result``, ``job.cancel``, ``job.list``,
``server.info``, ``server.metrics``, ``server.profile``,
``server.shutdown``.

Request identity: every request gets an id — the ``X-Request-Id``
header when the client sends one (truncated to 64 chars), else a
generated hex token — echoed back as a response header, stamped onto
the structured access-log event, and carried through ``job.submit``
into the job record and its lifecycle trace spans.  The default
handler's stderr chatter is silenced; instead each response emits one
``http.access`` event into the manager's
:class:`~repro.core.telemetry.EventLog` when ``--access-log`` is on
(protocol errors log as ``http.error`` warnings unconditionally), and
every response counts into ``http.requests``/``http.request_seconds``
regardless.

Error codes follow JSON-RPC 2.0 for protocol failures and carve out an
application range for the admission/job layer:

====================  ======  =====================================
name                  code    raised when
====================  ======  =====================================
parse error           -32700  body is not valid JSON
invalid request       -32600  not a JSON-RPC 2.0 request object
method not found      -32601  unknown ``method``
invalid params        -32602  spec/params failed validation
internal error        -32603  unexpected server-side failure
queue full            -32001  admission refused (cap or watermark);
                              ``data.retry_after_s`` hints backoff
rate limited          -32002  client exceeded its token bucket
unknown job           -32003  no such job id (or artifact name)
job not done          -32004  result requested before completion,
                              or the job failed
not cancellable       -32005  cancel of a non-queued job
shutting down         -32006  submit during server shutdown
====================  ======  =====================================

Security model: the server binds to localhost by default and performs
no authentication — it is an operator's tool for one trusted host, not
an internet-facing endpoint.  SERVING.md spells out the implications.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from .jobs import (
    JobError,
    JobManager,
    JobNotDoneError,
    NotCancellableError,
    QueueFullError,
    RateLimitedError,
    SpecError,
    UnknownJobError,
)
from .telemetry import (
    EventLog,
    PROMETHEUS_CONTENT_TYPE,
    metric_key,
    render_prometheus,
)

#: Version stamp carried by every ``server.info`` response.
SERVE_SCHEMA = "sdvbs-repro/serve/v1"

# JSON-RPC 2.0 protocol errors.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
# Application errors (documented above and in SERVING.md).
QUEUE_FULL = -32001
RATE_LIMITED = -32002
UNKNOWN_JOB = -32003
JOB_NOT_DONE = -32004
NOT_CANCELLABLE = -32005
SHUTTING_DOWN = -32006

class ShuttingDownError(JobError):
    """Submission refused because the server is draining to exit."""


#: Typed job-layer exception -> JSON-RPC error code.
ERROR_CODES: Dict[type, int] = {
    SpecError: INVALID_PARAMS,
    QueueFullError: QUEUE_FULL,
    RateLimitedError: RATE_LIMITED,
    UnknownJobError: UNKNOWN_JOB,
    JobNotDoneError: JOB_NOT_DONE,
    NotCancellableError: NOT_CANCELLABLE,
    ShuttingDownError: SHUTTING_DOWN,
}

#: Artifact name suffix -> HTTP content type.
_CONTENT_TYPES = (
    (".html", "text/html; charset=utf-8"),
    (".json", "application/json"),
    (".collapsed", "text/plain; charset=utf-8"),
)


def _content_type(name: str) -> str:
    for suffix, content_type in _CONTENT_TYPES:
        if name.endswith(suffix):
            return content_type
    return "application/octet-stream"


def rpc_error(code: int, message: str,
              data: Optional[Dict[str, object]] = None,
              request_id: object = None) -> Dict[str, object]:
    """One JSON-RPC 2.0 error response body."""
    error: Dict[str, object] = {"code": code, "message": message}
    if data:
        error["data"] = data
    return {"jsonrpc": "2.0", "id": request_id, "error": error}


def rpc_result(result: object, request_id: object) -> Dict[str, object]:
    """One JSON-RPC 2.0 success response body."""
    return {"jsonrpc": "2.0", "id": request_id, "result": result}


class BenchServer:
    """The ``sdvbs serve`` process: a JobManager behind JSON-RPC.

    ``port=0`` binds an ephemeral port (tests use this); the bound
    address is available as :attr:`address` after construction.  Use
    :meth:`serve_forever` for a foreground server (the CLI) or
    :meth:`start`/:meth:`stop` for a background one (tests).
    """

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 0, access_log: bool = False) -> None:
        self.manager = manager
        self.access_log = bool(access_log)
        server = self

        class Handler(_RpcHandler):
            bench = server

        self.httpd = ThreadingHTTPServer((host, port), Handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._shutting_down = False

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        """Workers + HTTP loop on background threads (idempotent)."""
        self.manager.start()
        if self._thread is None:
            host, port = self.address
            self.manager.events.emit("server.start", host=host, port=port,
                                     workers=self.manager.workers)
            self._thread = threading.Thread(target=self.httpd.serve_forever,
                                            name="sdvbs-http", daemon=True)
            self._thread.start()

    def serve_forever(self) -> None:
        """Foreground server: blocks until :meth:`stop` or Ctrl-C."""
        self.manager.start()
        host, port = self.address
        self.manager.events.emit("server.start", host=host, port=port,
                                 workers=self.manager.workers)
        self.httpd.serve_forever()

    def stop(self) -> None:
        """Stop accepting requests, then drain running jobs."""
        if not self._shutting_down:
            self.manager.events.emit("server.stopping", level="warning")
        self._shutting_down = True
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.manager.stop()
        self.manager.events.emit("server.stopped")

    def request_shutdown(self) -> None:
        """Async shutdown for ``server.shutdown`` (can't block the
        handler thread: ``httpd.shutdown`` waits for the serve loop,
        which waits for the handler)."""
        self._shutting_down = True
        self.manager.events.emit("server.stopping", level="warning",
                                 via="server.shutdown")
        threading.Thread(target=self.stop, name="sdvbs-shutdown",
                         daemon=True).start()

    # ------------------------------------------------------------------
    # Plain-HTTP bodies

    def health(self) -> Tuple[int, Dict[str, object]]:
        """``/healthz`` status + body: real readiness, not a static ok."""
        body: Dict[str, object] = {
            "ok": not self._shutting_down,
            "schema": SERVE_SCHEMA,
            "shutting_down": self._shutting_down,
        }
        body.update(self.manager.health())
        return (503 if self._shutting_down else 200), body

    def metrics_payload(self) -> Dict[str, object]:
        """The ``server.metrics`` body: the registry as JSON."""
        registry = self.manager.metrics
        events = self.manager.events
        return {
            "schema": SERVE_SCHEMA,
            "counters": registry.counters,
            "gauges": registry.gauges,
            "histograms": registry.histogram_summaries(),
            "events": {"emitted": events.emitted,
                       "suppressed": events.suppressed,
                       "sink_disabled": events.sink_disabled,
                       "sink_error": events.sink_error},
        }

    # ------------------------------------------------------------------
    # Method dispatch

    def dispatch(self, method: str, params: Dict[str, object],
                 client: str,
                 request_id: Optional[str] = None) -> object:
        """Execute one JSON-RPC method; raises typed JobError on refusal."""
        if method == "job.submit":
            if self._shutting_down:
                raise ShuttingDownError("server is shutting down")
            job, cached = self.manager.submit(
                params.get("spec"),
                client=str(params.get("client") or client),
                priority=str(params.get("priority", "normal")),
                request_id=request_id,
            )
            payload = job.to_dict()
            payload["cached"] = cached
            return payload
        if method == "job.status":
            return self.manager.status(_job_id(params))
        if method == "job.result":
            return self.manager.result(_job_id(params))
        if method == "job.cancel":
            return self.manager.cancel(_job_id(params))
        if method == "job.list":
            state = params.get("state")
            filter_client = params.get("client")
            limit = params.get("limit", 50)
            if not isinstance(limit, int) or isinstance(limit, bool):
                raise SpecError(f"limit must be an integer, got {limit!r}",
                                field="limit")
            return {
                "jobs": self.manager.list_jobs(
                    state=None if state is None else str(state),
                    client=None if filter_client is None
                    else str(filter_client),
                    limit=limit,
                )
            }
        if method == "server.info":
            info = self.manager.info()
            info["schema"] = SERVE_SCHEMA
            info["shutting_down"] = self._shutting_down
            return info
        if method == "server.metrics":
            return self.metrics_payload()
        if method == "server.profile":
            job_type = params.get("type")
            top = params.get("top", 10)
            if not isinstance(top, int) or isinstance(top, bool) or top < 1:
                raise SpecError(
                    f"top must be a positive integer, got {top!r}",
                    field="top")
            snapshot = self.manager.profile_snapshot(
                job_type=None if job_type is None else str(job_type),
                top=top)
            snapshot["schema"] = SERVE_SCHEMA
            return snapshot
        if method == "server.shutdown":
            self.request_shutdown()
            return {"stopping": True}
        raise LookupError(method)


def _job_id(params: Dict[str, object]) -> str:
    job_id = params.get("id")
    if not isinstance(job_id, str) or not job_id:
        raise SpecError("params.id must be a job id string", field="id")
    return job_id


class _RpcHandler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`BenchServer` via subclass."""

    bench: BenchServer
    protocol_version = "HTTP/1.1"
    server_version = "sdvbs-serve/1"

    # ------------------------------------------------------------------
    # Logging: the default handler prints every request to stderr — a
    # paced load test would drown the operator's terminal.  Instead the
    # completion hook below feeds the structured EventLog (gated on
    # --access-log) and the metrics registry (always).

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        return

    def log_error(self, format: str, *args: object) -> None:  # noqa: A002
        """Protocol-level failures land in the event log unconditionally."""
        bench = getattr(self, "bench", None)
        if bench is not None:
            bench.manager.events.emit(
                "http.error", level="warning", message=format % args,
                request_id=getattr(self, "_request_id", None))

    def log_request(self, code: object = "-", size: object = "-") -> None:
        """One structured access event + metrics sample per response."""
        bench = getattr(self, "bench", None)
        if bench is None:
            return
        try:
            status = int(code)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            status = 0
        started = getattr(self, "_started", None)
        duration = (time.perf_counter() - started
                    if started is not None else None)
        method = getattr(self, "command", None) or "?"
        bench.manager.metrics.inc(
            metric_key("http.requests", method=str(method),
                       code=str(status)))
        if duration is not None:
            bench.manager.metrics.observe("http.request_seconds", duration)
        if bench.access_log:
            bench.manager.events.emit(
                "http.access",
                method=str(method),
                path=getattr(self, "path", None),
                status=status,
                duration_ms=(round(duration * 1000.0, 3)
                             if duration is not None else None),
                client=str(self.client_address[0]),
                request_id=getattr(self, "_request_id", None))

    # ------------------------------------------------------------------
    # Per-request identity

    def _begin(self) -> str:
        """Stamp the request start time and resolve its request id."""
        self._started = time.perf_counter()
        header = self.headers.get("X-Request-Id", "")
        rid = "".join(ch for ch in header if ch.isprintable()).strip()[:64]
        self._request_id = rid or uuid.uuid4().hex[:12]
        return self._request_id

    def _send_json(self, status: int, body: Dict[str, object]) -> None:
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        rid = getattr(self, "_request_id", None)
        if rid:
            self.send_header("X-Request-Id", rid)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _client(self) -> str:
        """Client identity for rate limiting: header, else remote addr."""
        header = self.headers.get("X-SDVBS-Client")
        if header:
            return header
        return str(self.client_address[0])

    # ------------------------------------------------------------------
    # GET: health + metrics + artifact streaming

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        self._begin()
        if self.path == "/healthz":
            status, body = self.bench.health()
            self._send_json(status, body)
            return
        if self.path == "/metrics":
            payload = render_prometheus(
                self.bench.manager.metrics).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
            rid = getattr(self, "_request_id", None)
            if rid:
                self.send_header("X-Request-Id", rid)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        if self.path.startswith("/artifacts/"):
            parts = self.path.split("/")
            # /artifacts/<job_id>/<name> -> ["", "artifacts", id, name]
            if len(parts) != 4 or not all(parts[2:]):
                self._send_json(404, {"error": "expected "
                                      "/artifacts/<job-id>/<name>"})
                return
            job_id, name = parts[2], parts[3]
            if job_id == "profile":
                # Continuous-profiling aggregates belong to no single
                # job: /artifacts/profile/<job type>.collapsed renders
                # the live per-type flamegraph instead.
                self._send_profile_aggregate(name)
                return
            try:
                path = self.bench.manager.artifact_path(job_id, name)
            except JobError as exc:
                self._send_json(404, {"error": exc.message, **exc.data})
                return
            try:
                with open(path, "rb") as handle:
                    payload = handle.read()
            except OSError as exc:
                self._send_json(500, {"error": f"artifact unreadable: {exc}"})
                return
            self.send_response(200)
            self.send_header("Content-Type", _content_type(name))
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        self._send_json(404, {"error": f"no such path {self.path!r}"})

    def _send_profile_aggregate(self, name: str) -> None:
        """``/artifacts/profile/<job type>.collapsed`` — live aggregate."""
        if not name.endswith(".collapsed"):
            self._send_json(404, {
                "error": "expected /artifacts/profile/<job-type>.collapsed"})
            return
        job_type = name[:-len(".collapsed")]
        profiler = self.bench.manager.profiler
        text = (profiler.collapsed(job_type)
                if profiler is not None else None)
        if text is None:
            self._send_json(404, {
                "error": f"no profile aggregate for job type {job_type!r} "
                "(is the server profiling? has a job of this type run?)"})
            return
        payload = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", _content_type(name))
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    # ------------------------------------------------------------------
    # POST: JSON-RPC

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        self._begin()
        if self.path not in ("/", "/rpc"):
            self._send_json(404, {"error": f"no such path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length > 0 else b""
        try:
            request = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_json(400, rpc_error(
                PARSE_ERROR, f"request body is not valid JSON: {exc}"))
            return
        if isinstance(request, list):
            self._send_json(400, rpc_error(
                INVALID_REQUEST,
                "batch requests are not supported; send one request "
                "object per POST"))
            return
        if not isinstance(request, dict) or request.get("jsonrpc") != "2.0":
            self._send_json(400, rpc_error(
                INVALID_REQUEST,
                'expected a JSON-RPC 2.0 request object with "jsonrpc": '
                '"2.0"'))
            return
        request_id = request.get("id")
        method = request.get("method")
        if not isinstance(method, str):
            self._send_json(400, rpc_error(
                INVALID_REQUEST, "method must be a string",
                request_id=request_id))
            return
        params = request.get("params", {})
        if params is None:
            params = {}
        if not isinstance(params, dict):
            self._send_json(400, rpc_error(
                INVALID_PARAMS, "params must be an object",
                request_id=request_id))
            return
        if (self.bench._shutting_down
                and method not in ("server.info", "server.metrics",
                                   "server.profile")):
            self._send_json(503, rpc_error(
                SHUTTING_DOWN, "server is shutting down",
                request_id=request_id))
            return
        try:
            result = self.bench.dispatch(method, params, self._client(),
                                         request_id=self._request_id)
        except LookupError:
            self._send_json(404, rpc_error(
                METHOD_NOT_FOUND, f"unknown method {method!r}",
                request_id=request_id))
            return
        except JobError as exc:
            code = ERROR_CODES.get(type(exc), INTERNAL_ERROR)
            status = {QUEUE_FULL: 429, RATE_LIMITED: 429,
                      SHUTTING_DOWN: 503}.get(code, 400)
            self._send_json(status, rpc_error(
                code, exc.message, data=exc.data or None,
                request_id=request_id))
            return
        except Exception as exc:  # noqa: BLE001 — wire boundary
            self._send_json(500, rpc_error(
                INTERNAL_ERROR, f"{type(exc).__name__}: {exc}",
                request_id=request_id))
            return
        self._send_json(200, rpc_result(result, request_id))


def make_server(host: str = "127.0.0.1", port: int = 0,
                workers: int = 2, max_queue: int = 16,
                low_watermark: Optional[int] = None,
                high_watermark: Optional[int] = None,
                rate_limit: float = 0.0,
                rate_burst: Optional[int] = None,
                history_db: Optional[str] = None,
                work_dir: Optional[str] = None,
                access_log: bool = False,
                log_file: Optional[str] = None,
                profile_interval: float = 0.0) -> BenchServer:
    """Construct a server + manager pair from flat CLI-style knobs.

    ``log_file`` attaches a JSON-lines sink to the event log (one
    object per line, appended and flushed per event); ``access_log``
    additionally emits one ``http.access`` event per HTTP response.
    ``profile_interval`` > 0 turns on continuous profiling: every
    worker samples its own stack at that interval while executing,
    merging into per-job-type aggregates (``server.profile``).
    """
    events = EventLog(sink=log_file) if log_file else None
    manager = JobManager(
        workers=workers,
        max_queue=max_queue,
        low_watermark=low_watermark,
        high_watermark=high_watermark,
        rate_limit=rate_limit,
        rate_burst=rate_burst,
        history_db=history_db,
        work_dir=work_dir,
        events=events,
        profile_interval=profile_interval,
    )
    return BenchServer(manager, host=host, port=port,
                       access_log=access_log)
