"""Sharded suite execution: plan, run (checkpointed, resumable), merge.

The full benchmark matrix — 9 applications x 3 sizes x variants x 2
kernel backends x repeats — is the suite's unit of scale, and at scale a
killed or partial sweep must be cheap to *resume*, not re-run.  This
module splits the matrix into independent shards in the style of a
distributed split/execute/merge pipeline:

* :func:`plan_shards` deterministically partitions the
  (benchmark, size, variant, backend) grid into ``count`` shard specs.
  Every cell gets a stable, human-readable **cell id**
  (``disparity:CIF:v0:fast``) and a global ``plan_index``; the whole
  plan is stamped with a :func:`plan_digest` hash so checkpoints and
  exports from different plans can never be merged silently.  The split
  is round-robin by plan index, so each shard receives a comparable mix
  of small and large cells.
* :func:`run_shard` executes one spec cell by cell, appending one
  **checkpoint** line per completed cell (flushed and fsynced — a
  crash loses at most the in-flight cell, never a completed one).
  With ``resume=True`` existing checkpoints are loaded first and only
  the missing cells execute; a truncated trailing line (killed mid
  write) is skipped and its cell re-runs.
* :func:`merge_shards` folds shard exports back into one
  :class:`~repro.core.types.SuiteResult` in global plan order, with a
  deterministic merged manifest so history ingest of a re-merge is
  idempotent (same manifest hash, ``INSERT OR IGNORE`` adds nothing).

Shards are plain JSON files with no shared state, so they can run in
separate processes, CI matrix jobs, or different hosts entirely; the
merge step is the only rendezvous.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .backend import BACKENDS, DEFAULT_BACKEND
from .registry import all_benchmarks, get_benchmark
from .runner import ALL_SIZES, run_cell
from .types import BenchmarkRun, InputSize, SuiteResult

#: Schema stamped on shard spec files written by :func:`plan_shards`.
SHARD_SPEC_SCHEMA = "sdvbs-repro/shard-spec/v1"
#: Schema stamped on every checkpoint line written by :func:`run_shard`.
CHECKPOINT_SCHEMA = "sdvbs-repro/shard-checkpoint/v1"


@dataclass(frozen=True)
class CellSpec:
    """One executable grid cell: (benchmark, size, variant, backend).

    ``plan_index`` is the cell's position in the full plan's
    deterministic nested-loop order (benchmark, then size, then variant,
    then backend) — the merger uses it to restore global ordering no
    matter how cells were scattered across shards.
    """

    benchmark: str
    size: str
    variant: int
    backend: str
    plan_index: int

    @property
    def cell_id(self) -> str:
        """Stable human-readable identity, e.g. ``disparity:CIF:v0:fast``."""
        return f"{self.benchmark}:{self.size}:v{self.variant}:{self.backend}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.cell_id,
            "benchmark": self.benchmark,
            "size": self.size,
            "variant": self.variant,
            "backend": self.backend,
            "plan_index": self.plan_index,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CellSpec":
        return cls(
            benchmark=str(payload["benchmark"]),
            size=str(payload["size"]),
            variant=int(payload["variant"]),  # type: ignore[arg-type]
            backend=str(payload["backend"]),
            plan_index=int(payload["plan_index"]),  # type: ignore[arg-type]
        )


@dataclass
class ShardSpec:
    """One shard: a subset of the plan's cells plus the measurement knobs."""

    index: int
    count: int
    plan: str
    warmup: int
    repeats: int
    cells: List[CellSpec] = field(default_factory=list)

    def cell_ids(self) -> List[str]:
        return [cell.cell_id for cell in self.cells]

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SHARD_SPEC_SCHEMA,
            "plan": self.plan,
            "index": self.index,
            "count": self.count,
            "measurement": {"warmup": self.warmup, "repeats": self.repeats},
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ShardSpec":
        schema = payload.get("schema")
        if schema != SHARD_SPEC_SCHEMA:
            raise ValueError(f"unsupported shard spec schema {schema!r}")
        measurement = payload.get("measurement", {})
        if not isinstance(measurement, dict):
            measurement = {}
        return cls(
            index=int(payload["index"]),  # type: ignore[arg-type]
            count=int(payload["count"]),  # type: ignore[arg-type]
            plan=str(payload["plan"]),
            warmup=int(measurement.get("warmup", 0)),
            repeats=int(measurement.get("repeats", 1)),
            cells=[CellSpec.from_dict(c)
                   for c in payload.get("cells", [])],  # type: ignore[union-attr]
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def read(cls, path: str) -> "ShardSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def plan_cells(slugs: Optional[Sequence[str]] = None,
               sizes: Sequence[InputSize] = ALL_SIZES,
               variants: Sequence[int] = (0,),
               backends: Sequence[str] = (DEFAULT_BACKEND,)
               ) -> List[CellSpec]:
    """The full grid in deterministic nested-loop order.

    Mirrors :func:`~repro.core.runner.run_suite`'s grid (benchmark,
    size, variant) with the kernel backend as the innermost dimension.
    Unknown slugs or backends raise immediately — a plan must never
    discover bad cells halfway through a sweep.
    """
    if slugs is None:
        benchmarks = [b.slug for b in all_benchmarks()]
    else:
        benchmarks = [get_benchmark(slug).slug for slug in slugs]
    for backend in backends:
        if backend not in BACKENDS:
            known = ", ".join(sorted(BACKENDS))
            raise ValueError(f"unknown backend {backend!r}; known: {known}")
    cells: List[CellSpec] = []
    for slug in benchmarks:
        for size in sizes:
            for variant in variants:
                for backend in backends:
                    cells.append(CellSpec(
                        benchmark=slug,
                        size=size.name,
                        variant=int(variant),
                        backend=backend,
                        plan_index=len(cells),
                    ))
    return cells


def plan_digest(cells: Sequence[CellSpec], warmup: int, repeats: int) -> str:
    """Stable hash identifying one plan: the cell grid + measurement knobs.

    Stamped on every shard spec, checkpoint line and shard export so the
    merger can refuse to combine results from different plans.
    """
    canonical = json.dumps(
        {
            "cells": [cell.cell_id for cell in cells],
            "warmup": warmup,
            "repeats": repeats,
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def plan_shards(count: int,
                slugs: Optional[Sequence[str]] = None,
                sizes: Sequence[InputSize] = ALL_SIZES,
                variants: Sequence[int] = (0,),
                backends: Sequence[str] = (DEFAULT_BACKEND,),
                warmup: int = 0,
                repeats: int = 1) -> List[ShardSpec]:
    """Split the grid into ``count`` shard specs, deterministically.

    Cells are dealt round-robin by plan index (``cells[i::count]``), so
    every shard gets a comparable mix of cheap and expensive cells
    instead of one shard inheriting all the CIF work.  The same
    arguments always produce byte-identical specs — independent hosts
    can each run ``plan`` locally and agree on the split.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    cells = plan_cells(slugs, sizes, variants, backends)
    digest = plan_digest(cells, warmup, repeats)
    return [
        ShardSpec(
            index=index,
            count=count,
            plan=digest,
            warmup=warmup,
            repeats=repeats,
            cells=cells[index::count],
        )
        for index in range(count)
    ]


# ----------------------------------------------------------------------
# Checkpointed execution


def default_checkpoint_path(spec_path: str) -> str:
    """``plan/shard-000.json`` -> ``plan/shard-000.ckpt.jsonl``."""
    stem = spec_path[:-5] if spec_path.endswith(".json") else spec_path
    return stem + ".ckpt.jsonl"


def load_checkpoints(path: str, plan: str) -> Dict[str, BenchmarkRun]:
    """Completed runs recorded in a checkpoint file, keyed by cell id.

    Crash-tolerant: undecodable or truncated lines (a writer killed mid
    append) are skipped, so their cells simply re-execute.  Lines from a
    different plan are skipped with a warning — stale checkpoints must
    not satisfy cells of a new plan.
    """
    from .export import run_from_dict

    completed: Dict[str, BenchmarkRun] = {}
    foreign = 0
    if not os.path.exists(path):
        return completed
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if payload.get("schema") != CHECKPOINT_SCHEMA:
                    continue
                if payload.get("plan") != plan:
                    foreign += 1
                    continue
                cell_id = str(payload["cell"])
                completed[cell_id] = run_from_dict(payload["run"])
            except (ValueError, KeyError, TypeError):
                continue
    if foreign:
        warnings.warn(
            f"{path}: skipped {foreign} checkpoint line(s) from a different "
            f"plan (expected {plan})",
            RuntimeWarning,
            stacklevel=2,
        )
    return completed


def append_checkpoint(handle, spec: ShardSpec, cell: CellSpec,
                      run: BenchmarkRun) -> None:
    """Append one completed cell to an open checkpoint stream.

    Flushed and fsynced per cell: after a kill, every fully written line
    is recoverable and at most the in-flight cell is lost.
    """
    from .export import run_to_dict

    line = json.dumps(
        {
            "schema": CHECKPOINT_SCHEMA,
            "plan": spec.plan,
            "shard": spec.index,
            "cell": cell.cell_id,
            "completed": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "run": run_to_dict(run),
        },
        sort_keys=True,
    )
    handle.write(line + "\n")
    handle.flush()
    os.fsync(handle.fileno())


#: Executes one cell: (cell, spec) -> BenchmarkRun.  Injectable so tests
#: can simulate kills and count executions without running real kernels.
CellRunner = Callable[[CellSpec, ShardSpec], BenchmarkRun]


def _default_runner(cell: CellSpec, spec: ShardSpec) -> BenchmarkRun:
    """Execute one cell through the suite runner's cell-addressable path."""
    run = run_cell(cell.benchmark, cell.size, cell.variant,
                   warmup=spec.warmup, repeats=spec.repeats,
                   backend=cell.backend)
    # Checkpoints are durable JSON; application outputs can be huge and
    # only timing survives serialization anyway, so drop them (the
    # process-pool path does the same before shipping runs over a pipe).
    run.outputs = {}
    return run


@dataclass
class ShardRunReport:
    """Outcome of one :func:`run_shard` invocation."""

    spec: ShardSpec
    result: SuiteResult
    executed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)


def run_shard(spec: ShardSpec,
              checkpoint_path: str,
              resume: bool = False,
              runner: Optional[CellRunner] = None) -> ShardRunReport:
    """Execute one shard spec with per-cell checkpointing.

    Every completed cell is appended to ``checkpoint_path`` before the
    next one starts.  ``resume=True`` loads existing checkpoints and
    executes only the missing cells — the crash-recovery path: a run
    killed after K of M cells re-executes exactly M-K.  Without
    ``resume``, a pre-existing checkpoint file is an error (refusing to
    guess whether to redo or continue) unless it holds no cells of this
    plan.

    The returned report's ``result`` covers *all* of the shard's cells
    (checkpointed + freshly executed) in spec order, with the shard
    provenance block attached for the merger.
    """
    if runner is None:
        runner = _default_runner
    completed: Dict[str, BenchmarkRun] = {}
    if os.path.exists(checkpoint_path):
        existing = load_checkpoints(checkpoint_path, spec.plan)
        if existing and not resume:
            raise FileExistsError(
                f"{checkpoint_path} already holds {len(existing)} completed "
                f"cell(s) of this plan; resume (--resume) to continue or "
                "remove the file to start over"
            )
        if resume:
            completed = existing
    report = ShardRunReport(spec=spec, result=SuiteResult())
    with open(checkpoint_path, "a", encoding="utf-8") as handle:
        for cell in spec.cells:
            if cell.cell_id in completed:
                report.skipped.append(cell.cell_id)
                continue
            run = runner(cell, spec)
            completed[cell.cell_id] = run
            append_checkpoint(handle, spec, cell, run)
            report.executed.append(cell.cell_id)
    for cell in spec.cells:
        report.result.runs.append(completed[cell.cell_id])
    report.result.shard = shard_block(spec)
    return report


def shard_block(spec: ShardSpec) -> Dict[str, object]:
    """The ``shard`` provenance block a shard export carries (schema v6)."""
    return {
        "plan": spec.plan,
        "index": spec.index,
        "count": spec.count,
        "measurement": {"warmup": spec.warmup, "repeats": spec.repeats},
        "cells": [cell.to_dict() for cell in spec.cells],
    }


# ----------------------------------------------------------------------
# Merge


@dataclass
class MergeReport:
    """Outcome of :func:`merge_shards`: the folded result + bookkeeping."""

    result: SuiteResult
    plan: str
    merged_from: List[int] = field(default_factory=list)
    expected_shards: int = 0
    duplicates: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return (not self.missing
                and len(self.merged_from) == self.expected_shards)


def merge_manifest(payloads: Sequence[Dict[str, object]],
                   plan: str) -> Dict[str, object]:
    """A deterministic manifest for the merged export.

    Based on the first shard's manifest (shards normally share a host;
    a heterogeneous sweep keeps the first, which is as honest as one
    host row can be about many machines), with ``argv`` replaced by a
    canonical merge stanza.  Re-merging the same shard exports therefore
    produces an identical manifest — and an identical
    :func:`~repro.core.history.manifest_hash`, which is what makes
    history ingest of a re-merge idempotent.
    """
    manifest: Dict[str, object] = {}
    for payload in payloads:
        candidate = payload.get("manifest")
        if isinstance(candidate, dict):
            manifest = dict(candidate)
            break
    manifest["argv"] = ["shard", "merge", plan]
    return manifest


def merge_shards(payloads: Sequence[Dict[str, object]]) -> MergeReport:
    """Fold shard export payloads into one suite result, in plan order.

    All payloads must be shard exports of the *same* plan (mismatched
    plan hashes raise — results from different grids or measurement
    knobs are not comparable).  A cell appearing in several exports
    (overlapping checkpoints) keeps its first occurrence and is listed
    under ``duplicates``; cells named by a shard block but carrying no
    run land in ``missing``.  Merging is deterministic: the same inputs
    produce an identical merged export, byte for byte apart from
    timestamps.
    """
    from .export import READABLE_SCHEMAS, result_from_dict

    if not payloads:
        raise ValueError("nothing to merge: no shard exports given")
    plans = []
    for payload in payloads:
        schema = payload.get("schema")
        if schema not in READABLE_SCHEMAS:
            raise ValueError(f"unsupported export schema {schema!r}")
        block = payload.get("shard")
        if not isinstance(block, dict):
            raise ValueError(
                "export carries no shard block; merge only combines "
                "shard exports (from `sdvbs shard run`)"
            )
        plans.append(str(block["plan"]))
    if len(set(plans)) != 1:
        raise ValueError(
            f"cannot merge shards from different plans: {sorted(set(plans))}"
        )
    plan = plans[0]
    report = MergeReport(result=SuiteResult(), plan=plan)

    ordered: List[Tuple[int, str, BenchmarkRun]] = []
    seen: Dict[str, int] = {}
    expected: List[Tuple[int, str]] = []
    for payload in payloads:
        block: Dict[str, object] = payload["shard"]  # type: ignore[assignment]
        index = int(block.get("index", -1))  # type: ignore[arg-type]
        if index not in report.merged_from:
            report.merged_from.append(index)
        report.expected_shards = max(report.expected_shards,
                                     int(block.get("count", 0)))  # type: ignore[arg-type]
        cells: List[Dict[str, object]] = list(block.get("cells", []))  # type: ignore[arg-type]
        shard_result = result_from_dict(payload)
        runs_by_position = list(shard_result.runs)
        for position, cell in enumerate(cells):
            cell_id = str(cell.get("id"))
            plan_index = int(cell.get("plan_index", position))  # type: ignore[arg-type]
            expected.append((plan_index, cell_id))
            if position >= len(runs_by_position):
                continue
            if cell_id in seen:
                report.duplicates.append(cell_id)
                continue
            seen[cell_id] = plan_index
            ordered.append((plan_index, cell_id, runs_by_position[position]))

    ordered.sort(key=lambda item: item[0])
    report.result.runs = [run for _, _, run in ordered]
    report.missing = sorted(
        {cell_id for _, cell_id in expected if cell_id not in seen}
    )
    report.result.manifest = merge_manifest(payloads, plan)
    report.result.shard = {
        "plan": plan,
        "count": report.expected_shards,
        "merged_from": sorted(report.merged_from),
        "cells": [{"id": cell_id, "plan_index": plan_index}
                  for plan_index, cell_id, _ in ordered],
    }
    if report.missing:
        report.result.shard["missing"] = list(report.missing)
    return report
