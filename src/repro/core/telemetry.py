"""Operational telemetry for the benchmark service: logs, /metrics, top.

PR 8 made ``sdvbs serve`` a long-running system; this module makes it
*observable*.  SD-VBS characterizes vision workloads by where their time
goes (Figures 2/3), and the serving path deserves the same treatment: an
operator must be able to answer "what is the server doing right now, and
where did this job's time go" without attaching a debugger.  Three
pieces, all stdlib:

* :class:`EventLog` — a leveled, structured JSON-lines event logger.
  One event per request, admission decision, state transition, eviction,
  cache hit and worker pick-up lands in a bounded ring buffer (always)
  and an optional append-only file sink.  The HTTP access log rides the
  same channel, so every line an operator greps has the same shape.
* A **Prometheus text-exposition renderer** over
  :class:`~repro.core.metrics.MetricsRegistry`: counters become
  ``_total`` series, gauges pass through, and
  :class:`~repro.core.metrics.LogHistogram` instruments render as
  cumulative ``_bucket``/``_sum``/``_count`` series with proper
  ``HELP``/``TYPE`` lines and label escaping.  Labels use the
  :func:`metric_key` convention — registry keys stay flat strings, the
  renderer parses them back into families.  :func:`lint_exposition`
  re-parses the output (CI uses it as a line-format gate).
* :func:`top_snapshot` / :func:`render_top` — the data model and
  terminal view behind ``sdvbs top``: queue depth, per-state job
  counts, worker utilization, cache hit rate and per-job-type
  queue-wait / execution-latency percentiles, polled from
  ``server.info`` and ``server.metrics``.

Everything here is pull-based and allocation-bounded: the ring buffer
caps memory, histograms are already bounded, and the exposition is
rendered from a locked snapshot so a scrape never observes a torn
histogram.
"""

from __future__ import annotations

import io
import json
import re
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .metrics import LogHistogram, MetricsRegistry

#: Schema stamp carried by every structured log record.
EVENTS_SCHEMA = "sdvbs-repro/serve-events/v1"

#: Severity levels, least severe first (index = rank).
LEVELS = ("debug", "info", "warning", "error")

#: The content type Prometheus scrapers expect for text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default namespace prefixed onto every exposed metric name.
METRICS_NAMESPACE = "sdvbs"


# ----------------------------------------------------------------------
# Structured JSON-lines event log


class EventLog:
    """Leveled structured logger: bounded ring buffer + optional sink.

    Every event is one JSON object ``{"ts", "level", "event", ...}``
    with caller-supplied fields flattened in.  The newest ``capacity``
    records are always retained in memory (an operator can pull them
    over RPC without any file configured); a ``sink`` — a path or a
    writable text file object — additionally receives every record as
    one JSON line, flushed per event so a crash loses at most the line
    being written.

    Events below ``level`` are counted (``suppressed``) but neither
    buffered nor written; the threshold is mutable at runtime.  All
    methods are thread-safe behind one lock — emitters are request
    handlers and worker threads.

    A sink write error (full disk, closed file) disables the sink so it
    can never take the server down — but *observably*: the error text is
    kept as ``sink_error``, the monotonic ``sink_disabled`` counter
    increments, a ``warning`` event lands in the ring buffer, and the
    optional ``on_sink_disabled`` hook fires (the job manager points it
    at its metrics registry so ``/metrics`` carries the loss).
    """

    def __init__(self, capacity: int = 2048,
                 sink: Optional[object] = None,
                 level: str = "debug",
                 clock: Callable[[], float] = time.time) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r} (choose from "
                             f"{', '.join(LEVELS)})")
        self.capacity = int(capacity)
        self.level = level
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: List[Dict[str, object]] = []
        self._start = 0  # ring read offset
        self.emitted = 0
        self.suppressed = 0
        #: Times a file sink was disabled by a write error (monotonic).
        self.sink_disabled = 0
        #: The error that disabled the most recent sink, or ``None``.
        self.sink_error: Optional[str] = None
        #: Optional hook called with the error text on sink disable.
        self.on_sink_disabled: Optional[Callable[[str], None]] = None
        self._file: Optional[io.TextIOBase] = None
        self._owns_file = False
        if sink is not None:
            if isinstance(sink, (str, bytes)):
                self._file = open(sink, "a", encoding="utf-8")  # noqa: SIM115 — long-lived sink
                self._owns_file = True
            else:
                self._file = sink  # type: ignore[assignment]

    # ------------------------------------------------------------------

    def emit(self, event: str, level: str = "info",
             **fields: object) -> Optional[Dict[str, object]]:
        """Record one event; returns the record or ``None`` if suppressed.

        ``None``-valued fields are dropped so callers can pass optional
        context (request ids, errors) unconditionally.
        """
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}")
        record: Dict[str, object] = {
            "ts": round(float(self._clock()), 6),
            "level": level,
            "event": event,
        }
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        hook: Optional[Callable[[str], None]] = None
        sink_error: Optional[str] = None
        with self._lock:
            if LEVELS.index(level) < LEVELS.index(self.level):
                self.suppressed += 1
                return None
            self.emitted += 1
            self._append(record)
            if self._file is not None:
                try:
                    self._file.write(json.dumps(record, sort_keys=True)
                                     + "\n")
                    self._file.flush()
                except (OSError, ValueError) as exc:
                    # A full disk or a closed sink must never take the
                    # server down; the ring buffer still has the event.
                    # But the loss must be *visible*: count it, keep the
                    # reason, and leave a warning in the ring (bypassing
                    # the level threshold — an operator silencing info
                    # noise still needs to learn their log file died).
                    self._file = None
                    self.sink_disabled += 1
                    sink_error = f"{type(exc).__name__}: {exc}"
                    self.sink_error = sink_error
                    self.emitted += 1
                    self._append({
                        "ts": record["ts"],
                        "level": "warning",
                        "event": "events.sink_disabled",
                        "error": sink_error,
                    })
                    hook = self.on_sink_disabled
        if hook is not None and sink_error is not None:
            # Outside the lock: the hook typically pokes a metrics
            # registry with its own locking.
            hook(sink_error)
        return record

    def _append(self, record: Dict[str, object]) -> None:
        """Ring-buffer append; caller must hold the lock."""
        if len(self._ring) < self.capacity:
            self._ring.append(record)
        else:
            self._ring[self._start] = record
            self._start = (self._start + 1) % self.capacity

    def recent(self, limit: int = 100, level: Optional[str] = None,
               event: Optional[str] = None) -> List[Dict[str, object]]:
        """The newest matching records, oldest first."""
        if level is not None and level not in LEVELS:
            raise ValueError(f"unknown level {level!r}")
        with self._lock:
            ordered = (self._ring[self._start:] + self._ring[:self._start])
        if level is not None:
            floor = LEVELS.index(level)
            ordered = [r for r in ordered
                       if LEVELS.index(str(r["level"])) >= floor]
        if event is not None:
            ordered = [r for r in ordered if r["event"] == event]
        return ordered[-max(1, int(limit)):]

    def to_jsonl(self) -> str:
        """The ring buffer as JSON lines (newest last)."""
        return "".join(json.dumps(record, sort_keys=True) + "\n"
                       for record in self.recent(limit=self.capacity))

    def close(self) -> None:
        """Close the file sink if this log opened it."""
        with self._lock:
            if self._file is not None and self._owns_file:
                self._file.close()
            self._file = None


# ----------------------------------------------------------------------
# Label convention for flat MetricsRegistry keys


_LABEL_RE = re.compile(r"^(?P<name>[^{]+)\{(?P<labels>.*)\}$")


def metric_key(name: str, **labels: object) -> str:
    """Encode ``name`` plus labels into one flat registry key.

    ``MetricsRegistry`` keys are plain strings; this convention —
    ``name{k=v,k2=v2}`` with keys sorted — lets instruments carry
    Prometheus-style dimensions (``job.exec_seconds{type=run}``) while
    the registry stays a dictionary.  :func:`parse_metric_key` inverts
    it.  Label values must not contain ``,`` ``=`` ``{`` ``}``.
    """
    if not labels:
        return name
    for key, value in labels.items():
        text = str(value)
        if any(ch in text for ch in ",={}"):
            raise ValueError(f"label value {text!r} contains a reserved "
                             "character")
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a :func:`metric_key` back into ``(name, labels)``."""
    match = _LABEL_RE.match(key)
    if match is None:
        return key, {}
    labels: Dict[str, str] = {}
    inner = match.group("labels")
    if inner:
        for part in inner.split(","):
            label, _, value = part.partition("=")
            labels[label] = value
    return match.group("name"), labels


# ----------------------------------------------------------------------
# Prometheus text exposition

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: HELP strings for the serving layer's metric catalog (SERVING.md).
HELP_TEXT: Dict[str, str] = {
    "jobs.submitted": "Job submissions received (before admission)",
    "jobs.accepted": "Jobs admitted into the queue",
    "jobs.completed": "Jobs that finished successfully",
    "jobs.failed": "Jobs whose executor raised",
    "jobs.cancelled": "Queued jobs cancelled by a client",
    "jobs.evicted": "Queued jobs evicted by high-priority submissions",
    "rejected.queue_full": "Submissions rejected at the hard queue cap",
    "rejected.backpressure":
        "Submissions rejected by watermark backpressure",
    "rejected.rate_limited":
        "Submissions rejected by the per-client token bucket",
    "cache.hits": "Submissions served from the result cache",
    "cache.misses": "Admitted submissions that missed the result cache",
    "history.recorded_cells": "Suite cells recorded into the history store",
    "http.requests": "HTTP requests handled, by method",
    "queue.depth": "Jobs currently queued (not yet picked up)",
    "workers.busy": "Worker threads currently executing a job",
    "workers.total": "Worker threads in the pool",
    "server.saturated":
        "1 while watermark backpressure admits only high priority",
    "server.shutting_down": "1 once shutdown has been requested",
    "jobs.state": "Jobs currently in each lifecycle state",
    "job.queue_wait_seconds":
        "Seconds a job waited in the queue before a worker picked it up",
    "job.exec_seconds": "Seconds a worker spent executing a job",
    "job.seconds": "End-to-end executor seconds per completed job",
    "http.request_seconds": "HTTP request handling latency",
    "events.sink_disabled":
        "Event-log file sinks disabled after a write error",
    "profile.jobs_sampled":
        "Jobs whose execution the continuous profiler sampled",
    "profile.samples":
        "Stack samples collected by the continuous profiler",
    "profile.overhead_pct":
        "Measured continuous-profiler overhead, percent of execution time",
}


def sanitize_metric_name(name: str, namespace: str = METRICS_NAMESPACE
                         ) -> str:
    """Map an internal metric name onto a legal Prometheus name.

    Dots, slashes and dashes become underscores, illegal characters are
    dropped, and the namespace is prefixed (``jobs.submitted`` →
    ``sdvbs_jobs_submitted``).  Idempotent on already-legal names.
    """
    flat = re.sub(r"[./\- ]", "_", name)
    flat = re.sub(r"[^a-zA-Z0-9_:]", "", flat)
    flat = re.sub(r"__+", "_", flat).strip("_")
    if not flat:
        flat = "metric"
    if flat[0].isdigit():
        flat = "_" + flat
    if namespace:
        return f"{namespace}_{flat}"
    return flat


def sanitize_label_name(name: str) -> str:
    """Map a label key onto ``[a-zA-Z_][a-zA-Z0-9_]*`` (never empty)."""
    flat = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    flat = re.sub(r"__+", "_", flat).strip("_") or "label"
    if flat[0].isdigit():
        flat = "_" + flat
    return flat


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the exposition format."""
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def escape_help(text: str) -> str:
    """Backslash-escape a HELP string per the exposition format."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_fragment(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_label_name(key)}="{escape_label_value(str(labels[key]))}"'
        for key in sorted(labels))
    return "{" + inner + "}"


def _histogram_lines(name: str, labels: Mapping[str, str],
                     histogram: LogHistogram) -> List[str]:
    """Cumulative ``_bucket``/``_sum``/``_count`` lines for one series.

    Bucket bounds are the histogram's occupied log-bucket upper edges;
    cumulative counts are monotone by construction and the ``+Inf``
    bucket equals the exact observation count, so the rendered series
    agrees with the registry's aggregates no matter how many samples
    were folded into the bounded buckets.
    """
    lines: List[str] = []
    cumulative = 0
    for _low, high, bucket_count in histogram.nonzero_buckets():
        cumulative += bucket_count
        bucket_labels = dict(labels)
        bucket_labels["le"] = repr(float(high))
        lines.append(f"{name}_bucket{_labels_fragment(bucket_labels)} "
                     f"{cumulative}")
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    lines.append(f"{name}_bucket{_labels_fragment(inf_labels)} "
                 f"{histogram.count}")
    lines.append(f"{name}_sum{_labels_fragment(labels)} "
                 f"{repr(float(histogram.total))}")
    lines.append(f"{name}_count{_labels_fragment(labels)} "
                 f"{histogram.count}")
    return lines


def render_prometheus(registry: MetricsRegistry,
                      namespace: str = METRICS_NAMESPACE,
                      help_text: Optional[Mapping[str, str]] = None
                      ) -> str:
    """Render a registry as Prometheus text exposition (version 0.0.4).

    Counters render as ``<ns>_<name>_total`` with ``TYPE counter``,
    gauges pass through with ``TYPE gauge``, and every
    :class:`LogHistogram` renders as a cumulative
    ``_bucket``/``_sum``/``_count`` family with ``TYPE histogram``.
    Series sharing a base name (the :func:`metric_key` label
    convention) are grouped under one ``HELP``/``TYPE`` header.  The
    snapshot APIs of the registry are used throughout, so a render
    taken while workers mutate counters is internally consistent.
    """
    helps = dict(HELP_TEXT)
    if help_text:
        helps.update(help_text)

    def help_for(base: str) -> str:
        return escape_help(helps.get(base, f"sdvbs metric {base}"))

    lines: List[str] = []

    def families(flat: Mapping[str, object]) -> "Dict[str, List[Tuple[Dict[str, str], object]]]":
        grouped: Dict[str, List[Tuple[Dict[str, str], object]]] = {}
        for key in sorted(flat):
            base, labels = parse_metric_key(key)
            grouped.setdefault(base, []).append((labels, flat[key]))
        return grouped

    for base, series in families(registry.counters).items():
        name = sanitize_metric_name(base, namespace)
        if not name.endswith("_total"):
            name += "_total"
        lines.append(f"# HELP {name} {help_for(base)}")
        lines.append(f"# TYPE {name} counter")
        for labels, value in series:
            lines.append(f"{name}{_labels_fragment(labels)} "
                         f"{_format_value(float(value))}")  # type: ignore[arg-type]
    for base, series in families(registry.gauges).items():
        name = sanitize_metric_name(base, namespace)
        lines.append(f"# HELP {name} {help_for(base)}")
        lines.append(f"# TYPE {name} gauge")
        for labels, value in series:
            lines.append(f"{name}{_labels_fragment(labels)} "
                         f"{_format_value(float(value))}")  # type: ignore[arg-type]
    for base, series in families(registry.histogram_snapshot()).items():
        name = sanitize_metric_name(base, namespace)
        lines.append(f"# HELP {name} {help_for(base)}")
        lines.append(f"# TYPE {name} histogram")
        for labels, histogram in series:
            lines.extend(_histogram_lines(name, labels, histogram))  # type: ignore[arg-type]
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Exposition linting (tests + the CI serve-smoke gate)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$")


def lint_exposition(text: str) -> Dict[str, List[Tuple[Dict[str, str],
                                                       float]]]:
    """Parse exposition text; raise ``ValueError`` on any malformed line.

    Checks the line grammar (metric and label names, numeric values),
    that every sample is preceded by a ``TYPE`` line for its family, and
    that histogram families are internally consistent: cumulative
    ``_bucket`` counts are monotone non-decreasing in ``le`` order, the
    ``+Inf`` bucket exists and equals ``_count``.  Returns the parsed
    samples grouped by metric name — the helper the tests and the CI
    smoke job assert against.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_OK.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed HELP: {line!r}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if (len(parts) != 4 or not _NAME_OK.match(parts[2])
                    or parts[3] not in ("counter", "gauge", "histogram",
                                        "summary", "untyped")):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for part in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]'
                                   r'|\\.)*)"', raw):
                labels[part[0]] = (part[1].replace(r'\"', '"')
                                   .replace(r"\n", "\n")
                                   .replace(r"\\", "\\"))
        try:
            value = float(match.group("value").replace("+Inf", "inf"))
        except ValueError:
            raise ValueError(f"line {lineno}: non-numeric value: "
                             f"{line!r}") from None
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and family not in typed:
            raise ValueError(f"line {lineno}: sample {name!r} has no "
                             "preceding TYPE line")
        samples.setdefault(name, []).append((labels, value))
    _check_histograms(samples, typed)
    return samples


def _check_histograms(samples: Mapping[str, List[Tuple[Dict[str, str],
                                                       float]]],
                      typed: Mapping[str, str]) -> None:
    for family, kind in typed.items():
        if kind != "histogram":
            continue
        buckets = samples.get(f"{family}_bucket", [])
        counts = dict()
        for labels, value in samples.get(f"{family}_count", []):
            counts[tuple(sorted(labels.items()))] = value
        series: Dict[Tuple[Tuple[str, str], ...],
                     List[Tuple[float, float]]] = {}
        for labels, value in buckets:
            le = labels.get("le")
            if le is None:
                raise ValueError(f"{family}_bucket sample without le label")
            bound = float("inf") if le == "+Inf" else float(le)
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            series.setdefault(key, []).append((bound, value))
        for key, points in series.items():
            points.sort(key=lambda p: p[0])
            previous = -1.0
            for bound, value in points:
                if value < previous:
                    raise ValueError(
                        f"{family}_bucket{dict(key)} not cumulative at "
                        f"le={bound}")
                previous = value
            if points[-1][0] != float("inf"):
                raise ValueError(f"{family}_bucket{dict(key)} missing "
                                 "+Inf bucket")
            if key in counts and points[-1][1] != counts[key]:
                raise ValueError(
                    f"{family}: +Inf bucket {points[-1][1]} != _count "
                    f"{counts[key]}")


# ----------------------------------------------------------------------
# ``sdvbs top``: snapshot model + terminal rendering


def top_snapshot(info: Mapping[str, object],
                 metrics: Mapping[str, object]) -> Dict[str, object]:
    """Fold ``server.info`` + ``server.metrics`` into one top frame.

    ``info`` supplies config, job-state counts, cache and worker
    gauges; ``metrics`` supplies the labeled histogram summaries from
    which per-job-type queue-wait and execution-latency percentiles are
    extracted.  The result is JSON-ready — ``sdvbs top --once --json``
    prints it verbatim for scripting.
    """
    gauges: Mapping[str, object] = info.get("gauges", {})  # type: ignore[assignment]
    counters: Mapping[str, object] = info.get("counters", {})  # type: ignore[assignment]
    cache: Mapping[str, object] = info.get("cache", {})  # type: ignore[assignment]
    config: Mapping[str, object] = info.get("config", {})  # type: ignore[assignment]
    workers_total = int(config.get("workers", 0) or 0)
    busy = int(float(gauges.get("running", 0) or 0))  # type: ignore[arg-type]
    hits = float(cache.get("hits", 0) or 0)  # type: ignore[arg-type]
    misses = float(counters.get("cache.misses",
                                counters.get("jobs.accepted", 0)) or 0)  # type: ignore[arg-type]
    lookups = hits + misses
    latency: Dict[str, Dict[str, Dict[str, float]]] = {}
    histograms: Mapping[str, Mapping[str, float]] = metrics.get(
        "histograms", {})  # type: ignore[assignment]
    for key, summary in histograms.items():
        base, labels = parse_metric_key(key)
        if base == "job.queue_wait_seconds":
            slot = "queue_wait"
        elif base == "job.exec_seconds":
            slot = "exec"
        else:
            continue
        job_type = labels.get("type", "all")
        latency.setdefault(job_type, {})[slot] = {
            stat: float(summary.get(stat, 0.0))
            for stat in ("count", "sum", "mean", "p50", "p95", "p99")
        }
    rejected = sum(
        float(value) for name, value in counters.items()  # type: ignore[arg-type]
        if str(name).startswith("rejected."))
    profile: Optional[Dict[str, object]] = None
    profile_info = info.get("profile")
    if isinstance(profile_info, Mapping) and profile_info.get("enabled"):
        profile = {
            "jobs_sampled": int(profile_info.get("jobs_sampled", 0) or 0),  # type: ignore[arg-type]
            "samples": int(profile_info.get("samples", 0) or 0),  # type: ignore[arg-type]
            "overhead_pct": float(
                profile_info.get("overhead_pct", 0.0) or 0.0),  # type: ignore[arg-type]
            "job_types": sorted(profile_info.get("job_types", ())),  # type: ignore[arg-type]
        }
    events_info = info.get("events")
    sink_disabled = 0
    if isinstance(events_info, Mapping):
        sink_disabled = int(events_info.get("sink_disabled", 0) or 0)  # type: ignore[arg-type]
    return {
        "queue_depth": int(float(gauges.get("queue_depth", 0) or 0)),  # type: ignore[arg-type]
        "saturated": bool(int(float(gauges.get("saturated", 0) or 0))),  # type: ignore[arg-type]
        "shutting_down": bool(info.get("shutting_down", False)),
        "uptime_s": float(info.get("uptime_s", 0.0) or 0.0),  # type: ignore[arg-type]
        "workers": {
            "busy": busy,
            "total": workers_total,
            "utilization_pct": round(100.0 * busy / workers_total, 1)
            if workers_total else 0.0,
        },
        "jobs": {str(k): int(v) for k, v in  # type: ignore[arg-type]
                 dict(info.get("jobs", {})).items()},  # type: ignore[arg-type]
        "cache": {
            "hits": int(hits),
            "misses": int(misses),
            "hit_rate_pct": round(100.0 * hits / lookups, 1)
            if lookups else 0.0,
        },
        "rejected": int(rejected),
        "sink_disabled": sink_disabled,
        "profile": profile,
        "latency": latency,
    }


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:9.1f}"


def render_top(snapshot: Mapping[str, object]) -> str:
    """One ``sdvbs top`` frame as fixed-width terminal text."""
    workers: Mapping[str, object] = snapshot.get("workers", {})  # type: ignore[assignment]
    cache: Mapping[str, object] = snapshot.get("cache", {})  # type: ignore[assignment]
    jobs: Mapping[str, object] = snapshot.get("jobs", {})  # type: ignore[assignment]
    state = "DRAINING" if snapshot.get("shutting_down") else (
        "SATURATED" if snapshot.get("saturated") else "ok")
    uptime = float(snapshot.get("uptime_s", 0.0))  # type: ignore[arg-type]
    lines = [
        f"sdvbs top — {state}   uptime {uptime:8.1f}s",
        f"queue {snapshot.get('queue_depth', 0):>4}   workers "
        f"{workers.get('busy', 0)}/{workers.get('total', 0)} "
        f"({workers.get('utilization_pct', 0.0)}% busy)   "
        f"cache {cache.get('hits', 0)} hit / {cache.get('misses', 0)} miss "
        f"({cache.get('hit_rate_pct', 0.0)}%)   "
        f"rejected {snapshot.get('rejected', 0)}",
        "",
        "  state      " + "".join(f"{s:>11}" for s in (
            "queued", "running", "done", "failed", "cancelled", "evicted")),
        "  jobs       " + "".join(
            f"{int(jobs.get(s, 0)):>11}" for s in  # type: ignore[arg-type]
            ("queued", "running", "done", "failed", "cancelled",
             "evicted")),
        "",
        "  type       phase            count    p50 ms    p95 ms    p99 ms",
    ]
    latency: Mapping[str, Mapping[str, Mapping[str, float]]] = \
        snapshot.get("latency", {})  # type: ignore[assignment]
    if not latency:
        lines.append("  (no completed jobs yet)")
    for job_type in sorted(latency):
        for slot, label in (("queue_wait", "queue-wait"), ("exec", "exec")):
            summary = latency[job_type].get(slot)
            if summary is None:
                continue
            lines.append(
                f"  {job_type:<10} {label:<12} {int(summary['count']):>8}"
                f" {_fmt_ms(summary['p50'])} {_fmt_ms(summary['p95'])}"
                f" {_fmt_ms(summary['p99'])}")
    profile: Optional[Mapping[str, object]] = snapshot.get("profile")  # type: ignore[assignment]
    if profile:
        types = ", ".join(str(t) for t in profile.get("job_types", ()))  # type: ignore[arg-type]
        lines.append("")
        lines.append(
            f"  profiler   {int(profile.get('jobs_sampled', 0)):>4} job(s) "  # type: ignore[arg-type]
            f"sampled   {int(profile.get('samples', 0)):>7} samples   "  # type: ignore[arg-type]
            f"overhead {float(profile.get('overhead_pct', 0.0)):.2f}%"  # type: ignore[arg-type]
            + (f"   [{types}]" if types else ""))
    sink_disabled = int(snapshot.get("sink_disabled", 0) or 0)  # type: ignore[arg-type]
    if sink_disabled:
        lines.append("")
        lines.append(f"  WARNING: event-log sink disabled "
                     f"({sink_disabled} time(s)) — file logging lost")
    return "\n".join(lines) + "\n"
