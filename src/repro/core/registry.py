"""Benchmark registry: the nine SD-VBS applications and their metadata.

Each application package exports a module-level ``BENCHMARK`` descriptor
created with :class:`Benchmark`.  The registry imports those packages
lazily (so ``import repro.core`` stays cheap) and exposes lookups used by
the suite runner and the table/figure reports.

Tables I and II of the paper are pure renderings of this metadata.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from .profiler import KernelProfiler
from .types import (
    Characteristic,
    ConcentrationArea,
    InputSize,
    KernelInfo,
    ParallelismEstimate,
)

#: Untimed workload preparation: (size, variant) -> opaque workload.
SetupFn = Callable[[InputSize, int], object]

#: The timed application entry point: (workload, profiler) -> outputs.
RunFn = Callable[[object, KernelProfiler], Mapping[str, object]]

#: Provider of Table IV rows for one application at a given input size.
ParallelismFn = Callable[[InputSize], List[ParallelismEstimate]]


@dataclass(frozen=True)
class Benchmark:
    """Descriptor for one suite application.

    ``kernels`` lists the named kernels in the order the paper's Figure 3
    legend uses.  ``setup`` builds the synthetic workload (and any
    pre-trained models) *outside* the timed region — the paper times the
    vision computation on preloaded inputs; ``run`` executes it and
    attributes kernel time through the profiler.

    ``sampling_frames`` optionally maps instrumented kernel names to the
    functions whose frames the statistical sampler
    (:mod:`repro.core.sampling`) should attribute to that kernel —
    needed when a ``profiler.kernel(...)`` block's body is a factored
    helper rather than a registered dual-backend kernel (the registry's
    implementations are mapped automatically).
    """

    name: str
    slug: str
    area: ConcentrationArea
    description: str
    characteristic: Characteristic
    application_domain: str
    kernels: Sequence[KernelInfo]
    setup: SetupFn
    run: RunFn
    parallelism: Optional[ParallelismFn] = None
    in_figure2: bool = False
    sampling_frames: Optional[Mapping[str, Sequence[Callable]]] = None

    def kernel_names(self) -> List[str]:
        return [k.name for k in self.kernels]


#: Packages providing a BENCHMARK descriptor, in the paper's Table I order.
_BENCHMARK_MODULES = (
    "repro.disparity",
    "repro.tracking",
    "repro.segmentation",
    "repro.sift",
    "repro.localization",
    "repro.svm",
    "repro.face",
    "repro.stitch",
    "repro.texture",
)

_registry: Dict[str, Benchmark] = {}
_loaded = False


def _load() -> None:
    global _loaded
    if _loaded:
        return
    for module_name in _BENCHMARK_MODULES:
        module = importlib.import_module(module_name)
        benchmark = getattr(module, "BENCHMARK", None)
        if benchmark is None:
            raise ImportError(f"{module_name} does not export BENCHMARK")
        _registry[benchmark.slug] = benchmark
    _loaded = True


def all_benchmarks() -> List[Benchmark]:
    """All nine applications in Table I order."""
    _load()
    return list(_registry.values())


def get_benchmark(slug: str) -> Benchmark:
    """Look up one application by slug (e.g. ``"disparity"``)."""
    _load()
    try:
        return _registry[slug]
    except KeyError:
        known = ", ".join(sorted(_registry))
        raise KeyError(f"unknown benchmark {slug!r}; known: {known}") from None


def figure2_benchmarks() -> List[Benchmark]:
    """The six applications plotted in the paper's Figure 2."""
    return [b for b in all_benchmarks() if b.in_figure2]


def table4_benchmarks() -> List[Benchmark]:
    """Applications with a critical-path parallelism model (Table IV)."""
    return [b for b in all_benchmarks() if b.parallelism is not None]
