"""The paper's published numbers, as data.

Table IV of SD-VBS reports, per kernel, the parallelism measured by the
authors' critical-path tool and the parallelism class they assign.  This
module embeds those values so tests and reports can compare the
reproduction's estimates against the paper *programmatically*: absolute
values are tool-dependent, but within-benchmark orderings and class
labels are the shape the paper establishes.

Kernel names are this reproduction's; the mapping to the paper's
typography ("Integral Image" -> "IntegralImage", etc.) is one-to-one.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .types import ParallelismClass

#: (benchmark slug, kernel) -> (paper parallelism, paper class).
PAPER_TABLE4: Dict[Tuple[str, str], Tuple[float, ParallelismClass]] = {
    ("disparity", "Correlation"): (502.0, ParallelismClass.TLP),
    ("disparity", "IntegralImage"): (160.0, ParallelismClass.TLP),
    ("disparity", "Sort"): (1_700.0, ParallelismClass.DLP),
    ("disparity", "SSD"): (1_800.0, ParallelismClass.DLP),
    ("tracking", "Gradient"): (71.0, ParallelismClass.ILP),
    ("tracking", "GaussianFilter"): (637.0, ParallelismClass.DLP),
    ("tracking", "IntegralImage"): (1_050.0, ParallelismClass.TLP),
    ("tracking", "AreaSum"): (425.0, ParallelismClass.TLP),
    ("tracking", "MatrixInversion"): (171_000.0, ParallelismClass.DLP),
    ("sift", "SIFT"): (180.0, ParallelismClass.TLP),
    ("sift", "Interpolation"): (502.0, ParallelismClass.TLP),
    ("sift", "IntegralImage"): (16_000.0, ParallelismClass.TLP),
    ("stitch", "LSSolver"): (20_900.0, ParallelismClass.TLP),
    ("stitch", "SVD"): (12_300.0, ParallelismClass.TLP),
    ("stitch", "Convolution"): (4_500.0, ParallelismClass.DLP),
    ("svm", "MatrixOps"): (1_000.0, ParallelismClass.DLP),
    ("svm", "Learning"): (851.0, ParallelismClass.ILP),
    ("svm", "ConjugateMatrix"): (502.0, ParallelismClass.TLP),
}

#: Benchmarks whose Table IV within-benchmark ordering this reproduction
#: matches exactly (see EXPERIMENTS.md for the two partial matches).
ORDERING_MATCHED = ("tracking", "sift", "svm")


def paper_kernel_order(benchmark: str) -> List[str]:
    """Kernels of one benchmark, sorted by the paper's parallelism
    (descending)."""
    rows = [
        (kernel, value)
        for (slug, kernel), (value, _cls) in PAPER_TABLE4.items()
        if slug == benchmark
    ]
    if not rows:
        raise KeyError(f"benchmark {benchmark!r} not in the paper's Table IV")
    return [kernel for kernel, _v in sorted(rows, key=lambda kv: -kv[1])]


def paper_class(benchmark: str, kernel: str) -> ParallelismClass:
    """The ILP/DLP/TLP label the paper assigns to one kernel."""
    try:
        return PAPER_TABLE4[(benchmark, kernel)][1]
    except KeyError:
        raise KeyError(
            f"({benchmark}, {kernel}) not in the paper's Table IV"
        ) from None


#: Figure 2's qualitative scaling claims: slug -> (min, max) expected
#: CIF/SQCIF runtime ratio band for this reproduction (the paper's curve
#: shapes translated into coarse bands; see EXPERIMENTS.md).
FIGURE2_BANDS: Dict[str, Tuple[float, float]] = {
    "disparity": (2.5, 40.0),  # steep, ~linear in pixels
    "sift": (2.0, 40.0),
    "tracking": (1.0, 20.0),
    "stitch": (1.0, 20.0),
    "localization": (0.3, 10.0),  # trace-bound, not pixel-bound
    "segmentation": (0.5, 2.0),  # flat (fixed working grid)
}
