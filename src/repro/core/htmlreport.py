"""Self-contained HTML observability report (``sdvbs report``).

Renders one suite result — occupancy stacks, a roofline scatter from the
v4 work-accounting metrics, the streaming latency distribution (v7
percentile table + histogram), the instrumented-vs-sampled agreement
table, the slowest trace spans and the run manifest — into a single HTML file
with **no external references**: styles are inlined, charts are CSS divs
and inline SVG, there is no JavaScript and no network fetch, so the file
opens offline and archives alongside the JSON export it was built from.

Layout and color follow a small design system embedded as CSS custom
properties (light and dark mode both derive from the same tokens, via
``prefers-color-scheme`` with a ``data-theme`` override hook):

* categorical kernel colors are assigned per benchmark in a fixed slot
  order and follow the kernel, never its rank;
* the ``NonKernelWork`` residual always wears the muted ink, not a
  categorical hue;
* text wears text tokens — series color appears only on marks and
  legend chips;
* stacked occupancy segments are separated by a 2px surface gap, and
  hover tooltips ride on native ``title`` elements (no script needed).
"""

from __future__ import annotations

import html
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .flamediff import ProfileDiff
from .sampling import cross_check
from .tracing import CATEGORY_KERNEL, TraceSpan
from .types import NON_KERNEL_WORK, SuiteResult

#: Fixed categorical slot order (light mode), assigned per benchmark.
_CATEGORICAL_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                      "#e87ba4", "#008300", "#4a3aa7", "#e34948")
#: The same slots re-stepped for the dark surface.
_CATEGORICAL_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
                     "#d55181", "#008300", "#9085e9", "#e66767")

#: Section ids the golden-structure test asserts on.
SECTION_IDS = ("manifest", "occupancy", "roofline", "latency",
               "agreement", "flamediff", "trace")


def _css() -> str:
    slots_light = "\n".join(
        f"  --c{i}: {color};" for i, color in enumerate(_CATEGORICAL_LIGHT)
    )
    slots_dark = "\n".join(
        f"  --c{i}: {color};" for i, color in enumerate(_CATEGORICAL_DARK)
    )
    dark_tokens = f"""\
  --surface: #1a1a19;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --muted: #898781;
  --gridline: #2c2c2a;
{slots_dark}"""
    return f"""\
:root {{
  --surface: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --gridline: #e1e0d9;
{slots_light}
}}
@media (prefers-color-scheme: dark) {{
  :root {{
{dark_tokens}
  }}
}}
[data-theme="dark"] {{
{dark_tokens}
}}
* {{ box-sizing: border-box; }}
body {{
  margin: 0 auto; padding: 24px; max-width: 960px;
  background: var(--surface); color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif;
}}
h1 {{ font-size: 20px; margin: 0 0 4px; }}
h2 {{ font-size: 16px; margin: 32px 0 8px; }}
h3 {{ font-size: 13px; margin: 16px 0 4px; color: var(--text-secondary); }}
p.note {{ color: var(--text-secondary); margin: 4px 0 12px; }}
table {{ border-collapse: collapse; margin: 8px 0; }}
th, td {{
  text-align: left; padding: 4px 12px 4px 0;
  border-bottom: 1px solid var(--gridline);
}}
th {{ color: var(--text-secondary); font-weight: 600; }}
td.num, th.num {{ text-align: right; }}
.stack {{
  display: flex; gap: 2px; height: 22px; margin: 4px 0 8px;
  max-width: 720px;
}}
.stack .seg {{ border-radius: 4px; min-width: 2px; }}
.rowlabel {{ color: var(--text-secondary); font-size: 12px; margin-top: 10px; }}
.legend {{ display: flex; flex-wrap: wrap; gap: 4px 16px; margin: 4px 0 8px; }}
.legend .chip {{
  display: inline-flex; align-items: center; gap: 6px;
  color: var(--text-secondary); font-size: 12px;
}}
.legend .swatch {{
  width: 10px; height: 10px; border-radius: 3px; display: inline-block;
}}
.verdict-diverges {{ color: var(--c7); font-weight: 600; }}
td.delta-pos {{ color: var(--c7); }}
td.delta-neg {{ color: var(--c0); }}
.diffbar {{
  display: flex; height: 10px; width: 160px; align-items: stretch;
}}
.diffbar .half {{ position: relative; width: 50%; }}
.diffbar .fill-pos {{
  position: absolute; left: 0; height: 100%; border-radius: 0 3px 3px 0;
  background: var(--c7);
}}
.diffbar .fill-neg {{
  position: absolute; right: 0; height: 100%; border-radius: 3px 0 0 3px;
  background: var(--c0);
}}
svg .axisline {{ stroke: var(--gridline); stroke-width: 1; }}
svg .grid {{ stroke: var(--gridline); stroke-width: 0.5; }}
svg .pt {{ fill: var(--c0); }}
svg .pt circle {{ stroke: var(--surface); stroke-width: 2; }}
svg text {{ fill: var(--text-secondary); font: 11px system-ui, sans-serif; }}
svg text.ptlabel {{ fill: var(--text-primary); }}
"""


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _flatten_manifest(manifest: Mapping[str, object],
                      prefix: str = "") -> List[Tuple[str, str]]:
    """Depth-one flattening of the manifest into displayable rows."""
    rows: List[Tuple[str, str]] = []
    for key in sorted(manifest):
        value = manifest[key]
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            rows.extend(_flatten_manifest(value, prefix=f"{name}."))
        elif isinstance(value, (list, tuple)):
            rows.append((name, " ".join(str(v) for v in value)))
        else:
            rows.append((name, str(value)))
    return rows


def _manifest_section(manifest: Optional[Mapping[str, object]]) -> str:
    parts = ['<section id="manifest">', "<h2>Run manifest</h2>"]
    if not manifest:
        parts.append('<p class="note">The export carried no manifest.</p>')
    else:
        parts.append("<table><thead><tr><th>Key</th><th>Value</th></tr>"
                     "</thead><tbody>")
        for key, value in _flatten_manifest(manifest):
            parts.append(
                f"<tr><td>{_esc(key)}</td><td>{_esc(value)}</td></tr>")
        parts.append("</tbody></table>")
    parts.append("</section>")
    return "\n".join(parts)


def _kernel_slots(kernels: Sequence[str]) -> Dict[str, str]:
    """Per-benchmark slot assignment: fixed order, never cycled.

    Kernels beyond the 8 categorical slots fold into the muted ink
    (the "Other" rule); ``NonKernelWork`` always wears muted.
    """
    slots: Dict[str, str] = {}
    index = 0
    for kernel in kernels:
        if kernel == NON_KERNEL_WORK or index >= len(_CATEGORICAL_LIGHT):
            slots[kernel] = "var(--muted)"
        else:
            slots[kernel] = f"var(--c{index})"
            index += 1
    return slots


def _occupancy_section(result: SuiteResult) -> str:
    parts = ['<section id="occupancy">', "<h2>Kernel occupancy</h2>",
             '<p class="note">Share of measured wall time attributed to '
             "each instrumented kernel (Figure 3 view); the residual is "
             "uninstrumented glue.</p>"]
    by_benchmark: Dict[str, List] = {}
    for run in result.runs:
        by_benchmark.setdefault(run.benchmark, []).append(run)
    if not by_benchmark:
        parts.append('<p class="note">No runs in this export.</p>')
    for benchmark, runs in by_benchmark.items():
        kernel_order: List[str] = []
        for run in runs:
            for kernel in run.occupancy():
                if kernel != NON_KERNEL_WORK and kernel not in kernel_order:
                    kernel_order.append(kernel)
        kernel_order.append(NON_KERNEL_WORK)
        slots = _kernel_slots(kernel_order)
        parts.append(f"<h3>{_esc(benchmark)}</h3>")
        parts.append('<div class="legend">')
        for kernel in kernel_order:
            parts.append(
                f'<span class="chip"><span class="swatch" '
                f'style="background:{slots[kernel]}"></span>'
                f"{_esc(kernel)}</span>")
        parts.append("</div>")
        for run in runs:
            shares = run.occupancy()
            label = f"{run.size.name} variant {run.variant}"
            parts.append(f'<div class="rowlabel">{_esc(label)} &mdash; '
                         f"{run.total_seconds * 1000:.1f} ms</div>")
            parts.append('<div class="stack">')
            for kernel in kernel_order:
                share = shares.get(kernel, 0.0)
                if share <= 0:
                    continue
                tip = f"{kernel}: {share:.1f}%"
                parts.append(
                    f'<div class="seg" style="flex:{share:.3f};'
                    f'background:{slots[kernel]}" '
                    f'title="{_esc(tip)}"></div>')
            parts.append("</div>")
    parts.append("</section>")
    return "\n".join(parts)


def _log_ticks(lo: float, hi: float) -> List[float]:
    first = math.floor(math.log10(lo))
    last = math.ceil(math.log10(hi))
    return [10.0 ** e for e in range(first, last + 1)]


def _fmt_tick(value: float) -> str:
    if value >= 1:
        return f"{value:g}"
    return f"{value:.10f}".rstrip("0")


def _roofline_section(result: SuiteResult) -> str:
    """AI-vs-achieved-GFLOP/s scatter from the per-run metrics blocks."""
    points: List[Tuple[float, float, str]] = []
    for run in result.runs:
        if not run.metrics:
            continue
        kernels = run.metrics.get("kernels", {})
        if not isinstance(kernels, Mapping):
            continue
        for kernel in sorted(kernels):
            entry = kernels[kernel]
            ai = float(entry.get("arithmetic_intensity", 0.0))
            rate = float(entry.get("gflops_per_s", 0.0))
            if ai <= 0 or rate <= 0:
                continue
            points.append((ai, rate,
                           f"{kernel} ({run.benchmark}@{run.size.name})"))
    parts = ['<section id="roofline">',
             "<h2>Roofline scatter</h2>",
             '<p class="note">Analytic arithmetic intensity against '
             "achieved compute rate for every dispatched kernel with a "
             "work model (log/log). Points to the left are "
             "traffic-bound; higher is faster.</p>"]
    if not points:
        parts.append('<p class="note">No work-accounting metrics in '
                     "this export (pre-v4 payload or no registered "
                     "work models ran).</p>")
        parts.append("</section>")
        return "\n".join(parts)

    width, height = 720, 360
    margin_l, margin_r, margin_t, margin_b = 56, 16, 12, 40
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_ticks = _log_ticks(min(xs), max(xs))
    y_ticks = _log_ticks(min(ys), max(ys))
    x_lo, x_hi = math.log10(x_ticks[0]), math.log10(x_ticks[-1])
    y_lo, y_hi = math.log10(y_ticks[0]), math.log10(y_ticks[-1])
    x_hi = x_hi if x_hi > x_lo else x_lo + 1
    y_hi = y_hi if y_hi > y_lo else y_lo + 1
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    def sx(value: float) -> float:
        return margin_l + (math.log10(value) - x_lo) / (x_hi - x_lo) * plot_w

    def sy(value: float) -> float:
        return (height - margin_b
                - (math.log10(value) - y_lo) / (y_hi - y_lo) * plot_h)

    svg = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
           f'height="{height}" role="img" '
           'aria-label="Roofline scatter">']
    for tick in x_ticks:
        x = sx(tick)
        svg.append(f'<line class="grid" x1="{x:.1f}" y1="{margin_t}" '
                   f'x2="{x:.1f}" y2="{height - margin_b}" />')
        svg.append(f'<text x="{x:.1f}" y="{height - margin_b + 16}" '
                   f'text-anchor="middle">{_fmt_tick(tick)}</text>')
    for tick in y_ticks:
        y = sy(tick)
        svg.append(f'<line class="grid" x1="{margin_l}" y1="{y:.1f}" '
                   f'x2="{width - margin_r}" y2="{y:.1f}" />')
        svg.append(f'<text x="{margin_l - 6}" y="{y + 4:.1f}" '
                   f'text-anchor="end">{_fmt_tick(tick)}</text>')
    svg.append(f'<line class="axisline" x1="{margin_l}" '
               f'y1="{height - margin_b}" x2="{width - margin_r}" '
               f'y2="{height - margin_b}" />')
    svg.append(f'<line class="axisline" x1="{margin_l}" y1="{margin_t}" '
               f'x2="{margin_l}" y2="{height - margin_b}" />')
    svg.append(f'<text x="{margin_l + plot_w / 2:.0f}" '
               f'y="{height - 6}" text-anchor="middle">'
               "arithmetic intensity (flop/byte)</text>")
    svg.append(f'<text x="14" y="{margin_t + plot_h / 2:.0f}" '
               f'text-anchor="middle" transform="rotate(-90 14 '
               f'{margin_t + plot_h / 2:.0f})">achieved GFLOP/s</text>')
    # Direct-label the fastest points only (selective labels).
    labeled = {id(point)
               for point in sorted(points, key=lambda p: -p[1])[:6]}
    for point in points:
        ai, rate, label = point
        x, y = sx(ai), sy(rate)
        tip = f"{label}: {ai:.3g} flop/byte, {rate:.3g} GFLOP/s"
        svg.append(f'<g class="pt"><circle cx="{x:.1f}" cy="{y:.1f}" '
                   f'r="5"><title>{_esc(tip)}</title></circle></g>')
        if id(point) in labeled:
            svg.append(f'<text class="ptlabel" x="{x + 8:.1f}" '
                       f'y="{y - 6:.1f}">{_esc(label)}</text>')
    svg.append("</svg>")
    parts.extend(svg)
    parts.append("</section>")
    return "\n".join(parts)


def _coarsen_buckets(buckets: Sequence[Sequence[float]],
                     max_bars: int = 96) -> List[Tuple[float, float, int]]:
    """Merge adjacent histogram buckets until at most ``max_bars`` remain."""
    bars = [(float(lo), float(hi), int(count)) for lo, hi, count in buckets]
    while len(bars) > max_bars:
        merged: List[Tuple[float, float, int]] = []
        for i in range(0, len(bars), 2):
            chunk = bars[i:i + 2]
            merged.append((chunk[0][0], chunk[-1][1],
                           sum(c for _, _, c in chunk)))
        bars = merged
    return bars


def _latency_section(result: SuiteResult) -> str:
    """Streaming latency distribution: percentile table + SVG histogram."""
    parts = ['<section id="latency">',
             "<h2>Streaming latency distribution</h2>"]
    streaming = result.streaming
    if not streaming:
        parts.append('<p class="note">No streaming data in this export '
                     "(batch-style run; produce one with "
                     "<code>sdvbs stream</code>).</p>")
        parts.append("</section>")
        return "\n".join(parts)
    config: Mapping[str, object] = streaming.get("config", {})  # type: ignore[assignment]
    merged: Mapping[str, object] = streaming.get("merged", {})  # type: ignore[assignment]
    streams: Sequence[Mapping[str, object]] = streaming.get("streams", ())  # type: ignore[assignment]
    parts.append(
        '<p class="note">Per-frame latency of '
        f"<strong>{_esc(config.get('benchmark', '?'))}</strong> @ "
        f"{_esc(config.get('size', '?'))}, paced at "
        f"{config.get('fps', 0):g} fps &times; "
        f"{config.get('streams', 1)} stream(s), deadline "
        f"{config.get('deadline_ms', 0):g} ms, backend "
        f"{_esc(config.get('backend') or 'active')}. Warm-up frames are "
        "excluded; the merged row folds every stream's bounded "
        "histogram.</p>")
    percentile_keys = ("p50", "p90", "p95", "p99", "p99.9")
    parts.append("<table><thead><tr><th>Stream</th>"
                 '<th class="num">Frames</th>'
                 + "".join(f'<th class="num">{k}</th>'
                           for k in percentile_keys)
                 + '<th class="num">Jitter ms</th>'
                 '<th class="num">Sustained fps</th>'
                 '<th class="num">Misses</th></tr></thead><tbody>')

    def latency_row(label: str, entry: Mapping[str, object]) -> str:
        latency: Mapping[str, object] = entry.get("latency_ms", {})  # type: ignore[assignment]
        deadline: Mapping[str, object] = entry.get("deadline", {})  # type: ignore[assignment]
        cells = [f"<td>{_esc(label)}</td>",
                 f'<td class="num">{entry.get("frames", 0)}</td>']
        for key in percentile_keys:
            value = latency.get(key)
            cells.append('<td class="num">'
                         + (f"{float(value):.2f}" if value is not None  # type: ignore[arg-type]
                            else "&ndash;") + "</td>")
        cells.append(f'<td class="num">{float(entry.get("jitter_ms", 0.0)):.2f}</td>')  # type: ignore[arg-type]
        cells.append(f'<td class="num">{float(entry.get("sustained_fps", 0.0)):.2f}</td>')  # type: ignore[arg-type]
        miss_rate = float(deadline.get("miss_rate", 0.0))  # type: ignore[arg-type]
        cells.append(f'<td class="num">{deadline.get("misses", 0)}/'
                     f'{deadline.get("frames", 0)}'
                     f" ({100.0 * miss_rate:.0f}%)</td>")
        return "<tr>" + "".join(cells) + "</tr>"

    for entry in streams:
        parts.append(latency_row(f"#{entry.get('stream', '?')}", entry))
    parts.append(latency_row("merged", merged))
    parts.append("</tbody></table>")

    buckets = _coarsen_buckets(merged.get("histogram_ms") or ())  # type: ignore[arg-type]
    buckets = [b for b in buckets if b[0] > 0]
    if buckets:
        width, height = 720, 220
        margin_l, margin_r, margin_t, margin_b = 56, 16, 12, 40
        plot_w = width - margin_l - margin_r
        plot_h = height - margin_t - margin_b
        x_ticks = _log_ticks(buckets[0][0], buckets[-1][1])
        x_lo, x_hi = math.log10(x_ticks[0]), math.log10(x_ticks[-1])
        x_hi = x_hi if x_hi > x_lo else x_lo + 1
        max_count = max(c for _, _, c in buckets)

        def sx(value: float) -> float:
            return margin_l + (math.log10(value) - x_lo) \
                / (x_hi - x_lo) * plot_w

        svg = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
               f'height="{height}" role="img" '
               'aria-label="Latency histogram">']
        for tick in x_ticks:
            x = sx(tick)
            svg.append(f'<line class="grid" x1="{x:.1f}" y1="{margin_t}" '
                       f'x2="{x:.1f}" y2="{height - margin_b}" />')
            svg.append(f'<text x="{x:.1f}" y="{height - margin_b + 16}" '
                       f'text-anchor="middle">{_fmt_tick(tick)}</text>')
        svg.append(f'<line class="axisline" x1="{margin_l}" '
                   f'y1="{height - margin_b}" x2="{width - margin_r}" '
                   f'y2="{height - margin_b}" />')
        svg.append(f'<text x="{margin_l + plot_w / 2:.0f}" '
                   f'y="{height - 6}" text-anchor="middle">'
                   "frame latency (ms, log)</text>")
        for lo, hi, count in buckets:
            x0, x1 = sx(lo), sx(hi)
            bar_h = plot_h * count / max_count
            tip = f"{lo:.3g}-{hi:.3g} ms: {count} frame(s)"
            svg.append(
                f'<rect x="{x0:.1f}" '
                f'y="{height - margin_b - bar_h:.1f}" '
                f'width="{max(x1 - x0 - 0.5, 0.5):.1f}" '
                f'height="{bar_h:.1f}" fill="var(--c0)">'
                f"<title>{_esc(tip)}</title></rect>")
        svg.append("</svg>")
        parts.extend(svg)
    parts.append("</section>")
    return "\n".join(parts)


def _agreement_section(result: SuiteResult, tolerance: float,
                       min_share: float) -> str:
    parts = ['<section id="agreement">',
             "<h2>Sampled vs instrumented agreement</h2>",
             '<p class="note">Per-kernel runtime shares measured two '
             "independent ways: instrumented timers around each kernel "
             "and a statistical stack sampler. Rows holding at least "
             f"{min_share:g}% on either side must agree within "
             f"&plusmn;{tolerance:g} points.</p>"]
    any_sampling = False
    for run in result.runs:
        if not run.sampling:
            continue
        any_sampling = True
        sampled = {k: float(v)
                   for k, v in run.sampling.get("shares", {}).items()}
        observable = list(run.sampling.get("observable") or [])
        samples = int(run.sampling.get("samples", 0))
        check = cross_check(run.occupancy(), sampled, observable,
                            tolerance=tolerance, min_share=min_share,
                            samples=samples)
        failures = {id(r) for r in check.failures()}
        gated = {id(r) for r in check.gated_rows()}
        parts.append(f"<h3>{_esc(run.benchmark)} @ {_esc(run.size.name)} "
                     f"&mdash; {samples} samples, "
                     f"{'PASS' if check.ok else 'FAIL'}</h3>")
        truncated = int(run.sampling.get("stacks_truncated", 0))
        if truncated > 0:
            parts.append(
                f'<p class="note">&#9888; {truncated} distinct stack(s) '
                "were dropped when this profile was exported "
                "(<code>max_stacks</code> cap); per-kernel shares are "
                "exact, but rare leaf stacks are missing from the "
                "folded profile.</p>")
        parts.append("<table><thead><tr><th>Kernel</th>"
                     '<th class="num">Instrumented %</th>'
                     '<th class="num">Sampled %</th>'
                     '<th class="num">&Delta;</th><th>Verdict</th>'
                     "</tr></thead><tbody>")
        for row in check.rows:
            if row.sampled is None:
                sampled_cell, delta_cell, verdict = "&ndash;", "&ndash;", \
                    "unobservable"
                cls = ""
            else:
                sampled_cell = f"{row.sampled:.1f}"
                delta_cell = f"{row.delta:+.1f}"
                if id(row) in failures:
                    verdict, cls = "DIVERGES", ' class="verdict-diverges"'
                elif id(row) in gated:
                    verdict, cls = "agree", ""
                else:
                    verdict, cls = "minor", ""
            parts.append(
                f"<tr><td>{_esc(row.kernel)}</td>"
                f'<td class="num">{row.instrumented:.1f}</td>'
                f'<td class="num">{sampled_cell}</td>'
                f'<td class="num">{delta_cell}</td>'
                f"<td{cls}>{verdict}</td></tr>")
        parts.append("</tbody></table>")
        top = run.sampling.get("non_kernel_top") or []
        if top:
            parts.append("<h3>Top NonKernelWork functions (sampled)</h3>")
            parts.append("<table><thead><tr><th>Function</th>"
                         '<th class="num">Sampled ms</th></tr></thead>'
                         "<tbody>")
            for label, seconds in top:
                parts.append(f"<tr><td>{_esc(label)}</td>"
                             f'<td class="num">'
                             f"{float(seconds) * 1000:.2f}</td></tr>")
            parts.append("</tbody></table>")
    if not any_sampling:
        parts.append('<p class="note">No sampling profiles in this '
                     "export (pre-v5 payload or no sampler attached).</p>")
    parts.append("</section>")
    return "\n".join(parts)


def _diff_bar(delta: float, scale: float) -> str:
    """A diverging red/blue bar: right of center grew, left shrank."""
    if scale <= 0.0 or delta == 0.0:
        return '<div class="diffbar"></div>'
    width = min(100.0, 100.0 * abs(delta) / scale)
    if delta > 0:
        return ('<div class="diffbar"><div class="half"></div>'
                f'<div class="half"><div class="fill-pos" '
                f'style="width:{width:.1f}%"></div></div></div>')
    return ('<div class="diffbar"><div class="half">'
            f'<div class="fill-neg" style="width:{width:.1f}%"></div>'
            '</div><div class="half"></div></div>')


def _delta_cell(delta: float, unit: str = "s") -> str:
    """A signed delta table cell wearing red (grew) or blue (shrank)."""
    cls = ("delta-pos" if delta > 0
           else "delta-neg" if delta < 0 else "")
    attr = f' class="num {cls}"' if cls else ' class="num"'
    return f"<td{attr}>{delta:+.4f}{unit}</td>"


def _flamediff_section(diff: Optional[ProfileDiff], top: int = 10) -> str:
    """Red/blue differential flamegraph summary (candidate - baseline)."""
    parts = ['<section id="flamediff">',
             "<h2>Differential flamegraph</h2>"]
    if diff is None:
        parts.append('<p class="note">No profile diff attached to this '
                     "report (render one with <code>sdvbs profile diff "
                     "&hellip; --html</code>).</p>")
        parts.append("</section>")
        return "\n".join(parts)
    parts.append(
        '<p class="note">Sampled time per kernel and frame, '
        f"<strong>{_esc(diff.baseline_label)}</strong> &rarr; "
        f"<strong>{_esc(diff.candidate_label)}</strong>: "
        f"{diff.baseline_seconds:.4f}s &rarr; "
        f"{diff.candidate_seconds:.4f}s "
        f"({diff.delta_seconds:+.4f}s). "
        '<span style="color:var(--c7)">Red grew</span>, '
        '<span style="color:var(--c0)">blue shrank</span>.</p>')
    kernel_rows = diff.top_kernels(top)
    frame_rows = diff.top_frames(top)
    scale = max(
        [abs(k.delta) for k in kernel_rows]
        + [abs(f.self_delta) for f in frame_rows] + [0.0])
    if kernel_rows:
        parts.append("<h3>Kernels</h3>")
        parts.append("<table><thead><tr><th>Kernel</th>"
                     '<th class="num">Before s</th>'
                     '<th class="num">After s</th>'
                     '<th class="num">&Delta;</th><th></th>'
                     "</tr></thead><tbody>")
        for kernel in kernel_rows:
            parts.append(
                f"<tr><td>{_esc(kernel.kernel)}</td>"
                f'<td class="num">{kernel.before:.4f}</td>'
                f'<td class="num">{kernel.after:.4f}</td>'
                + _delta_cell(kernel.delta)
                + f"<td>{_diff_bar(kernel.delta, scale)}</td></tr>")
        parts.append("</tbody></table>")
    if frame_rows:
        parts.append("<h3>Frames (self time)</h3>")
        parts.append("<table><thead><tr><th>Frame</th>"
                     '<th class="num">Before s</th>'
                     '<th class="num">After s</th>'
                     '<th class="num">&Delta;</th><th></th>'
                     "</tr></thead><tbody>")
        for frame in frame_rows:
            parts.append(
                f"<tr><td>{_esc(frame.frame)}</td>"
                f'<td class="num">{frame.self_before:.4f}</td>'
                f'<td class="num">{frame.self_after:.4f}</td>'
                + _delta_cell(frame.self_delta)
                + f"<td>{_diff_bar(frame.self_delta, scale)}</td></tr>")
        parts.append("</tbody></table>")
    if not kernel_rows and not frame_rows:
        parts.append('<p class="note">The two profiles are '
                     "identical.</p>")
    parts.append("</section>")
    return "\n".join(parts)


def _trace_section(spans: Optional[Iterable[TraceSpan]],
                   limit: int) -> str:
    parts = ['<section id="trace">',
             f"<h2>Top {limit} slowest kernel invocations</h2>"]
    kernel_spans = [s for s in (spans or [])
                    if s.category == CATEGORY_KERNEL]
    if not kernel_spans:
        parts.append('<p class="note">No trace recorded with this '
                     "report.</p>")
        parts.append("</section>")
        return "\n".join(parts)
    ranked = sorted(kernel_spans, key=lambda s: s.duration,
                    reverse=True)[:max(0, limit)]
    parts.append("<table><thead><tr><th>#</th><th>Kernel</th>"
                 '<th>Context</th><th class="num">Start ms</th>'
                 '<th class="num">Duration ms</th>'
                 '<th class="num">Self ms</th></tr></thead><tbody>')
    for rank, span in enumerate(ranked, start=1):
        attrs = span.attrs
        context = " ".join(
            str(attrs[key]) for key in ("benchmark", "size", "repeat")
            if key in attrs)
        parts.append(
            f"<tr><td>{rank}</td><td>{_esc(span.name)}</td>"
            f"<td>{_esc(context or '-')}</td>"
            f'<td class="num">{span.start * 1000:.2f}</td>'
            f'<td class="num">{span.duration * 1000:.3f}</td>'
            f'<td class="num">{span.self_duration * 1000:.3f}</td></tr>')
    parts.append("</tbody></table>")
    parts.append("</section>")
    return "\n".join(parts)


def render_diff_html(diff: ProfileDiff,
                     title: str = "SD-VBS repro differential "
                     "flamegraph") -> str:
    """A standalone one-section page for ``sdvbs profile diff --html``.

    Same design tokens and offline guarantees as the full report —
    just the red/blue differential section, for when there is no
    suite export to wrap it in.
    """
    body = "\n".join([
        f"<h1>{_esc(title)}</h1>",
        '<p class="note">Generated by the sdvbs CLI; inline markup '
        "with no external references.</p>",
        _flamediff_section(diff),
    ])
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>\n{_css()}</style>\n</head>\n<body>\n{body}\n"
        "</body>\n</html>\n"
    )


def render_html_report(
    result: SuiteResult,
    spans: Optional[Iterable[TraceSpan]] = None,
    title: str = "SD-VBS repro observability report",
    tolerance: float = 5.0,
    min_share: float = 10.0,
    top_spans: int = 10,
    diff: Optional[ProfileDiff] = None,
) -> str:
    """Render a suite result into one self-contained HTML document.

    ``spans`` optionally supplies the recorded trace behind the
    slowest-invocations table (absent for rehydrated exports, which do
    not carry event-level traces).  ``tolerance``/``min_share``
    parameterize the agreement gate exactly like
    :func:`~repro.core.sampling.cross_check`.  ``diff`` optionally
    attaches a differential flamegraph (red grew / blue shrank)
    between two sampled profiles; without one the section renders a
    pointer to ``sdvbs profile diff``.

    The output references no external resource of any kind — no
    scripts, fonts, images or stylesheet links — so it renders
    identically offline and decades from now.
    """
    body = "\n".join([
        f"<h1>{_esc(title)}</h1>",
        '<p class="note">Generated by the sdvbs CLI; every chart below '
        "is inline markup with no external references.</p>",
        _manifest_section(result.manifest),
        _occupancy_section(result),
        _roofline_section(result),
        _latency_section(result),
        _agreement_section(result, tolerance, min_share),
        _flamediff_section(diff),
        _trace_section(spans, top_spans),
    ])
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>\n{_css()}</style>\n</head>\n<body>\n{body}\n"
        "</body>\n</html>\n"
    )
