"""Noise-aware performance-regression detection.

The comparison layer (:mod:`repro.core.compare`) answers "how much faster
is B than A"; this module answers the CI question "did this commit make
anything *meaningfully* slower".  A cell is flagged as a regression only
when both gates pass:

* **statistical** — the median shift exceeds ``sigmas`` times the
  combined recorded repeat noise (:meth:`SpeedupEntry.is_significant`,
  the same k·σ test the comparison table prints), and
* **practical** — the relative slowdown is at least ``min_slowdown``
  (default 10%), so a statistically resolvable 1% wobble on a quiet
  machine does not fail a build.

Cells without noise estimates (single-shot runs, pre-v2 exports) can
never be *confirmed* regressions — they report ``insufficient data``
rather than crying wolf, which makes the gate soft exactly where the
measurements are weak.  Baselines come from either a second export file
or the persistent history store (:mod:`repro.core.history`), defaulting
to the most recently recorded other commit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .compare import SpeedupEntry
from .flamediff import attribute_delta, diff_profiles
from .history import HistoryEntry
from .report import format_table
from .sampling import SampledProfile
from .types import InputSize, SuiteResult

#: Machine-readable verdict schema written by :func:`report_to_dict`.
REGRESS_SCHEMA = "sdvbs-repro/regress-verdict/v1"

#: Cell statuses, in decreasing order of severity.
STATUS_REGRESSION = "regression"
STATUS_IMPROVED = "improved"
STATUS_INSUFFICIENT = "insufficient data"
STATUS_WITHIN_NOISE = "within noise"
STATUS_OK = "ok"

#: One comparable cell: (median_seconds, stddev_or_None).
Cell = Tuple[float, Optional[float]]
#: Cells keyed by (benchmark, size name).
CellMap = Dict[Tuple[str, str], Cell]


def cells_from_result(result: SuiteResult) -> CellMap:
    """Per-(benchmark, size) medians and noise from a suite result."""
    cells: CellMap = {}
    for slug in result.benchmarks():
        for size in InputSize:
            median = result.median_total(slug, size)
            if median is None:
                continue
            cells[(slug, size.name)] = (median,
                                        result.total_stddev(slug, size))
    return cells


#: Streaming latency percentiles gated by default (p50 keeps the
#: median-vs-tail contrast visible in the same report).
LATENCY_METRICS = ("p50", "p95", "p99")


def _percentile_noise(streams: Sequence[Dict[str, object]],
                      merged_latency: Dict[str, object],
                      metric: str) -> Optional[float]:
    """Noise estimate (seconds) for one merged latency percentile.

    With two or more streams, the spread of the per-stream percentile
    values is a direct empirical noise measurement.  For a single
    stream there is no replicate, so the merged distribution's standard
    error of the mean serves as a rough proxy — conservative for tail
    percentiles, and honest about single-stream tails being noisy.
    Returns ``None`` (→ ``insufficient data``, never a confirmed
    regression) when neither estimate is available.
    """
    per_stream = [
        float(entry["latency_ms"][metric])  # type: ignore[index,call-overload]
        for entry in streams
        if metric in entry.get("latency_ms", {})  # type: ignore[union-attr,operator]
    ]
    if len(per_stream) >= 2:
        mu = sum(per_stream) / len(per_stream)
        var = sum((x - mu) ** 2 for x in per_stream) \
            / (len(per_stream) - 1)
        return (var ** 0.5) / 1000.0
    count = float(merged_latency.get("count", 0) or 0)  # type: ignore[arg-type]
    stddev = merged_latency.get("stddev")
    if stddev is not None and count >= 2:
        return float(stddev) / (count ** 0.5) / 1000.0  # type: ignore[arg-type]
    return None


def latency_cells_from_result(
        result: SuiteResult,
        metrics: Sequence[str] = LATENCY_METRICS) -> CellMap:
    """Streaming latency percentiles as regression cells.

    Reads the export's ``streaming`` block (schema v7) and emits one
    cell per gated percentile, keyed ``("disparity[p99]", "CIF")`` so
    tail latency rides the same two-gate noise logic as median runtime
    — a commit can now fail CI for a p99 blow-up even when the median
    is untouched.  Values are merged-across-streams percentiles in
    seconds.  Returns ``{}`` for batch exports without streaming data.
    """
    streaming = result.streaming
    if not streaming:
        return {}
    config: Dict[str, object] = streaming.get("config", {})  # type: ignore[assignment]
    merged: Dict[str, object] = streaming.get("merged", {})  # type: ignore[assignment]
    latency: Dict[str, object] = merged.get("latency_ms", {})  # type: ignore[assignment]
    streams: Sequence[Dict[str, object]] = streaming.get("streams", ())  # type: ignore[assignment]
    benchmark = config.get("benchmark")
    size = config.get("size")
    if not benchmark or not size:
        return {}
    cells: CellMap = {}
    for metric in metrics:
        value = latency.get(metric)
        if value is None:
            continue
        cells[(f"{benchmark}[{metric}]", str(size))] = (
            float(value) / 1000.0,  # type: ignore[arg-type]
            _percentile_noise(streams, latency, metric),
        )
    return cells


def cells_from_entries(entries: Sequence[HistoryEntry]) -> CellMap:
    """Per-(benchmark, size) medians and noise from history entries.

    When a commit was recorded more than once (several manifest hashes),
    the latest recording wins — it reflects the current machine state.
    """
    cells: CellMap = {}
    for entry in entries:
        cells[(entry.benchmark, entry.size)] = (entry.median_seconds,
                                                entry.stddev)
    return cells


@dataclass(frozen=True)
class RegressionEntry:
    """Verdict for one (benchmark, size) cell."""

    benchmark: str
    size: str
    baseline_seconds: float
    candidate_seconds: float
    baseline_stddev: Optional[float]
    candidate_stddev: Optional[float]
    status: str
    #: Profile-diff attribution block (:func:`flamediff.attribute_delta`
    #: output) attached by :func:`attribute_regressions` when both sides
    #: of a regressed cell have a stored profile; ``None`` otherwise.
    attribution: Optional[Dict[str, object]] = field(default=None,
                                                     compare=False)

    @property
    def relative_change(self) -> float:
        """Signed relative runtime change; positive means slower."""
        if self.baseline_seconds <= 0:
            return 0.0
        return (self.candidate_seconds - self.baseline_seconds) \
            / self.baseline_seconds

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "benchmark": self.benchmark,
            "size": self.size,
            "baseline_seconds": self.baseline_seconds,
            "candidate_seconds": self.candidate_seconds,
            "baseline_stddev": self.baseline_stddev,
            "candidate_stddev": self.candidate_stddev,
            "relative_change": self.relative_change,
            "status": self.status,
        }
        if self.attribution is not None:
            payload["attribution"] = self.attribution
        return payload


@dataclass
class RegressionReport:
    """All cell verdicts of one baseline/candidate comparison."""

    entries: List[RegressionEntry]
    sigmas: float
    min_slowdown: float
    baseline_label: str = "baseline"
    candidate_label: str = "candidate"

    @property
    def regressions(self) -> List[RegressionEntry]:
        return [e for e in self.entries if e.status == STATUS_REGRESSION]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    @property
    def exit_code(self) -> int:
        """CI gate: 1 only when a confirmed regression exists."""
        return 1 if self.has_regressions else 0


def _classify(entry: SpeedupEntry, sigmas: float,
              min_slowdown: float) -> str:
    """Status for one cell under the two-gate regression policy."""
    delta = entry.candidate_seconds - entry.baseline_seconds
    relative = delta / entry.baseline_seconds \
        if entry.baseline_seconds > 0 else 0.0
    if entry.noise is None:
        return STATUS_OK if delta == 0.0 else STATUS_INSUFFICIENT
    if entry.is_significant(sigmas):
        if relative >= min_slowdown:
            return STATUS_REGRESSION
        if relative <= -min_slowdown:
            return STATUS_IMPROVED
        # Statistically resolvable but practically negligible.
        return STATUS_WITHIN_NOISE
    return STATUS_WITHIN_NOISE if delta != 0.0 else STATUS_OK


def detect_regressions(baseline: CellMap, candidate: CellMap,
                       sigmas: float = 2.0,
                       min_slowdown: float = 0.10,
                       baseline_label: str = "baseline",
                       candidate_label: str = "candidate"
                       ) -> RegressionReport:
    """Compare candidate cells against baseline cells.

    Only cells present on both sides are judged (a benchmark added or
    removed by the commit has no baseline to regress against).  A cell is
    a ``regression`` when the slowdown is significant at ``sigmas``·σ of
    the combined recorded noise *and* at least ``min_slowdown`` relative;
    the symmetric condition reports ``improved``.
    """
    entries: List[RegressionEntry] = []
    for key in sorted(baseline):
        if key not in candidate:
            continue
        base_median, base_std = baseline[key]
        cand_median, cand_std = candidate[key]
        slug, size_name = key
        speedup_entry = SpeedupEntry(
            benchmark=slug,
            size=InputSize[size_name],
            baseline_seconds=base_median,
            candidate_seconds=cand_median,
            baseline_stddev=base_std,
            candidate_stddev=cand_std,
        )
        entries.append(
            RegressionEntry(
                benchmark=slug,
                size=size_name,
                baseline_seconds=base_median,
                candidate_seconds=cand_median,
                baseline_stddev=base_std,
                candidate_stddev=cand_std,
                status=_classify(speedup_entry, sigmas, min_slowdown),
            )
        )
    return RegressionReport(entries=entries, sigmas=sigmas,
                            min_slowdown=min_slowdown,
                            baseline_label=baseline_label,
                            candidate_label=candidate_label)


#: Lookup contract for attribution: (benchmark, size name) -> the
#: (baseline, candidate) profile pair, or ``None`` when either side is
#: missing.  Latency cells ("disparity[p99]") resolve through their base
#: benchmark's profile — see :func:`base_benchmark`.
ProfileLookup = Callable[[str, str],
                         Optional[Tuple[SampledProfile, SampledProfile]]]


def base_benchmark(cell_benchmark: str) -> str:
    """Strip a latency-cell metric suffix: ``disparity[p99]`` -> ``disparity``.

    Profiles are stored per benchmark, not per percentile; a tail-latency
    regression attributes against the same kernel profile as the median.
    """
    index = cell_benchmark.find("[")
    return cell_benchmark[:index] if index > 0 else cell_benchmark


def attribute_regressions(report: RegressionReport,
                          lookup: ProfileLookup,
                          top: int = 3) -> int:
    """Join profile diffs onto the report's regressed cells, in place.

    For every cell the two-gate policy confirmed as a regression, the
    lookup fetches the baseline/candidate profile pair; when both exist
    the cell's verdict gains an ``attribution`` block naming the top-N
    kernels and frames responsible and their share of the slowdown
    (:func:`flamediff.attribute_delta`).  Cells without a profile on
    either side keep ``attribution: None`` — the gate's verdict stands,
    only unexplained.  Returns how many cells were attributed.
    """
    attributed = 0
    entries: List[RegressionEntry] = []
    for entry in report.entries:
        if entry.status == STATUS_REGRESSION:
            pair = lookup(base_benchmark(entry.benchmark), entry.size)
            if pair is not None:
                diff = diff_profiles(pair[0], pair[1],
                                     baseline_label=report.baseline_label,
                                     candidate_label=report.candidate_label)
                entry = replace(
                    entry, attribution=attribute_delta(diff, top=top))
                attributed += 1
        entries.append(entry)
    report.entries = entries
    return attributed


def render_regressions(report: RegressionReport) -> str:
    """Human-readable verdict table plus a one-line summary."""
    if not report.entries:
        return "no comparable cells between baseline and candidate"
    rows = []
    for entry in report.entries:
        noise = "-"
        if entry.baseline_stddev is not None \
                and entry.candidate_stddev is not None:
            combined = (entry.baseline_stddev ** 2
                        + entry.candidate_stddev ** 2) ** 0.5
            noise = f"±{combined * 1000:.2f} ms"
        rows.append(
            (
                entry.benchmark,
                entry.size,
                f"{entry.baseline_seconds * 1000:.1f} ms",
                f"{entry.candidate_seconds * 1000:.1f} ms",
                f"{entry.relative_change * 100:+.1f}%",
                noise,
                entry.status,
            )
        )
    table = format_table(
        ("Benchmark", "Size", report.baseline_label, report.candidate_label,
         "Change", "Noise", "Status"),
        rows,
        title=f"Regression check: {report.candidate_label} vs "
        f"{report.baseline_label} "
        f"(gate: {report.sigmas:g}sigma and "
        f">={report.min_slowdown * 100:.0f}% slower)",
    )
    flagged = report.regressions
    if flagged:
        worst = max(flagged, key=lambda e: e.relative_change)
        summary = (
            f"REGRESSION: {len(flagged)} cell(s) flagged; worst "
            f"{worst.benchmark}@{worst.size} "
            f"{worst.relative_change * 100:+.1f}%"
        )
    else:
        summary = "no confirmed regressions"
    attributed = []
    for entry in flagged:
        if not entry.attribution:
            continue
        kernels = entry.attribution.get("kernels") or []
        if not kernels:
            attributed.append(
                f"  {entry.benchmark}@{entry.size}: no kernel slowed "
                "down in the sampled profile"
            )
            continue
        top = kernels[0]
        attributed.append(
            f"  {entry.benchmark}@{entry.size}: {top['kernel']} "
            f"{float(top['delta_seconds']):+.4f}s sampled "
            f"({float(top['share_of_delta']) * 100:.0f}% of the slowdown)"
        )
    if attributed:
        summary += "\nattribution (top kernel per regressed cell):\n" \
            + "\n".join(attributed)
    return table + "\n" + summary


def report_to_dict(report: RegressionReport) -> Dict[str, object]:
    """Machine-readable verdict (for ``sdvbs regress --json-out``)."""
    return {
        "schema": REGRESS_SCHEMA,
        "sigmas": report.sigmas,
        "min_slowdown": report.min_slowdown,
        "baseline": report.baseline_label,
        "candidate": report.candidate_label,
        "regression_count": len(report.regressions),
        "exit_code": report.exit_code,
        "cells": [entry.to_dict() for entry in report.entries],
    }


def report_to_json(report: RegressionReport, indent: int = 2) -> str:
    """Serialize :func:`report_to_dict` to a JSON string."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)
