"""Dynamic dataflow tracing — an empirical Lam-Wilson limit study.

Table IV's analytic cost models (:mod:`repro.core.dataflow`) assert what
the critical path of each kernel's loop nest *should* be.  This module
checks those claims empirically, the way the paper's referenced tool
does: run the actual computation on traced values, record every scalar
operation and its data dependences into a :class:`TaskGraph`, and read
off work (operation count) and span (longest dependence chain).

``TracedValue`` wraps a float; arithmetic on traced values appends graph
nodes whose dependences are exactly the operands' producing nodes.
Reassociation of reductions — the reason integral images measure huge
parallelism despite serial-looking loops — is modeled by
:func:`tree_reduce`, mirroring what an ideal dataflow machine does.

Intended for *small* instances (every scalar op is a Python object); the
tests cross-validate traced work/span against the analytic combinators on
matching shapes.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Sequence, Union

from .dataflow import TaskGraph

Number = Union[int, float, "TracedValue"]


class Tracer:
    """Owns the dependence graph of one traced computation.

    Node ids are allocated per tracer (starting at 0), not from a
    process-global counter, so tracing the same computation always
    produces the same graph — repeated limit-study runs are deterministic
    and comparable regardless of what was traced earlier in the process.
    """

    def __init__(self) -> None:
        self.graph = TaskGraph()
        self._ids = itertools.count()

    def constant(self, value: float) -> "TracedValue":
        """A leaf value (an input load; zero-cost source node)."""
        node = next(self._ids)
        self.graph.add(node, 0, ())
        return TracedValue(self, float(value), node)

    def constants(self, values: Sequence[float]) -> List["TracedValue"]:
        return [self.constant(v) for v in values]

    def record(self, value: float, deps: Sequence["TracedValue"],
               cost: int = 1) -> "TracedValue":
        """Record one operation producing ``value`` from ``deps``."""
        node = next(self._ids)
        self.graph.add(node, cost, [d.node for d in deps])
        return TracedValue(self, float(value), node)

    @property
    def work(self) -> int:
        return self.graph.work

    @property
    def span(self) -> int:
        return self.graph.span

    @property
    def parallelism(self) -> float:
        return self.graph.parallelism


class TracedValue:
    """A float whose arithmetic is recorded into a tracer's graph."""

    __slots__ = ("tracer", "value", "node")

    def __init__(self, tracer: Tracer, value: float, node: int) -> None:
        self.tracer = tracer
        self.value = value
        self.node = node

    # -- helpers -------------------------------------------------------

    def _coerce(self, other: Number) -> "TracedValue":
        if isinstance(other, TracedValue):
            if other.tracer is not self.tracer:
                raise ValueError("cannot mix values from different tracers")
            return other
        return self.tracer.constant(float(other))

    def _binary(self, other: Number, op: Callable[[float, float], float]
                ) -> "TracedValue":
        rhs = self._coerce(other)
        return self.tracer.record(op(self.value, rhs.value), [self, rhs])

    # -- arithmetic ----------------------------------------------------

    def __add__(self, other: Number) -> "TracedValue":
        return self._binary(other, lambda a, b: a + b)

    __radd__ = __add__

    def __sub__(self, other: Number) -> "TracedValue":
        return self._binary(other, lambda a, b: a - b)

    def __rsub__(self, other: Number) -> "TracedValue":
        rhs = self._coerce(other)
        return rhs._binary(self, lambda a, b: a - b)

    def __mul__(self, other: Number) -> "TracedValue":
        return self._binary(other, lambda a, b: a * b)

    __rmul__ = __mul__

    def __truediv__(self, other: Number) -> "TracedValue":
        return self._binary(other, lambda a, b: a / b)

    def __rtruediv__(self, other: Number) -> "TracedValue":
        rhs = self._coerce(other)
        return rhs._binary(self, lambda a, b: a / b)

    def __neg__(self) -> "TracedValue":
        return self.tracer.record(-self.value, [self])

    def minimum(self, other: Number) -> "TracedValue":
        """Traced min (one compare-select operation)."""
        return self._binary(other, min)

    def maximum(self, other: Number) -> "TracedValue":
        return self._binary(other, max)

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TracedValue({self.value!r}, node={self.node})"


def tree_reduce(values: Sequence[TracedValue],
                op: Callable[[TracedValue, TracedValue], TracedValue]
                ) -> TracedValue:
    """Balanced reduction — how an ideal dataflow machine reassociates.

    ``sum(values)`` builds a serial chain (span n); this builds the
    log-depth tree the limit study assumes is reachable.
    """
    if not values:
        raise ValueError("cannot reduce an empty sequence")
    layer = list(values)
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(op(layer[i], layer[i + 1]))
        if len(layer) % 2 == 1:
            nxt.append(layer[-1])
        layer = nxt
    return layer[0]


def tree_sum(values: Sequence[TracedValue]) -> TracedValue:
    """Balanced (log-depth) traced sum of ``values``."""
    return tree_reduce(values, lambda a, b: a + b)


# ----------------------------------------------------------------------
# Traced miniature kernels (used by the Table IV validation tests)


def traced_ssd(tracer: Tracer, left: Sequence[Sequence[float]],
               right: Sequence[Sequence[float]]) -> List[List[TracedValue]]:
    """Per-pixel squared differences (the disparity SSD kernel body)."""
    out: List[List[TracedValue]] = []
    for lrow, rrow in zip(left, right):
        row = []
        for lval, rval in zip(lrow, rrow):
            a = tracer.constant(lval)
            b = tracer.constant(rval)
            diff = a - b
            row.append(diff * diff)
        out.append(row)
    return out


def traced_integral_serial(tracer: Tracer,
                           image: Sequence[Sequence[float]]
                           ) -> List[List[TracedValue]]:
    """Integral image with the C code's serial accumulation chains."""
    rows = len(image)
    cols = len(image[0]) if rows else 0
    cells = [[tracer.constant(v) for v in row] for row in image]
    # Serial row prefix sums.
    for r in range(rows):
        for c in range(1, cols):
            cells[r][c] = cells[r][c] + cells[r][c - 1]
    # Serial column prefix sums.
    for c in range(cols):
        for r in range(1, rows):
            cells[r][c] = cells[r][c] + cells[r - 1][c]
    return cells


def traced_integral_reassociated(tracer: Tracer,
                                 image: Sequence[Sequence[float]]
                                 ) -> List[List[TracedValue]]:
    """Integral image with tree-reassociated prefixes (ideal machine).

    Each output is the tree sum of its dominated rectangle — the dataflow
    limit the paper's tool measures.  O(n^2) redundant work per output is
    irrelevant to span, which is what parallelism estimates care about;
    work here models a scan-style 2x overhead instead by reusing row
    sums.
    """
    rows = len(image)
    cols = len(image[0]) if rows else 0
    cells = [[tracer.constant(v) for v in row] for row in image]
    row_prefix: List[List[TracedValue]] = []
    for r in range(rows):
        prefixes = []
        for c in range(cols):
            prefixes.append(tree_sum(cells[r][: c + 1]))
        row_prefix.append(prefixes)
    out: List[List[TracedValue]] = []
    for r in range(rows):
        out.append(
            [tree_sum([row_prefix[k][c] for k in range(r + 1)])
             for c in range(cols)]
        )
    return out


def traced_convolution_row(tracer: Tracer, signal: Sequence[float],
                           taps: Sequence[float]) -> List[TracedValue]:
    """1-D correlation of a row with small taps (valid region only)."""
    traced_signal = tracer.constants(list(signal))
    traced_taps = tracer.constants(list(taps))
    half = len(taps) // 2
    out = []
    for center in range(half, len(signal) - half):
        products = [
            traced_signal[center - half + t] * traced_taps[t]
            for t in range(len(taps))
        ]
        out.append(tree_sum(products))
    return out


def traced_winner_take_all(tracer: Tracer,
                           costs: Sequence[Sequence[float]]
                           ) -> List[TracedValue]:
    """Per-pixel running min across shifts (disparity's Sort kernel).

    ``costs[d][p]`` is pixel ``p``'s cost at shift ``d``; the carried min
    across ``d`` is the loop-carried chain the model captures.
    """
    n_shifts = len(costs)
    n_pixels = len(costs[0]) if n_shifts else 0
    best = [tracer.constant(costs[0][p]) for p in range(n_pixels)]
    for d in range(1, n_shifts):
        for p in range(n_pixels):
            best[p] = best[p].minimum(tracer.constant(costs[d][p]))
    return best
