"""Work-accounting metrics: counters, gauges, histograms, kernel work models.

The paper characterizes SD-VBS by *time* (Figures 2/3) and by abstract
dataflow *operations* (Table IV), but speedup studies on these kernels
(Schwambach et al., arXiv:1502.07446) need the bridge between the two:
how many arithmetic operations and memory bytes a kernel actually moves
for a given input shape, and therefore what GFLOP/s, GB/s and
arithmetic intensity an implementation achieves.  This module is that
bridge:

* :class:`MetricsRegistry` — a lightweight in-process sink for counters,
  gauges and histograms.  :class:`~repro.core.profiler.KernelProfiler`
  and :class:`~repro.core.tracing.TraceRecorder` feed it when one is
  attached, and the dual-backend dispatcher records *work* into it.
* :class:`WorkEstimate` / *work models* — every kernel registered in
  :mod:`repro.core.backend` can carry an analytic model mapping its call
  arguments (shapes only; values are never read) to flop and byte
  counts.  The dispatcher evaluates the model per call and accumulates
  per-kernel :class:`KernelWork` totals, from which achieved GFLOP/s,
  GB/s and flop/byte arithmetic intensity follow.
* :func:`use_metrics` — scoped selection of the process-wide active
  registry (mirroring :func:`repro.core.backend.use_backend`), so the
  dispatcher needs no threading of arguments through application code.
* :func:`analytic_work` — evaluate a kernel's work model on the
  deterministic equivalence-case inputs at a given
  :class:`~repro.core.types.InputSize`, without running the kernel;
  this powers the work-model table of ``sdvbs table4`` and KERNELS.md.

Byte counts follow the roofline convention: each input operand is read
once and each output written once (8 bytes per float64 element), i.e.
compulsory traffic, not cache-level traffic.  Flop counts tally the
arithmetic of the loop nest (one add/sub/mul/div/sqrt/exp = 1 flop).
Both are *models* — documented, deterministic functions of shape — so
recorded intensities are comparable across hosts and backends.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

#: A work model: same signature as its kernel, returns a WorkEstimate.
WorkModel = Callable[..., "WorkEstimate"]

#: Bytes per element for the suite's float64 arrays.
FLOAT_BYTES = 8


class LogHistogram:
    """Bounded log-bucketed histogram with interpolated percentiles.

    HdrHistogram-style: values are recorded into fixed geometrically
    spaced buckets covering ``[low, high)`` with ``buckets_per_decade``
    buckets per factor of 10, so memory is O(buckets) no matter how many
    observations arrive — the fix for the old unbounded raw-sample
    lists, and the storage the streaming driver uses for per-frame
    latencies.  Exact ``count``/``sum``/``min``/``max`` (and a running
    sum of squares for ``stddev``) are tracked alongside the buckets.

    The first ``raw_limit`` observations are additionally retained
    verbatim.  While every observation is retained
    (``count <= raw_limit``) percentiles are computed *exactly* with
    numpy-style linear interpolation on the sorted samples; beyond the
    limit they interpolate within the log buckets, accurate to one
    bucket width (relative error ``10**(1/buckets_per_decade) - 1``,
    about 3.7% at the default resolution).  Values outside
    ``[low, high)`` clamp into the edge buckets; reported percentiles
    are always clamped into the exact ``[min, max]`` envelope.

    ``merge`` combines two histograms with identical bucket layouts —
    the multi-stream driver merges per-stream histograms this way.
    Percentiles of a merged histogram are deterministic regardless of
    merge order.
    """

    __slots__ = ("low", "high", "buckets_per_decade", "raw_limit",
                 "_counts", "_raw", "count", "total", "sum_sq",
                 "min", "max")

    def __init__(self, low: float = 1e-6, high: float = 3600.0,
                 buckets_per_decade: int = 64,
                 raw_limit: int = 512) -> None:
        if low <= 0 or high <= low:
            raise ValueError("need 0 < low < high")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.low = float(low)
        self.high = float(high)
        self.buckets_per_decade = int(buckets_per_decade)
        self.raw_limit = int(raw_limit)
        decades = math.log10(self.high / self.low)
        self._counts: List[int] = [0] * (int(math.ceil(
            decades * self.buckets_per_decade)) + 1)
        self._raw: List[float] = []
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------

    def _bucket_index(self, value: float) -> int:
        if value < self.low:
            return 0
        index = int(self.buckets_per_decade
                    * math.log10(value / self.low))
        return min(index, len(self._counts) - 1)

    def _edge(self, index: int) -> float:
        return self.low * 10.0 ** (index / self.buckets_per_decade)

    def observe(self, value: float) -> None:
        """Record one observation (O(1) time, bounded memory)."""
        value = float(value)
        self._counts[self._bucket_index(value)] += 1
        self.count += 1
        self.total += value
        self.sum_sq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._raw) < self.raw_limit:
            self._raw.append(value)

    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation (0.0 below two observations)."""
        if self.count < 2:
            return 0.0
        var = self.sum_sq / self.count - self.mean ** 2
        return math.sqrt(max(0.0, var))

    @property
    def exact(self) -> bool:
        """True while every observation is still retained verbatim."""
        return self.count == len(self._raw)

    def raw_samples(self) -> List[float]:
        """The retained raw observations (all of them while ``exact``)."""
        return list(self._raw)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``0 <= q <= 100``), interpolated.

        Exact while ``exact`` holds; otherwise accurate to one bucket
        width.  Returns 0.0 for an empty histogram.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        rank = q / 100.0 * (self.count - 1)
        if self.exact:
            ordered = sorted(self._raw)
            lower = int(math.floor(rank))
            upper = min(lower + 1, len(ordered) - 1)
            frac = rank - lower
            return ordered[lower] * (1.0 - frac) + ordered[upper] * frac
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count > rank:
                lo, hi = self._edge(index), self._edge(index + 1)
                frac = (rank - cumulative) / bucket_count
                value = lo + frac * (hi - lo)
                return min(max(value, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def percentiles(self, qs: Tuple[float, ...] = (50.0, 90.0, 95.0,
                                                   99.0, 99.9)
                    ) -> Dict[str, float]:
        """``{"p50": ..., "p90": ..., ...}`` for the requested ranks."""
        out: Dict[str, float] = {}
        for q in qs:
            label = f"{q:g}"
            out[f"p{label}"] = self.percentile(q)
        return out

    def nonzero_buckets(self) -> List[Tuple[float, float, int]]:
        """``(lower_edge, upper_edge, count)`` for every occupied bucket."""
        return [
            (self._edge(i), self._edge(i + 1), c)
            for i, c in enumerate(self._counts)
            if c
        ]

    # ------------------------------------------------------------------

    def copy(self) -> "LogHistogram":
        """An independent deep copy (same layout, counts and raw set).

        The telemetry exposition renders from copies taken under the
        registry lock, so a scrape never observes a histogram half-way
        through an ``observe`` from another thread.
        """
        clone = LogHistogram(low=self.low, high=self.high,
                             buckets_per_decade=self.buckets_per_decade,
                             raw_limit=self.raw_limit)
        clone._counts = list(self._counts)
        clone._raw = list(self._raw)
        clone.count = self.count
        clone.total = self.total
        clone.sum_sq = self.sum_sq
        clone.min = self.min
        clone.max = self.max
        return clone

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other``'s observations into this histogram in place."""
        if (other.low != self.low or other.high != self.high
                or other.buckets_per_decade != self.buckets_per_decade):
            raise ValueError("cannot merge histograms with different "
                             "bucket layouts")
        was_exact = self.exact and other.exact
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.sum_sq += other.sum_sq
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if was_exact and self.count - len(self._raw) == len(other._raw):
            self._raw.extend(other._raw)
            if len(self._raw) > self.raw_limit:
                # Keep exactness decisions honest: a truncated raw set
                # would silently bias exact percentiles, so drop to
                # bucket-resolution mode instead.
                del self._raw[self.raw_limit:]
        else:
            del self._raw[min(len(self._raw), self.raw_limit):]

    def summary(self) -> Dict[str, float]:
        """Exact aggregates plus interpolated latency percentiles."""
        empty = self.count == 0
        payload: Dict[str, float] = {
            "count": float(self.count),
            "sum": self.total,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            "mean": self.mean,
            "stddev": self.stddev,
        }
        payload.update(self.percentiles())
        return payload


@dataclass(frozen=True)
class WorkEstimate:
    """Analytic work of one kernel call: flop and byte counts.

    ``flops`` counts arithmetic operations, ``traffic_bytes`` compulsory
    memory traffic (read every input once, write every output once).
    """

    flops: float
    traffic_bytes: float

    def __post_init__(self) -> None:
        if self.flops < 0 or self.traffic_bytes < 0:
            raise ValueError("work estimates must be non-negative")

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of compulsory traffic (0.0 for zero traffic)."""
        if self.traffic_bytes <= 0:
            return 0.0
        return self.flops / self.traffic_bytes

    def __add__(self, other: "WorkEstimate") -> "WorkEstimate":
        return WorkEstimate(self.flops + other.flops,
                            self.traffic_bytes + other.traffic_bytes)


@dataclass
class KernelWork:
    """Accumulated work of one kernel across the calls of a run.

    ``seconds`` is wall time measured around the dispatched calls (the
    dispatcher's own clock, not the profiler's), so the achieved-rate
    properties are internally consistent with the recorded work.
    """

    kernel: str
    calls: int = 0
    flops: float = 0.0
    traffic_bytes: float = 0.0
    seconds: float = 0.0

    def add(self, estimate: WorkEstimate, seconds: float) -> None:
        self.calls += 1
        self.flops += estimate.flops
        self.traffic_bytes += estimate.traffic_bytes
        self.seconds += seconds

    @property
    def arithmetic_intensity(self) -> float:
        if self.traffic_bytes <= 0:
            return 0.0
        return self.flops / self.traffic_bytes

    @property
    def gflops_per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.flops / self.seconds / 1e9

    @property
    def gbytes_per_second(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.traffic_bytes / self.seconds / 1e9

    def to_dict(self) -> Dict[str, object]:
        return {
            "calls": self.calls,
            "flops": self.flops,
            "bytes": self.traffic_bytes,
            "seconds": self.seconds,
            "gflops_per_s": self.gflops_per_second,
            "gbytes_per_s": self.gbytes_per_second,
            "arithmetic_intensity": self.arithmetic_intensity,
        }

    @classmethod
    def from_dict(cls, kernel: str,
                  payload: Mapping[str, object]) -> "KernelWork":
        return cls(
            kernel=kernel,
            calls=int(payload.get("calls", 0)),  # type: ignore[arg-type]
            flops=float(payload.get("flops", 0.0)),  # type: ignore[arg-type]
            traffic_bytes=float(payload.get("bytes", 0.0)),  # type: ignore[arg-type]
            seconds=float(payload.get("seconds", 0.0)),  # type: ignore[arg-type]
        )


class _NullLock:
    """No-op context manager standing in for a lock (default path)."""

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


class MetricsRegistry:
    """In-process sink for counters, gauges, histograms and kernel work.

    Deliberately minimal: plain dictionaries and, by default, no
    locking (one registry per measurement cell, like the profiler) and
    no export dependencies.  Pass ``threadsafe=True`` when one registry
    is shared across threads — the serve layer's job manager does —
    and every mutation and snapshot goes through one internal lock.
    Histograms are bounded :class:`LogHistogram` instances — memory
    stays O(buckets) however many samples a long stream observes — and
    :meth:`to_dict` summarizes them as count/sum/min/max/mean (exact,
    from the running aggregates) so exports stay bounded too.
    """

    def __init__(self, threadsafe: bool = False) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, LogHistogram] = {}
        self._work: Dict[str, KernelWork] = {}
        self._lock = threading.Lock() if threadsafe else _NullLock()

    # ------------------------------------------------------------------
    # Primitive instruments

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name`` (bounded memory)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LogHistogram()
            histogram.observe(value)

    @property
    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histogram(self, name: str) -> List[float]:
        """The raw samples of one histogram ([] when never observed).

        Exact and complete up to the histogram's retention limit
        (:attr:`LogHistogram.raw_limit` samples); past that, only the
        earliest retained samples are returned while the summary in
        :meth:`to_dict` still accounts every observation.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.raw_samples() if histogram is not None else []

    def log_histogram(self, name: str) -> Optional[LogHistogram]:
        """The underlying bounded histogram (``None`` if never observed)."""
        with self._lock:
            return self._histograms.get(name)

    def histogram_snapshot(self) -> Dict[str, LogHistogram]:
        """Consistent deep copies of every histogram, keyed by name.

        Taken under the registry lock so concurrent ``observe`` calls
        can never produce a torn view — the telemetry layer's
        ``/metrics`` exposition renders from this snapshot.
        """
        with self._lock:
            return {name: histogram.copy()
                    for name, histogram in self._histograms.items()}

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """``LogHistogram.summary()`` per histogram (locked snapshot)."""
        return {name: histogram.summary()
                for name, histogram in self.histogram_snapshot().items()}

    # ------------------------------------------------------------------
    # Kernel work accounting (fed by the backend dispatcher)

    def record_work(self, kernel: str, estimate: WorkEstimate,
                    seconds: float) -> None:
        """Accumulate one dispatched kernel call's work and wall time."""
        with self._lock:
            entry = self._work.get(kernel)
            if entry is None:
                entry = self._work[kernel] = KernelWork(kernel=kernel)
            entry.add(estimate, seconds)

    @property
    def kernel_work(self) -> Dict[str, KernelWork]:
        with self._lock:
            return dict(self._work)

    # ------------------------------------------------------------------
    # Serialization (the export layer's ``metrics`` block)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot: counters, gauges, histogram summaries,
        per-kernel work with derived rates."""
        with self._lock:
            return self._to_dict_locked()

    def _to_dict_locked(self) -> Dict[str, object]:
        histograms: Dict[str, object] = {}
        for name, histogram in sorted(self._histograms.items()):
            histograms[name] = {
                "count": histogram.count,
                "sum": histogram.total,
                "min": histogram.min,
                "max": histogram.max,
                "mean": histogram.mean,
            }
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": histograms,
            "kernels": {
                name: self._work[name].to_dict()
                for name in sorted(self._work)
            },
        }


def kernel_work_from_dict(
    payload: Mapping[str, object]) -> Dict[str, KernelWork]:
    """Rebuild the per-kernel work table from a ``metrics`` export block."""
    kernels: Mapping[str, Mapping[str, object]] = payload.get("kernels", {})  # type: ignore[assignment]
    return {
        name: KernelWork.from_dict(name, entry)
        for name, entry in kernels.items()
    }


# ----------------------------------------------------------------------
# Active registry (scoped, per process — mirrors backend selection)

_active_registry: Optional[MetricsRegistry] = None
_active_annotator: Optional[object] = None


def active_metrics() -> Optional[MetricsRegistry]:
    """The registry dispatched kernel calls currently record into."""
    return _active_registry


def active_annotator() -> Optional[object]:
    """The span annotator (a TraceRecorder) for the active scope."""
    return _active_annotator


@contextmanager
def use_metrics(registry: Optional[MetricsRegistry],
                annotator: Optional[object] = None
                ) -> Iterator[Optional[MetricsRegistry]]:
    """Scoped selection of the active registry (and span annotator).

    ``annotator`` is any object with an ``annotate_current(**attrs)``
    method — in practice a :class:`~repro.core.tracing.TraceRecorder` —
    that receives per-call flop/byte attributions for the innermost open
    span.  ``None`` for both is a no-op scope.  The previous selection
    is restored on exit, so scopes nest.
    """
    global _active_registry, _active_annotator
    previous = (_active_registry, _active_annotator)
    _active_registry = registry
    _active_annotator = annotator
    try:
        yield registry
    finally:
        _active_registry, _active_annotator = previous


# ----------------------------------------------------------------------
# Analytic evaluation without execution


def analytic_work(spec: "object", size: "object",
                  variant: int = 0) -> Optional[WorkEstimate]:
    """Evaluate one kernel's work model on its equivalence-case inputs.

    Builds the kernel's first deterministic equivalence case at
    ``size``/``variant`` (:mod:`repro.core.equivalence`) and applies the
    registered work model to those arguments — no kernel execution, just
    shape arithmetic.  Returns ``None`` for kernels without a work model.
    """
    from .equivalence import cases_for

    work = getattr(spec, "work", None)
    if work is None:
        return None
    cases = cases_for(spec, size, variant)  # type: ignore[arg-type]
    if not cases:
        return None
    _, args = cases[0]
    return work(*args)


def work_model_table(size: "object") -> List[Tuple[str, WorkEstimate]]:
    """(kernel name, analytic work at ``size``) for every modeled kernel."""
    from .backend import registered_kernels

    rows: List[Tuple[str, WorkEstimate]] = []
    for spec in registered_kernels():
        estimate = analytic_work(spec, size)
        if estimate is not None:
            rows.append((spec.name, estimate))
    return rows
