"""Dense Lucas-Kanade optical flow — per-pixel motion fields.

The tracking benchmark follows sparse features; this extension solves the
same 2x2 structure-tensor system at *every* pixel, fully vectorized with
the suite's window-sum kernels.  Useful for motion segmentation demos and
as a denser cross-check of the sparse tracker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.filters import gaussian_blur
from ..imgproc.gradient import gradient

@dataclass(frozen=True)
class FlowField:
    """Per-pixel displacement (dy, dx) plus a validity mask."""

    dy: np.ndarray
    dx: np.ndarray
    valid: np.ndarray  # where the tensor was invertible

    def median_motion(self) -> Tuple[float, float]:
        """Robust global motion estimate over valid pixels."""
        if not self.valid.any():
            raise ValueError("no valid flow vectors")
        return (
            float(np.median(self.dy[self.valid])),
            float(np.median(self.dx[self.valid])),
        )


def dense_flow(
    prev_frame: np.ndarray,
    next_frame: np.ndarray,
    window: int = 9,
    min_eigen: float = 1e-4,
    profiler: Optional[KernelProfiler] = None,
) -> FlowField:
    """One-shot dense Lucas-Kanade flow from ``prev`` to ``next``.

    Solves, per pixel, ``[Sxx Sxy; Sxy Syy] [dx; dy] = [bx; by]`` where
    the right-hand side aggregates ``-It * grad`` over the window.  Valid
    only for small motions (no pyramid); pixels whose tensor's smaller
    eigenvalue is below ``min_eigen`` are masked out.
    """
    profiler = ensure_profiler(profiler)
    prev_frame = np.asarray(prev_frame, dtype=np.float64)
    next_frame = np.asarray(next_frame, dtype=np.float64)
    if prev_frame.shape != next_frame.shape or prev_frame.ndim != 2:
        raise ValueError("frames must be equal-shape 2-D images")
    with profiler.kernel("GaussianFilter"):
        prev_smooth = gaussian_blur(prev_frame, 1.0)
        next_smooth = gaussian_blur(next_frame, 1.0)
    with profiler.kernel("Gradient"):
        # Average of both frames' gradients symmetrizes the linearization
        # (reduces the bias of one-sided temporal differencing).
        gx_prev, gy_prev = gradient(prev_smooth)
        gx_next, gy_next = gradient(next_smooth)
        gx = 0.5 * (gx_prev + gx_next)
        gy = 0.5 * (gy_prev + gy_next)
        dt = next_smooth - prev_smooth
    with profiler.kernel("AreaSum"):
        from ..imgproc.integral import window_sums

        half = window // 2

        def aggregate(field: np.ndarray) -> np.ndarray:
            inner = window_sums(field, window)
            rows, cols = field.shape
            out = np.empty_like(field)
            out[half : rows - half, half : cols - half] = inner
            out[:half, half : cols - half] = inner[0]
            out[rows - half :, half : cols - half] = inner[-1]
            out[:, :half] = out[:, half : half + 1]
            out[:, cols - half :] = out[:, cols - half - 1 : cols - half]
            return out

        # The tensor and the right-hand side must use the *same*
        # gradients, or the solve is systematically mis-scaled.
        sxx = aggregate(gx * gx)
        sxy = aggregate(gx * gy)
        syy = aggregate(gy * gy)
        bx = aggregate(-dt * gx)
        by = aggregate(-dt * gy)
    with profiler.kernel("MatrixInversion"):
        det = sxx * syy - sxy * sxy
        trace_half = 0.5 * (sxx + syy)
        disc = np.sqrt(np.maximum(0.0, trace_half**2 - det))
        lam_min = trace_half - disc
        valid = (lam_min > min_eigen) & (np.abs(det) > 1e-12)
        safe_det = np.where(valid, det, 1.0)
        dx = (syy * bx - sxy * by) / safe_det
        dy = (sxx * by - sxy * bx) / safe_det
        dx = np.where(valid, dx, 0.0)
        dy = np.where(valid, dy, 0.0)
    return FlowField(dy=dy, dx=dx, valid=valid)


def iterative_dense_flow(
    prev_frame: np.ndarray,
    next_frame: np.ndarray,
    iterations: int = 3,
    window: int = 9,
    profiler: Optional[KernelProfiler] = None,
) -> FlowField:
    """Refine dense flow by warping and re-solving (small-motion Newton).

    Each pass warps ``next`` back by the current median flow and adds the
    incremental solution — handles motions of a few pixels without a
    pyramid, as long as they are globally coherent.
    """
    profiler = ensure_profiler(profiler)
    prev_frame = np.asarray(prev_frame, dtype=np.float64)
    next_frame = np.asarray(next_frame, dtype=np.float64)
    total_dy, total_dx = 0.0, 0.0
    field = dense_flow(prev_frame, next_frame, window, profiler=profiler)
    for _ in range(iterations):
        if not field.valid.any():
            break
        med_dy, med_dx = field.median_motion()
        total_dy += med_dy
        total_dx += med_dx
        if abs(med_dy) < 0.01 and abs(med_dx) < 0.01:
            break
        from ..imgproc.interpolate import bilinear

        rows, cols = prev_frame.shape
        rr, cc = np.mgrid[:rows, :cols].astype(np.float64)
        warped = bilinear(next_frame, rr + total_dy, cc + total_dx)
        field = dense_flow(prev_frame, warped, window, profiler=profiler)
    return FlowField(
        dy=field.dy + total_dy,
        dx=field.dx + total_dx,
        valid=field.valid,
    )
