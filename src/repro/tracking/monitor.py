"""Track-quality monitoring: forward-backward validation.

Shi & Tomasi's "Good Features to Track" pairs detection with *monitoring*
— discarding features whose appearance no longer matches.  The standard
modern form is the forward-backward check: track each feature forward a
frame, then track the result backward; a healthy track returns to its
start.  Features drifting onto occlusions or leaving the frame fail the
round trip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from .features import Feature
from .klt import Track, track_features


@dataclass(frozen=True)
class ValidatedTrack:
    """A forward track plus its round-trip error."""

    forward: Track
    backward_error: float
    valid: bool


def forward_backward_tracks(
    prev_frame: np.ndarray,
    next_frame: np.ndarray,
    features: Sequence[Feature],
    max_error: float = 0.5,
    levels: int = 3,
    profiler: Optional[KernelProfiler] = None,
) -> List[ValidatedTrack]:
    """Track forward then backward; flag tracks whose round trip drifts.

    ``max_error`` is the allowed distance (pixels) between a feature's
    start and its backward-tracked return position.
    """
    profiler = ensure_profiler(profiler)
    forward = track_features(prev_frame, next_frame, features,
                             levels=levels, profiler=profiler)
    # Backward pass starts from the forward endpoints.
    endpoints = [
        Feature(row=t.end[0], col=t.end[1], score=0.0) for t in forward
    ]
    backward = track_features(next_frame, prev_frame, endpoints,
                              levels=levels, profiler=profiler)
    validated = []
    for fwd, bwd in zip(forward, backward):
        error = math.hypot(
            bwd.end[0] - fwd.start[0], bwd.end[1] - fwd.start[1]
        )
        validated.append(
            ValidatedTrack(
                forward=fwd,
                backward_error=error,
                valid=fwd.converged and bwd.converged and error <= max_error,
            )
        )
    return validated


def surviving_features(
    validated: Sequence[ValidatedTrack],
) -> List[Feature]:
    """Endpoints of valid tracks, re-usable as next-frame features."""
    return [
        Feature(row=v.forward.end[0], col=v.forward.end[1], score=0.0)
        for v in validated
        if v.valid
    ]


def track_with_monitoring(
    frames: Sequence[np.ndarray],
    initial_features: Sequence[Feature],
    max_error: float = 0.5,
    levels: int = 3,
    profiler: Optional[KernelProfiler] = None,
) -> List[List[ValidatedTrack]]:
    """Follow one feature population through a sequence, dropping tracks
    that fail the forward-backward check at any step."""
    if len(frames) < 2:
        raise ValueError("need at least two frames")
    profiler = ensure_profiler(profiler)
    population = list(initial_features)
    history: List[List[ValidatedTrack]] = []
    for prev_frame, next_frame in zip(frames[:-1], frames[1:]):
        if not population:
            history.append([])
            continue
        validated = forward_backward_tracks(
            prev_frame, next_frame, population,
            max_error=max_error, levels=levels, profiler=profiler,
        )
        history.append(validated)
        population = surviving_features(validated)
    return history
