"""Benchmark wiring for the Feature Tracking (KLT) application."""

from __future__ import annotations

from typing import List, Mapping

from ..core.dataflow import Chain, Op, ParMap, Scan, Seq
from ..core.inputs import sequence
from ..core.profiler import KernelProfiler
from ..core.registry import Benchmark
from ..core.types import (
    Characteristic,
    ConcentrationArea,
    InputSize,
    KernelInfo,
    ParallelismClass,
    ParallelismEstimate,
)
from .klt import median_motion, track_sequence

N_FRAMES = 3
MAX_FEATURES = 48
PYRAMID_LEVELS = 3

KERNELS = (
    KernelInfo("Gradient", "image derivatives per pyramid level",
               ParallelismClass.ILP),
    KernelInfo("GaussianFilter", "frame smoothing and pyramid construction",
               ParallelismClass.DLP),
    KernelInfo("IntegralImage", "structure-tensor summed-area tables",
               ParallelismClass.TLP),
    KernelInfo("AreaSum", "windowed tensor sums and corner scores",
               ParallelismClass.TLP),
    KernelInfo("MatrixInversion", "per-feature 2x2 flow solves",
               ParallelismClass.DLP),
)


def setup(size: InputSize, variant: int):
    """Build the synthetic translating sequence (untimed)."""
    return sequence(size, variant, n_frames=N_FRAMES)


def run(seq, profiler: KernelProfiler) -> Mapping[str, object]:
    """Extract and track features across a prepared sequence."""
    tracks = track_sequence(
        seq.frames,
        max_features=MAX_FEATURES,
        levels=PYRAMID_LEVELS,
        profiler=profiler,
    )
    flat = [t for frame_tracks in tracks for t in frame_tracks]
    converged = [t for t in flat if t.converged]
    outputs: Mapping[str, object]
    if converged:
        dy, dx = median_motion(converged)
        outputs = {
            "tracks": len(flat),
            "converged": len(converged),
            "median_motion": (dy, dx),
            "true_motion": seq.true_motion,
        }
    else:
        outputs = {"tracks": len(flat), "converged": 0}
    return outputs


def parallelism_models(size: InputSize) -> List[ParallelismEstimate]:
    """Work/span models for the tracking kernels.

    Matches Table IV's ordering for tracking: Matrix Inversion (a fully
    parallel batch of tiny independent solves) tops the list by orders of
    magnitude, Integral Image and Gaussian Filter are in the hundreds-to-
    thousands, and Gradient — modeled at basic-block ILP granularity as
    the paper classifies it — is lowest.
    """
    rows, cols = size.shape
    pixels = rows * cols
    taps = 5  # binomial filter length
    # Gradient: classified ILP — the x and y derivative passes chain
    # serially and each streams rows with a serial accumulate, giving the
    # narrowest limit in the benchmark (paper: 71x).
    gradient_model = Chain(2, ParMap(rows // 2, Chain(2 * cols, Op(1))))
    # Gaussian filter: two serial 1-D passes, parallel across the
    # orthogonal dimension (paper: 637x).
    gauss = Seq(
        ParMap(rows, Chain(cols, Op(taps))),
        ParMap(cols, Chain(rows, Op(taps))),
    )
    # Integral image: three tensor-component tables, scans reassociated
    # into parallel prefixes by the ideal machine (paper: 1,050x).
    integral = ParMap(
        3, Seq(ParMap(rows, Scan(cols)), ParMap(cols, Scan(rows)))
    )
    # Area sum: window reads stream along rows (paper: 425x).
    area = ParMap(rows, Chain(cols, Op(7)))
    # Matrix inversion: independent per feature per level, and inside each
    # solve the tensor accumulations over the 9x9 patch are themselves
    # independent multiply-adds (the paper notes the kernel's transpose/
    # multiply structure gives it the highest parallelism in tracking).
    patch = 81
    matrix_inv = ParMap(MAX_FEATURES * PYRAMID_LEVELS, ParMap(patch, Op(3)))
    estimates = []
    for name, model in (
        ("Gradient", gradient_model),
        ("GaussianFilter", gauss),
        ("IntegralImage", integral),
        ("AreaSum", area),
        ("MatrixInversion", matrix_inv),
    ):
        info = next(k for k in KERNELS if k.name == name)
        estimates.append(
            ParallelismEstimate(
                benchmark="tracking",
                kernel=name,
                parallelism=model.parallelism,
                parallelism_class=info.parallelism_class,
                work=model.work,
                span=model.span,
            )
        )
    return estimates


BENCHMARK = Benchmark(
    name="Feature Tracking",
    slug="tracking",
    area=ConcentrationArea.MOTION_TRACKING_STEREO,
    description="Extract motion from a sequence of images",
    characteristic=Characteristic.DATA_INTENSIVE,
    application_domain="Robot vision for Tracking",
    kernels=KERNELS,
    setup=setup,
    run=run,
    parallelism=parallelism_models,
    in_figure2=True,
)
