"""Pyramidal Kanade-Lucas-Tomasi feature tracking.

For each feature, the tracker solves the optical-flow normal equations

    [Sxx Sxy] [dx]   [ex]
    [Sxy Syy] [dy] = [ey]

over a patch around the feature, iterating Newton steps at each pyramid
level from coarse to fine.  The 2x2 solve is the benchmark's
"Matrix Inversion" kernel; patch sampling uses bilinear interpolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.filters import binomial_blur
from ..imgproc.gradient import gradient
from ..imgproc.interpolate import bilinear
from ..imgproc.pyramid import gaussian_pyramid
from ..linalg.matrix import SingularMatrixError, inverse_2x2
from .features import Feature, good_features


@dataclass(frozen=True)
class Track:
    """One feature's correspondence between two frames."""

    start: Tuple[float, float]  # (row, col) in the first frame
    end: Tuple[float, float]  # (row, col) in the second frame
    converged: bool
    residual: float

    @property
    def motion(self) -> Tuple[float, float]:
        return (self.end[0] - self.start[0], self.end[1] - self.start[1])


def _patch_coords(row: float, col: float,
                  half: int) -> Tuple[np.ndarray, np.ndarray]:
    offsets = np.arange(-half, half + 1, dtype=np.float64)
    rr, cc = np.meshgrid(row + offsets, col + offsets, indexing="ij")
    return rr, cc


def track_feature_level(
    prev_img: np.ndarray,
    next_img: np.ndarray,
    prev_gx: np.ndarray,
    prev_gy: np.ndarray,
    row: float,
    col: float,
    guess: Tuple[float, float],
    half: int = 4,
    iterations: int = 12,
    epsilon: float = 0.01,
    profiler: Optional[KernelProfiler] = None,
) -> Tuple[Tuple[float, float], bool, float]:
    """Refine a displacement guess at one pyramid level.

    Returns ``((dy, dx), converged, residual)`` where the displacement
    maps ``(row, col)`` in ``prev_img`` to ``(row+dy, col+dx)`` in
    ``next_img``.
    """
    profiler = ensure_profiler(profiler)
    # The whole per-feature solve — structure-tensor accumulation, the
    # 2x2 inverse, and the Newton iterations it drives — is the paper's
    # "Matrix Inversion" kernel (described as transpose/multiply-heavy).
    with profiler.kernel("MatrixInversion"):
        rr, cc = _patch_coords(row, col, half)
        template = bilinear(prev_img, rr, cc)
        gx = bilinear(prev_gx, rr, cc)
        gy = bilinear(prev_gy, rr, cc)
        sxx = float((gx * gx).sum())
        sxy = float((gx * gy).sum())
        syy = float((gy * gy).sum())
        try:
            g_inv = inverse_2x2(np.array([[sxx, sxy], [sxy, syy]]))
        except SingularMatrixError:
            return guess, False, float("inf")
        dy, dx = guess
        residual = float("inf")
        converged = False
        for _ in range(iterations):
            warped = bilinear(next_img, rr + dy, cc + dx)
            error = template - warped
            residual = float(np.abs(error).mean())
            ex = float((error * gx).sum())
            ey = float((error * gy).sum())
            step_x = g_inv[0, 0] * ex + g_inv[0, 1] * ey
            step_y = g_inv[1, 0] * ex + g_inv[1, 1] * ey
            dx += step_x
            dy += step_y
            if abs(step_x) < epsilon and abs(step_y) < epsilon:
                converged = True
                break
    return (dy, dx), converged, residual


def track_features(
    prev_frame: np.ndarray,
    next_frame: np.ndarray,
    features: Sequence[Feature],
    levels: int = 3,
    half: int = 4,
    iterations: int = 12,
    profiler: Optional[KernelProfiler] = None,
) -> List[Track]:
    """Track ``features`` from ``prev_frame`` into ``next_frame``.

    Builds Gaussian pyramids ("GaussianFilter" kernel), differentiates
    every level ("Gradient"), then refines each feature coarse-to-fine.
    """
    profiler = ensure_profiler(profiler)
    prev_frame = np.asarray(prev_frame, dtype=np.float64)
    next_frame = np.asarray(next_frame, dtype=np.float64)
    if prev_frame.shape != next_frame.shape:
        raise ValueError("frame shapes differ")
    with profiler.kernel("GaussianFilter"):
        prev_pyr = gaussian_pyramid(prev_frame, levels)
        next_pyr = gaussian_pyramid(next_frame, levels)
    with profiler.kernel("Gradient"):
        grads = [gradient(level) for level in prev_pyr]
    tracks: List[Track] = []
    for feature in features:
        dy, dx = 0.0, 0.0
        converged = False
        residual = float("inf")
        for level in range(levels - 1, -1, -1):
            scale = 2.0**level
            (dy, dx), converged, residual = track_feature_level(
                prev_pyr[level],
                next_pyr[level],
                grads[level][0],
                grads[level][1],
                feature.row / scale,
                feature.col / scale,
                (dy, dx),
                half=half,
                iterations=iterations,
                profiler=profiler,
            )
            if level > 0:
                dy *= 2.0
                dx *= 2.0
        tracks.append(
            Track(
                start=(feature.row, feature.col),
                end=(feature.row + dy, feature.col + dx),
                converged=converged,
                residual=residual,
            )
        )
    return tracks


def track_sequence(
    frames: Sequence[np.ndarray],
    max_features: int = 48,
    levels: int = 3,
    profiler: Optional[KernelProfiler] = None,
) -> List[List[Track]]:
    """Run the full benchmark pipeline over consecutive frame pairs.

    Features are re-extracted on every frame (the suite's per-frame
    image-processing phase) and tracked into the next frame.
    """
    if len(frames) < 2:
        raise ValueError("need at least two frames")
    profiler = ensure_profiler(profiler)
    all_tracks: List[List[Track]] = []
    for prev_frame, next_frame in zip(frames[:-1], frames[1:]):
        features = good_features(
            prev_frame, max_features=max_features, profiler=profiler
        )
        all_tracks.append(
            track_features(
                prev_frame, next_frame, features, levels=levels,
                profiler=profiler,
            )
        )
    return all_tracks


def median_motion(tracks: Sequence[Track],
                  converged_only: bool = True) -> Tuple[float, float]:
    """Robust (median) motion estimate across tracks — used for testing
    against the known ground-truth translation of synthetic sequences."""
    chosen = [t for t in tracks if t.converged] if converged_only else list(tracks)
    if not chosen:
        raise ValueError("no converged tracks")
    dys = sorted(t.motion[0] for t in chosen)
    dxs = sorted(t.motion[1] for t in chosen)
    mid = len(chosen) // 2
    return dys[mid], dxs[mid]
