"""Feature extraction — "good features to track" (Shi-Tomasi).

The tracking benchmark's extraction phase smooths the frame, computes
gradients, aggregates the structure tensor over a window (via integral
images / area sums), scores each pixel by the tensor's smaller eigenvalue,
and keeps the strongest scores under non-maximum suppression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.backend import register_kernel
from ..core.metrics import FLOAT_BYTES, WorkEstimate
from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.filters import binomial_blur
from ..imgproc.gradient import gradient
from ..imgproc.integral import integral_image


@dataclass(frozen=True)
class Feature:
    """A trackable point: (row, col) at pixel precision plus its score."""

    row: float
    col: float
    score: float


def structure_tensor_fields(
    image: np.ndarray,
    window: int = 7,
    profiler: Optional[KernelProfiler] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Windowed structure-tensor components ``(Sxx, Sxy, Syy)`` per pixel.

    Gradients are computed on the binomially smoothed image; each tensor
    entry is summed over a ``window x window`` neighbourhood using one
    integral image per component (the benchmark's IntegralImage + AreaSum
    kernels).  Border pixels reuse the nearest interior window.
    """
    profiler = ensure_profiler(profiler)
    if window < 3 or window % 2 == 0:
        raise ValueError("window must be an odd integer >= 3")
    with profiler.kernel("GaussianFilter"):
        smooth = binomial_blur(np.asarray(image, dtype=np.float64))
    with profiler.kernel("Gradient"):
        gx, gy = gradient(smooth)
        gxx, gxy, gyy = gx * gx, gx * gy, gy * gy
    with profiler.kernel("IntegralImage"):
        tables = [integral_image(f) for f in (gxx, gxy, gyy)]
    with profiler.kernel("AreaSum"):
        sums = []
        rows, cols = image.shape
        half = window // 2
        for table in tables:
            inner = (
                table[window:, window:]
                - table[:-window, window:]
                - table[window:, :-window]
                + table[:-window, :-window]
            )
            field = np.empty((rows, cols))
            field[half : rows - half, half : cols - half] = inner
            field[:half, half : cols - half] = inner[0]
            field[rows - half :, half : cols - half] = inner[-1]
            field[:, :half] = field[:, half : half + 1]
            field[:, cols - half :] = field[:, cols - half - 1 : cols - half]
            sums.append(field)
    return sums[0], sums[1], sums[2]


def _work_min_eigenvalue_map(sxx: np.ndarray, sxy: np.ndarray,
                             syy: np.ndarray) -> WorkEstimate:
    """Closed-form 2x2 eigensolve: 9 flops per pixel (sqrt counted as
    one); read three tensor fields, write the eigenvalue map."""
    pixels = int(np.prod(np.shape(sxx)))
    return WorkEstimate(
        flops=9.0 * pixels,
        traffic_bytes=FLOAT_BYTES * 4.0 * pixels,
    )


def _min_eigenvalue_map_ref(sxx: np.ndarray, sxy: np.ndarray,
                            syy: np.ndarray) -> np.ndarray:
    """Loop-faithful per-pixel 2x2 eigensolve (the suite's "matrix ops").

    The closed-form smaller-eigenvalue arithmetic is evaluated one pixel
    at a time in the same operation order as the vectorized path.
    """
    sxx = np.asarray(sxx, dtype=np.float64)
    sxy = np.asarray(sxy, dtype=np.float64)
    syy = np.asarray(syy, dtype=np.float64)
    rows, cols = sxx.shape
    out = np.empty((rows, cols), dtype=np.float64)
    for r in range(rows):
        for c in range(cols):
            a, b, d = sxx[r, c], sxy[r, c], syy[r, c]
            trace_half = 0.5 * (a + d)
            radicand = 0.25 * (a - d) ** 2 + b * b
            discriminant = np.sqrt(radicand if radicand > 0.0 else 0.0)
            out[r, c] = trace_half - discriminant
    return out


@register_kernel(
    "tracking.min_eigenvalue",
    paper_kernel="Matrix Inversion (2x2 eigensolve)",
    apps=("tracking",),
    ref=_min_eigenvalue_map_ref,
    work=_work_min_eigenvalue_map,
)
def min_eigenvalue_map(sxx: np.ndarray, sxy: np.ndarray,
                       syy: np.ndarray) -> np.ndarray:
    """Smaller eigenvalue of the 2x2 structure tensor at every pixel."""
    trace_half = 0.5 * (sxx + syy)
    discriminant = np.sqrt(
        np.maximum(0.0, 0.25 * (sxx - syy) ** 2 + sxy * sxy)
    )
    return trace_half - discriminant


def select_features(
    score: np.ndarray,
    max_features: int = 64,
    min_distance: int = 6,
    quality: float = 0.05,
    border: int = 8,
) -> List[Feature]:
    """Greedy top-score selection with a minimum inter-feature distance.

    Candidates below ``quality * max_score`` or inside the image border
    are discarded — the same pruning the suite's extraction code applies.
    """
    if max_features < 1:
        raise ValueError("max_features must be positive")
    score = np.asarray(score, dtype=np.float64)
    rows, cols = score.shape
    masked = score.copy()
    if border > 0:
        masked[:border] = -np.inf
        masked[-border:] = -np.inf
        masked[:, :border] = -np.inf
        masked[:, -border:] = -np.inf
    peak = float(masked.max())
    if not np.isfinite(peak) or peak <= 0.0:
        return []
    threshold = quality * peak
    order = np.argsort(masked, axis=None)[::-1]
    taken: List[Feature] = []
    occupied = np.zeros_like(score, dtype=bool)
    for flat in order:
        if len(taken) >= max_features:
            break
        value = masked.flat[flat]
        if value < threshold:
            break
        r, c = divmod(int(flat), cols)
        if occupied[r, c]:
            continue
        taken.append(Feature(row=float(r), col=float(c), score=float(value)))
        r0, r1 = max(0, r - min_distance), min(rows, r + min_distance + 1)
        c0, c1 = max(0, c - min_distance), min(cols, c + min_distance + 1)
        occupied[r0:r1, c0:c1] = True
    return taken


def good_features(
    image: np.ndarray,
    max_features: int = 64,
    window: int = 7,
    min_distance: int = 6,
    quality: float = 0.05,
    profiler: Optional[KernelProfiler] = None,
) -> List[Feature]:
    """Full extraction pipeline: tensor fields -> scores -> selection."""
    profiler = ensure_profiler(profiler)
    sxx, sxy, syy = structure_tensor_fields(image, window, profiler)
    with profiler.kernel("AreaSum"):
        score = min_eigenvalue_map(sxx, sxy, syy)
        return select_features(
            score,
            max_features=max_features,
            min_distance=min_distance,
            quality=quality,
        )
