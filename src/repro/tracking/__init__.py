"""Feature Tracking: KLT feature extraction and pyramidal tracking."""

from .benchmark import BENCHMARK, KERNELS, MAX_FEATURES, N_FRAMES, PYRAMID_LEVELS
from .features import (
    Feature,
    good_features,
    min_eigenvalue_map,
    select_features,
    structure_tensor_fields,
)
from .dense_flow import FlowField, dense_flow, iterative_dense_flow
from .monitor import (
    ValidatedTrack,
    forward_backward_tracks,
    surviving_features,
    track_with_monitoring,
)
from .klt import (
    Track,
    median_motion,
    track_feature_level,
    track_features,
    track_sequence,
)

__all__ = [
    "BENCHMARK",
    "KERNELS",
    "MAX_FEATURES",
    "N_FRAMES",
    "PYRAMID_LEVELS",
    "Feature",
    "FlowField",
    "Track",
    "ValidatedTrack",
    "dense_flow",
    "forward_backward_tracks",
    "good_features",
    "iterative_dense_flow",
    "median_motion",
    "min_eigenvalue_map",
    "select_features",
    "structure_tensor_fields",
    "surviving_features",
    "track_feature_level",
    "track_features",
    "track_sequence",
    "track_with_monitoring",
]
