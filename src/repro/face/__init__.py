"""Face Detection: Viola-Jones Haar cascade."""

from .adaboost import BoostedStage, Cascade, Stump, best_stump, train_cascade, train_stage
from .benchmark import BENCHMARK, KERNELS, STAGE_SIZES, trained_cascade
from .evaluate import (
    EvaluationResult,
    evaluate_detector,
    match_detections,
    operating_curve,
    shift_thresholds,
)
from .detector import (
    Detection,
    detect_faces,
    detection_hit_rate,
    merge_detections,
)
from .haar import (
    WINDOW,
    HaarFeature,
    evaluate_features_on_patches,
    feature_pool,
    make_feature,
)

__all__ = [
    "BENCHMARK",
    "KERNELS",
    "STAGE_SIZES",
    "WINDOW",
    "BoostedStage",
    "Cascade",
    "Detection",
    "EvaluationResult",
    "HaarFeature",
    "Stump",
    "best_stump",
    "detect_faces",
    "evaluate_detector",
    "detection_hit_rate",
    "evaluate_features_on_patches",
    "feature_pool",
    "make_feature",
    "match_detections",
    "merge_detections",
    "operating_curve",
    "shift_thresholds",
    "train_cascade",
    "train_stage",
    "trained_cascade",
]
