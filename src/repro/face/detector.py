"""Multi-scale sliding-window face detection with a trained cascade.

Kernel attribution follows the paper's decomposition of the Viola-Jones
benchmark ("extract faces" doing preprocessing + features, then
feature-granularity work):

* ``IntegralImage`` — integral/squared-integral pyramids per scale.
* ``ExtractFaces`` — the cascaded sliding-window scan itself.
* ``Merge`` — grouping of overlapping raw detections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.integral import integral_image
from ..imgproc.interpolate import resize
from .adaboost import Cascade
from .haar import WINDOW


@dataclass(frozen=True)
class Detection:
    """A detected face box in input-image coordinates."""

    row: int
    col: int
    side: int
    score: float


def _rect_sums_grid(ii: np.ndarray, rr: np.ndarray, cc: np.ndarray,
                    r0: int, c0: int, r1: int, c1: int) -> np.ndarray:
    """Rectangle sums of one window-relative rect at every window origin.

    ``rr``/``cc`` are the window-origin grids; the rect spans
    ``[r0:r1, c0:c1]`` inside each window.
    """
    return (
        ii[rr + r1, cc + c1]
        - ii[rr + r0, cc + c1]
        - ii[rr + r1, cc + c0]
        + ii[rr + r0, cc + c0]
    )


def _scan_scale(
    cascade: Cascade,
    image: np.ndarray,
    stride: int,
) -> List[Tuple[int, int, float]]:
    """Scan one (already resized) image; returns (row, col, score) hits.

    Windows are variance-normalized through the integral images: for a
    window with mean m and std s, each rectangle sum of the normalized
    patch equals (raw_sum - area * m) / s, which the stump thresholds
    assume (they were trained on normalized patches).

    The scan is vectorized per stage over all still-alive windows — the
    attentional cascade's early exit shows up as the surviving-window set
    shrinking stage by stage.
    """
    rows, cols = image.shape
    if rows < WINDOW or cols < WINDOW:
        return []
    ii = integral_image(image)
    ii2 = integral_image(image * image)
    area = float(WINDOW * WINDOW)
    rr, cc = np.mgrid[
        0 : rows - WINDOW + 1 : stride, 0 : cols - WINDOW + 1 : stride
    ]
    rr = rr.ravel()
    cc = cc.ravel()
    total = _rect_sums_grid(ii, rr, cc, 0, 0, WINDOW, WINDOW)
    total2 = _rect_sums_grid(ii2, rr, cc, 0, 0, WINDOW, WINDOW)
    mean = total / area
    var = np.maximum(0.0, total2 / area - mean * mean)
    std = np.where(var > 1e-12, np.sqrt(var), 1.0)
    signed_areas = [
        sum(
            rect[4] * (rect[2] - rect[0]) * (rect[3] - rect[1])
            for rect in feature.rects
        )
        for feature in cascade.features
    ]
    alive = np.ones(rr.size, dtype=bool)
    scores = np.zeros(rr.size)
    # Cache raw feature responses per feature index for alive windows.
    for stage in cascade.stages:
        if not alive.any():
            break
        idx = np.nonzero(alive)[0]
        sub_rr, sub_cc = rr[idx], cc[idx]
        stage_scores = np.zeros(idx.size)
        for stump in stage.stumps:
            feature = cascade.features[stump.feature_index]
            raw = np.zeros(idx.size)
            for r0, c0, r1, c1, weight in feature.rects:
                raw += weight * _rect_sums_grid(ii, sub_rr, sub_cc,
                                                r0, c0, r1, c1)
            value = (
                raw - signed_areas[stump.feature_index] * mean[idx]
            ) / std[idx]
            if stump.polarity > 0:
                fired = value >= stump.threshold
            else:
                fired = value < stump.threshold
            stage_scores += stump.alpha * fired
        passed = stage_scores >= stage.stage_threshold
        scores[idx[passed]] += stage_scores[passed]
        alive[idx[~passed]] = False
    return [
        (int(rr[i]), int(cc[i]), float(scores[i]))
        for i in np.nonzero(alive)[0]
    ]


def merge_detections(
    raw: Sequence[Detection], overlap: float = 0.3
) -> List[Detection]:
    """Greedy non-maximum grouping of overlapping boxes (best score wins)."""
    ordered = sorted(raw, key=lambda d: d.score, reverse=True)
    kept: List[Detection] = []
    for det in ordered:
        absorbed = False
        for existing in kept:
            if _overlap_ratio(det, existing) > overlap:
                absorbed = True
                break
        if not absorbed:
            kept.append(det)
    return kept


def _overlap_ratio(a: Detection, b: Detection) -> float:
    r0 = max(a.row, b.row)
    c0 = max(a.col, b.col)
    r1 = min(a.row + a.side, b.row + b.side)
    c1 = min(a.col + a.side, b.col + b.side)
    if r1 <= r0 or c1 <= c0:
        return 0.0
    intersection = (r1 - r0) * (c1 - c0)
    union = a.side * a.side + b.side * b.side - intersection
    return intersection / union


def detect_faces(
    cascade: Cascade,
    image: np.ndarray,
    scales: Sequence[float] = (1.0, 1.25, 1.6, 2.0),
    stride: int = 2,
    profiler: Optional[KernelProfiler] = None,
) -> List[Detection]:
    """Run the cascade over ``image`` at multiple scales.

    ``scales`` multiply the nominal window size: scale ``s`` is realized
    by shrinking the image by ``1/s`` and scanning with the canonical
    window.  Returns merged detections in input coordinates.
    """
    profiler = ensure_profiler(profiler)
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    raw: List[Detection] = []
    for scale in scales:
        if scale < 1.0:
            raise ValueError("scales must be >= 1.0")
        with profiler.kernel("IntegralImage"):
            rows = int(round(image.shape[0] / scale))
            cols = int(round(image.shape[1] / scale))
            if rows < WINDOW or cols < WINDOW:
                continue
            scaled = resize(image, rows, cols) if scale != 1.0 else image
        with profiler.kernel("ExtractFaces"):
            hits = _scan_scale(cascade, scaled, stride)
        for r, c, score in hits:
            raw.append(
                Detection(
                    row=int(round(r * scale)),
                    col=int(round(c * scale)),
                    side=int(round(WINDOW * scale)),
                    score=score,
                )
            )
    with profiler.kernel("Merge"):
        merged = merge_detections(raw)
    return merged


def detection_hit_rate(
    detections: Sequence[Detection],
    true_boxes: Sequence[Tuple[int, int, int]],
    tolerance: float = 0.5,
) -> float:
    """Fraction of true boxes matched by some detection (IoU-style)."""
    if not true_boxes:
        return 1.0
    hits = 0
    for tr, tc, ts in true_boxes:
        truth = Detection(row=tr, col=tc, side=ts, score=0.0)
        if any(_overlap_ratio(d, truth) >= tolerance * 0.5 for d in detections):
            hits += 1
    return hits / len(true_boxes)
