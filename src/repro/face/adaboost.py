"""AdaBoost over Haar-feature decision stumps, plus the attentional cascade.

Discrete AdaBoost exactly as Viola-Jones uses it: each round picks the
(feature, threshold, polarity) stump with the lowest weighted error,
reweights the examples, and the stage's decision is a weighted stump vote
against a stage threshold tuned for a target detection rate.  A cascade
chains stages so easy negatives exit early.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .haar import HaarFeature


@dataclass(frozen=True)
class Stump:
    """A one-feature threshold classifier with vote weight ``alpha``."""

    feature_index: int
    threshold: float
    polarity: int  # +1: predict face when value >= threshold
    alpha: float

    def predict(self, values: np.ndarray) -> np.ndarray:
        """0/1 predictions from this stump's feature column."""
        if self.polarity > 0:
            return (values >= self.threshold).astype(np.float64)
        return (values < self.threshold).astype(np.float64)


def best_stump(values: np.ndarray, labels: np.ndarray,
               weights: np.ndarray) -> Tuple[int, float, int, float]:
    """Exhaustive best stump over all feature columns.

    Uses the sorted-prefix trick: for each feature, scanning examples in
    value order yields every distinct threshold's weighted error in O(n)
    after the sort.  Returns ``(feature, threshold, polarity, error)``.
    """
    n, m = values.shape
    total_pos = float(weights[labels == 1].sum())
    total_neg = float(weights[labels == 0].sum())
    best = (0, 0.0, 1, float("inf"))
    for j in range(m):
        order = np.argsort(values[:, j], kind="stable")
        v = values[order, j]
        w = weights[order]
        lab = labels[order]
        pos_below = np.cumsum(w * (lab == 1))
        neg_below = np.cumsum(w * (lab == 0))
        # Threshold between v[i] and v[i+1]: predict >= thr as positive.
        # error(+1) = pos_below + (total_neg - neg_below)
        # error(-1) = neg_below + (total_pos - pos_below)
        err_pos = pos_below + (total_neg - neg_below)
        err_neg = neg_below + (total_pos - pos_below)
        i_pos = int(np.argmin(err_pos))
        i_neg = int(np.argmin(err_neg))
        for i, polarity, err in (
            (i_pos, 1, float(err_pos[i_pos])),
            (i_neg, -1, float(err_neg[i_neg])),
        ):
            if err < best[3]:
                threshold = (
                    (v[i] + v[i + 1]) / 2.0 if i + 1 < n else v[i] + 1e-9
                )
                best = (j, float(threshold), polarity, err)
    return best


@dataclass
class BoostedStage:
    """One cascade stage: weighted stump vote against a stage threshold."""

    stumps: List[Stump]
    stage_threshold: float

    def scores(self, values: np.ndarray) -> np.ndarray:
        """Weighted vote totals for rows of a feature matrix."""
        total = np.zeros(values.shape[0])
        for stump in self.stumps:
            total += stump.alpha * stump.predict(values[:, stump.feature_index])
        return total

    def predict(self, values: np.ndarray) -> np.ndarray:
        return (self.scores(values) >= self.stage_threshold).astype(bool)


def train_stage(
    values: np.ndarray,
    labels: np.ndarray,
    n_stumps: int,
    detection_rate: float = 0.995,
) -> BoostedStage:
    """Train one AdaBoost stage of ``n_stumps`` weak classifiers.

    After boosting, the stage threshold is lowered from the canonical
    ``sum(alpha)/2`` until at least ``detection_rate`` of the positive
    examples pass (the cascade must almost never lose a face).
    """
    n = labels.size
    if values.shape[0] != n:
        raise ValueError("values/labels mismatch")
    n_pos = int((labels == 1).sum())
    n_neg = n - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("need both positive and negative examples")
    weights = np.where(labels == 1, 0.5 / n_pos, 0.5 / n_neg)
    stumps: List[Stump] = []
    for _ in range(n_stumps):
        weights = weights / weights.sum()
        j, threshold, polarity, error = best_stump(values, labels, weights)
        error = min(max(error, 1e-10), 1.0 - 1e-10)
        beta = error / (1.0 - error)
        alpha = math.log(1.0 / beta)
        stump = Stump(feature_index=j, threshold=threshold,
                      polarity=polarity, alpha=alpha)
        predictions = stump.predict(values[:, j])
        correct = predictions == labels
        weights = weights * np.where(correct, beta, 1.0)
        stumps.append(stump)
    stage = BoostedStage(stumps=stumps, stage_threshold=0.0)
    scores = stage.scores(values)
    pos_scores = np.sort(scores[labels == 1])
    # Threshold letting `detection_rate` of positives through.
    index = int((1.0 - detection_rate) * pos_scores.size)
    stage.stage_threshold = float(pos_scores[min(index, pos_scores.size - 1)]) - 1e-9
    return stage


@dataclass
class Cascade:
    """An attentional cascade over a shared feature pool."""

    features: List[HaarFeature]
    stages: List[BoostedStage]

    def used_feature_indices(self) -> List[int]:
        seen: List[int] = []
        for stage in self.stages:
            for stump in stage.stumps:
                if stump.feature_index not in seen:
                    seen.append(stump.feature_index)
        return seen

    def classify_values(self, values: np.ndarray) -> np.ndarray:
        """Boolean face decision per row of a full feature matrix."""
        alive = np.ones(values.shape[0], dtype=bool)
        for stage in self.stages:
            if not alive.any():
                break
            passed = stage.predict(values[alive])
            alive_idx = np.nonzero(alive)[0]
            alive[alive_idx[~passed]] = False
        return alive


def train_cascade(
    values: np.ndarray,
    labels: np.ndarray,
    features: Sequence[HaarFeature],
    stage_sizes: Sequence[int] = (3, 6, 12),
    detection_rate: float = 0.995,
) -> Cascade:
    """Train a cascade, bootstrapping each stage on surviving negatives.

    Stage ``k`` trains on all positives plus the negatives that passed
    stages ``0..k-1`` — the standard hard-negative focusing that gives
    cascades their early-exit efficiency.
    """
    values = np.asarray(values, dtype=np.float64)
    labels = np.asarray(labels).astype(np.int64)
    stages: List[BoostedStage] = []
    active = np.ones(labels.size, dtype=bool)
    for n_stumps in stage_sizes:
        if not (active & (labels == 0)).any():
            # All negatives rejected: later stages still sharpen the
            # decision boundary for unseen negatives, so train them on the
            # full negative set instead of stopping early.
            active = np.ones(labels.size, dtype=bool)
        subset = np.nonzero(active | (labels == 1))[0]
        stage = train_stage(
            values[subset], labels[subset], n_stumps, detection_rate
        )
        stages.append(stage)
        passed = stage.predict(values)
        active &= passed
    return Cascade(features=list(features), stages=stages)
