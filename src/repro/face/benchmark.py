"""Benchmark wiring for the Face Detection (Viola-Jones) application.

The cascade is trained once per input variant on the synthetic face/
non-face patch set and cached — matching the original benchmark, which
ships a pre-trained detector and measures detection, not training.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Mapping

from ..core.dataflow import Chain, Op, ParMap, Seq
from ..core.inputs import face_scene, face_training_set
from ..core.profiler import KernelProfiler
from ..core.registry import Benchmark
from ..core.types import (
    Characteristic,
    ConcentrationArea,
    InputSize,
    KernelInfo,
    ParallelismClass,
    ParallelismEstimate,
)
from .adaboost import Cascade, train_cascade
from .detector import detect_faces, detection_hit_rate
from .haar import WINDOW, evaluate_features_on_patches, feature_pool

STAGE_SIZES = (4, 8, 16, 24)

KERNELS = (
    KernelInfo("IntegralImage", "integral pyramids per scan scale",
               ParallelismClass.TLP),
    KernelInfo("ExtractFaces", "cascaded sliding-window classification",
               ParallelismClass.TLP),
    KernelInfo("Merge", "grouping of overlapping detections",
               ParallelismClass.ILP),
)


@lru_cache(maxsize=8)
def trained_cascade(variant: int = 0) -> Cascade:
    """Train (and cache) the cascade for one training-set variant."""
    patches, labels = face_training_set(variant, n_pos=150, n_neg=500)
    features = feature_pool(stride=3, min_cell=2, max_cell=6)
    values = evaluate_features_on_patches(features, patches)
    return train_cascade(values, labels, features, stage_sizes=STAGE_SIZES)


def setup(size: InputSize, variant: int):
    """Train/fetch the cascade and build the scene (both untimed).

    The original benchmark ships a pre-trained detector; only detection
    is measured.
    """
    return (trained_cascade(variant), face_scene(size, variant))


def run(workload, profiler: KernelProfiler) -> Mapping[str, object]:
    """Detect the synthetic faces planted in a prepared scene."""
    cascade, scene = workload
    detections = detect_faces(cascade, scene.image, profiler=profiler)
    return {
        "detections": len(detections),
        "true_faces": len(scene.true_boxes),
        "hit_rate": detection_hit_rate(detections, scene.true_boxes),
    }


def parallelism_models(size: InputSize) -> List[ParallelismEstimate]:
    """Work/span models for the face-detection kernels.

    Face detection is absent from Table IV; section III classifies it as
    compute-intensive with feature-granularity irregularity.  Windows are
    independent (wide TLP) but each window's cascade walk is a serial
    stump chain; merging is a mostly serial greedy pass.
    """
    rows, cols = size.shape
    windows = max(1, ((rows - WINDOW) // 2) * ((cols - WINDOW) // 2)) * 4
    integral = Seq(
        ParMap(rows, Chain(cols, Op(1))), ParMap(cols, Chain(rows, Op(1)))
    )
    scan = ParMap(windows, Chain(sum(STAGE_SIZES) // 2, Op(10)))
    merge = Chain(40, Op(6))
    estimates = []
    for name, model in (
        ("IntegralImage", integral),
        ("ExtractFaces", scan),
        ("Merge", merge),
    ):
        info = next(k for k in KERNELS if k.name == name)
        estimates.append(
            ParallelismEstimate(
                benchmark="face",
                kernel=name,
                parallelism=model.parallelism,
                parallelism_class=info.parallelism_class,
                work=model.work,
                span=model.span,
            )
        )
    return estimates


BENCHMARK = Benchmark(
    name="Face Detection",
    slug="face",
    area=ConcentrationArea.IMAGE_UNDERSTANDING,
    description="Identify Faces in an Image",
    characteristic=Characteristic.COMPUTE_INTENSIVE,
    application_domain="Video Surveillance, Image Database Management",
    kernels=KERNELS,
    setup=setup,
    run=run,
    parallelism=parallelism_models,
)
