"""Haar-like rectangle features evaluated on integral images.

Viola-Jones features are signed sums of axis-aligned rectangles inside a
fixed detection window (here 16x16, matching the synthetic training
patches).  Each feature evaluates in a handful of integral-image lookups
regardless of its area — the property that makes cascaded scanning cheap.

Feature types (as in the original paper):

* ``edge_h`` / ``edge_v`` — two adjacent rectangles, dark/light edge.
* ``line_h`` / ``line_v`` — three rectangles, line against background.
* ``quad`` — four rectangles in a checkerboard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..imgproc.integral import integral_image, rect_sum

WINDOW = 16

#: (row0, col0, row1, col1, weight) rectangles, window-relative.
Rect = Tuple[int, int, int, int, float]

FEATURE_TYPES = ("edge_h", "edge_v", "line_h", "line_v", "quad")


@dataclass(frozen=True)
class HaarFeature:
    """One rectangle feature: a weighted set of window-relative rects."""

    kind: str
    rects: Tuple[Rect, ...]

    def evaluate(self, ii: np.ndarray, row: int = 0, col: int = 0,
                 scale: float = 1.0) -> float:
        """Weighted rectangle sum at window origin ``(row, col)``.

        ``ii`` is an integral image (with its leading zero row/column);
        ``scale`` stretches the window for multi-scale scanning.
        """
        total = 0.0
        for r0, c0, r1, c1, weight in self.rects:
            total += weight * rect_sum(
                ii,
                row + int(round(r0 * scale)),
                col + int(round(c0 * scale)),
                row + int(round(r1 * scale)),
                col + int(round(c1 * scale)),
            )
        return total


def make_feature(kind: str, r: int, c: int, h: int, w: int) -> HaarFeature:
    """Build a feature of ``kind`` with top-left (r, c) and unit size (h, w).

    ``h``/``w`` are the per-cell extents; the full feature spans 2 or 3
    cells depending on the kind.  All coordinates must keep the feature
    inside the canonical window.
    """
    if kind == "edge_h":  # light left, dark right
        rects: Tuple[Rect, ...] = (
            (r, c, r + h, c + w, +1.0),
            (r, c + w, r + h, c + 2 * w, -1.0),
        )
        extent = (r + h, c + 2 * w)
    elif kind == "edge_v":
        rects = (
            (r, c, r + h, c + w, +1.0),
            (r + h, c, r + 2 * h, c + w, -1.0),
        )
        extent = (r + 2 * h, c + w)
    elif kind == "line_h":
        rects = (
            (r, c, r + h, c + w, +1.0),
            (r, c + w, r + h, c + 2 * w, -2.0),
            (r, c + 2 * w, r + h, c + 3 * w, +1.0),
        )
        extent = (r + h, c + 3 * w)
    elif kind == "line_v":
        rects = (
            (r, c, r + h, c + w, +1.0),
            (r + h, c, r + 2 * h, c + w, -2.0),
            (r + 2 * h, c, r + 3 * h, c + w, +1.0),
        )
        extent = (r + 3 * h, c + w)
    elif kind == "quad":
        rects = (
            (r, c, r + h, c + w, +1.0),
            (r, c + w, r + h, c + 2 * w, -1.0),
            (r + h, c, r + 2 * h, c + w, -1.0),
            (r + h, c + w, r + 2 * h, c + 2 * w, +1.0),
        )
        extent = (r + 2 * h, c + 2 * w)
    else:
        raise ValueError(f"unknown feature kind {kind!r}")
    if extent[0] > WINDOW or extent[1] > WINDOW or r < 0 or c < 0:
        raise ValueError(f"feature {kind} at ({r},{c}) size ({h},{w}) "
                         f"exceeds the {WINDOW}x{WINDOW} window")
    return HaarFeature(kind=kind, rects=rects)


def feature_pool(stride: int = 2, min_cell: int = 2,
                 max_cell: int = 8) -> List[HaarFeature]:
    """Enumerate a dense pool of in-window features.

    A stride/size grid keeps the pool in the low thousands (the full
    exhaustive set for 16x16 is ~50k; AdaBoost only needs a rich sample).
    """
    pool: List[HaarFeature] = []
    for kind in FEATURE_TYPES:
        for h in range(min_cell, max_cell + 1, 2):
            for w in range(min_cell, max_cell + 1, 2):
                for r in range(0, WINDOW, stride):
                    for c in range(0, WINDOW, stride):
                        try:
                            pool.append(make_feature(kind, r, c, h, w))
                        except ValueError:
                            continue
    return pool


def evaluate_features_on_patches(
    features: Sequence[HaarFeature], patches: np.ndarray
) -> np.ndarray:
    """Feature matrix ``(n_patches, n_features)`` with variance-normalized
    patch responses.

    Each patch is normalized by its standard deviation (Viola-Jones
    lighting correction) before feature evaluation.
    """
    patches = np.asarray(patches, dtype=np.float64)
    if patches.ndim != 3 or patches.shape[1:] != (WINDOW, WINDOW):
        raise ValueError(
            f"expected (n, {WINDOW}, {WINDOW}) patches, got {patches.shape}"
        )
    n = patches.shape[0]
    out = np.empty((n, len(features)))
    for i in range(n):
        patch = patches[i]
        std = patch.std()
        normalized = (patch - patch.mean()) / (std if std > 1e-9 else 1.0)
        ii = integral_image(normalized)
        for j, feature in enumerate(features):
            out[i, j] = feature.evaluate(ii)
    return out
