"""Detector evaluation: precision/recall over scenes and thresholds.

The benchmark reports detections; this module adds the measurement layer
a detector release needs: matching detections to ground-truth boxes,
precision/recall/F1 over a scene set, and an operating curve produced by
sweeping a global offset on the cascade's stage thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

import numpy as np

from .adaboost import BoostedStage, Cascade
from .detector import Detection, _overlap_ratio, detect_faces


@dataclass(frozen=True)
class EvaluationResult:
    """Aggregate detection quality over a set of scenes."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) else 0.0


def match_detections(
    detections: Sequence[Detection],
    true_boxes: Sequence[Tuple[int, int, int]],
    min_overlap: float = 0.25,
) -> Tuple[int, int, int]:
    """Greedy one-to-one matching; returns (tp, fp, fn)."""
    unmatched = list(range(len(true_boxes)))
    tp = 0
    fp = 0
    for det in sorted(detections, key=lambda d: d.score, reverse=True):
        best_index = -1
        best_overlap = min_overlap
        for position, truth_index in enumerate(unmatched):
            tr, tc, ts = true_boxes[truth_index]
            overlap = _overlap_ratio(
                det, Detection(row=tr, col=tc, side=ts, score=0.0)
            )
            if overlap >= best_overlap:
                best_overlap = overlap
                best_index = position
        if best_index >= 0:
            unmatched.pop(best_index)
            tp += 1
        else:
            fp += 1
    return tp, fp, len(unmatched)


def evaluate_detector(
    cascade: Cascade,
    scenes: Sequence[Tuple[np.ndarray, Sequence[Tuple[int, int, int]]]],
    min_overlap: float = 0.25,
) -> EvaluationResult:
    """Precision/recall of ``cascade`` over ``(image, true_boxes)`` scenes."""
    tp = fp = fn = 0
    for image, true_boxes in scenes:
        detections = detect_faces(cascade, image)
        scene_tp, scene_fp, scene_fn = match_detections(
            detections, true_boxes, min_overlap
        )
        tp += scene_tp
        fp += scene_fp
        fn += scene_fn
    return EvaluationResult(true_positives=tp, false_positives=fp,
                            false_negatives=fn)


def shift_thresholds(cascade: Cascade, offset: float) -> Cascade:
    """A copy of ``cascade`` with every stage threshold shifted by
    ``offset`` (positive = stricter, fewer detections)."""
    stages = [
        BoostedStage(
            stumps=list(stage.stumps),
            stage_threshold=stage.stage_threshold + offset,
        )
        for stage in cascade.stages
    ]
    return Cascade(features=cascade.features, stages=stages)


def operating_curve(
    cascade: Cascade,
    scenes: Sequence[Tuple[np.ndarray, Sequence[Tuple[int, int, int]]]],
    offsets: Sequence[float] = (-0.5, -0.25, 0.0, 0.25, 0.5, 1.0),
) -> List[Tuple[float, EvaluationResult]]:
    """Sweep stage-threshold offsets; returns (offset, evaluation) pairs.

    Stricter thresholds trade recall for precision — the detector's
    ROC-style operating curve.
    """
    curve = []
    for offset in offsets:
        shifted = shift_thresholds(cascade, offset)
        curve.append((offset, evaluate_detector(shifted, scenes)))
    return curve
