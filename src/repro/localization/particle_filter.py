"""Monte Carlo localization: particle filter over an occupancy grid.

The SD-VBS benchmark implements MCL: particles carry pose hypotheses
``(x, y, theta)``; each control step applies a noisy motion model, each
measurement step weights particles by a Gaussian range-sensor likelihood
computed by ray casting, and the particle set is renewed by weighted
resampling.

Kernel attribution (paper Figure 3): the motion update and measurement
weighting are the ``ParticleFilter`` kernel; the weighted-sample draw
(which the paper measures at ~50% of runtime) is the ``Sampling`` kernel.
Both lean on trigonometric math, matching the paper's note about heavy
floating-point use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.inputs import RobotWorld
from ..core.profiler import KernelProfiler, ensure_profiler


@dataclass
class ParticleSet:
    """Particle states (flat arrays) plus normalized weights."""

    x: np.ndarray
    y: np.ndarray
    theta: np.ndarray
    weights: np.ndarray

    @property
    def size(self) -> int:
        return self.x.size

    def mean_pose(self) -> Tuple[float, float, float]:
        """Weighted mean position and circular-mean heading."""
        w = self.weights
        mx = float(np.sum(w * self.x))
        my = float(np.sum(w * self.y))
        mt = math.atan2(
            float(np.sum(w * np.sin(self.theta))),
            float(np.sum(w * np.cos(self.theta))),
        )
        return mx, my, mt

    def effective_sample_size(self) -> float:
        """1 / sum(w^2): collapses toward 1 as weights degenerate."""
        return float(1.0 / np.sum(self.weights**2))


def raycast_batch(
    grid: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    angles: np.ndarray,
    max_range: float,
    step: float = 0.25,
) -> np.ndarray:
    """Vectorized ray casting: distance to the first occupied cell.

    All inputs are flat arrays of equal length; rays advance in ``step``
    increments until they hit an occupied cell or leave the map.
    """
    rows, cols = grid.shape
    n = x.size
    dist = np.zeros(n)
    alive = np.ones(n, dtype=bool)
    cos_t = np.cos(angles)
    sin_t = np.sin(angles)
    n_steps = int(max_range / step) + 1
    for _ in range(n_steps):
        if not alive.any():
            break
        px = x[alive] + dist[alive] * cos_t[alive]
        py = y[alive] + dist[alive] * sin_t[alive]
        inside = (px >= 0) & (px < cols) & (py >= 0) & (py < rows)
        hit = np.zeros(inside.shape, dtype=bool)
        if inside.any():
            gx = px[inside].astype(np.int64)
            gy = py[inside].astype(np.int64)
            occupied = grid[gy, gx] != 0
            hit_inside = np.zeros(inside.shape, dtype=bool)
            hit_inside[np.nonzero(inside)[0][occupied]] = True
            hit = hit_inside
        done = hit | ~inside
        alive_idx = np.nonzero(alive)[0]
        alive[alive_idx[done]] = False
        still = alive_idx[~done]
        dist[still] += step
    return np.minimum(dist, max_range)


@dataclass
class MonteCarloLocalizer:
    """MCL state machine bound to one occupancy-grid world."""

    world: RobotWorld
    n_particles: int = 200
    motion_noise_turn: float = 0.08
    motion_noise_dist: float = 0.15
    sensor_sigma: float = 3.5
    recovery_fraction: float = 0.15
    seed: int = 0
    particles: ParticleSet = field(init=False)
    _rng: np.random.Generator = field(init=False)

    def __post_init__(self) -> None:
        if self.n_particles < 2:
            raise ValueError("need at least two particles")
        self._rng = np.random.default_rng(self.seed)
        self.particles = self._initial_particles()
        # Augmented-MCL likelihood averages (Thrun et al.): recovery
        # particles are injected in proportion to how much the short-term
        # average measurement likelihood falls below the long-term one.
        self._w_slow = 0.0
        self._w_fast = 0.0

    def _initial_particles(self) -> ParticleSet:
        """Uniform particles over free space (global localization)."""
        grid = self.world.grid
        free_r, free_c = np.nonzero(grid == 0)
        picks = self._rng.integers(0, free_r.size, self.n_particles)
        x = free_c[picks] + self._rng.random(self.n_particles)
        y = free_r[picks] + self._rng.random(self.n_particles)
        theta = self._rng.uniform(-math.pi, math.pi, self.n_particles)
        weights = np.full(self.n_particles, 1.0 / self.n_particles)
        return ParticleSet(x=x, y=y, theta=theta, weights=weights)

    # ------------------------------------------------------------------

    def motion_update(self, turn: float, dist: float,
                      profiler: Optional[KernelProfiler] = None) -> None:
        """Propagate particles through the noisy odometry model."""
        profiler = ensure_profiler(profiler)
        p = self.particles
        with profiler.kernel("ParticleFilter"):
            noisy_turn = turn + self._rng.normal(
                0.0, self.motion_noise_turn, p.size
            )
            noisy_dist = dist + self._rng.normal(
                0.0, self.motion_noise_dist, p.size
            )
            p.theta = np.mod(
                p.theta + noisy_turn + math.pi, 2.0 * math.pi
            ) - math.pi
            p.x = p.x + noisy_dist * np.cos(p.theta)
            p.y = p.y + noisy_dist * np.sin(p.theta)
            rows, cols = self.world.grid.shape
            p.x = np.clip(p.x, 0.0, cols - 1e-6)
            p.y = np.clip(p.y, 0.0, rows - 1e-6)

    def measurement_update(self, ranges: np.ndarray,
                           profiler: Optional[KernelProfiler] = None) -> None:
        """Reweight particles by the range-scan likelihood."""
        profiler = ensure_profiler(profiler)
        p = self.particles
        world = self.world
        n_beams = world.n_beams
        with profiler.kernel("ParticleFilter"):
            bearings = np.linspace(-math.pi, math.pi, n_beams, endpoint=False)
            all_x = np.repeat(p.x, n_beams)
            all_y = np.repeat(p.y, n_beams)
            all_angles = (
                np.repeat(p.theta, n_beams) + np.tile(bearings, p.size)
            )
            expected = raycast_batch(
                world.grid, all_x, all_y, all_angles, world.max_range
            ).reshape(p.size, n_beams)
            diff = expected - np.asarray(ranges)[None, :]
            log_like = -0.5 * np.sum(
                (diff / self.sensor_sigma) ** 2, axis=1
            )
            # Track the average absolute likelihood for adaptive recovery.
            w_avg = float(np.exp(np.clip(log_like, -500, 0)).mean())
            self._w_slow += 0.05 * (w_avg - self._w_slow)
            self._w_fast += 0.5 * (w_avg - self._w_fast)
            log_like -= log_like.max()
            weights = p.weights * np.exp(log_like)
            total = weights.sum()
            if total <= 0.0 or not np.isfinite(total):
                weights = np.full(p.size, 1.0 / p.size)
            else:
                weights = weights / total
            # Kidnapped-robot hedge: occupied-cell particles get killed.
            occ = world.grid[
                p.y.astype(np.int64), p.x.astype(np.int64)
            ] != 0
            weights[occ] = 0.0
            total = weights.sum()
            p.weights = (
                weights / total if total > 0 else np.full(p.size, 1.0 / p.size)
            )

    def resample(self, profiler: Optional[KernelProfiler] = None) -> None:
        """Systematic weighted resampling — the paper's Sampling kernel.

        A small ``recovery_fraction`` of particles is re-drawn uniformly
        over free space (augmented MCL), so global localization can
        recover when the true mode was starved of particles early on.
        """
        profiler = ensure_profiler(profiler)
        p = self.particles
        with profiler.kernel("Sampling"):
            positions = (
                self._rng.random() + np.arange(p.size)
            ) / p.size
            cumulative = np.cumsum(p.weights)
            cumulative[-1] = 1.0  # guard against round-off
            picks = np.searchsorted(cumulative, positions)
            jitter_xy = self._rng.normal(0.0, 0.08, (2, p.size))
            jitter_t = self._rng.normal(0.0, 0.02, p.size)
            new = ParticleSet(
                x=p.x[picks] + jitter_xy[0],
                y=p.y[picks] + jitter_xy[1],
                theta=p.theta[picks] + jitter_t,
                weights=np.full(p.size, 1.0 / p.size),
            )
            if self._w_slow > 0.0:
                deficit = max(0.0, 1.0 - self._w_fast / self._w_slow)
            else:
                deficit = 1.0
            n_recover = int(self.recovery_fraction * deficit * p.size)
            if n_recover > 0:
                fresh = self._initial_particles()
                slots = self._rng.choice(p.size, n_recover, replace=False)
                new.x[slots] = fresh.x[:n_recover]
                new.y[slots] = fresh.y[:n_recover]
                new.theta[slots] = fresh.theta[:n_recover]
            self.particles = new

    def step(self, control: Tuple[float, float], ranges: np.ndarray,
             profiler: Optional[KernelProfiler] = None,
             resample_threshold: float = 0.3) -> Tuple[float, float, float]:
        """One full MCL iteration; returns the posterior mean pose.

        The pose estimate is taken from the *weighted* posterior, before
        resampling injects its recovery particles.
        """
        self.motion_update(*control, profiler=profiler)
        self.measurement_update(ranges, profiler=profiler)
        pose = self.particles.mean_pose()
        if (
            self.particles.effective_sample_size()
            < resample_threshold * self.particles.size
        ):
            self.resample(profiler=profiler)
        return pose


def default_particle_count(world: RobotWorld, base: int = 800) -> int:
    """Particle budget scaled with map area (global localization needs
    coverage of the pose space, which grows with the map)."""
    side = world.grid.shape[0]
    return int(base * (side / 24.0) ** 2)


def localize(
    world: RobotWorld,
    n_particles: int = 0,
    seed: int = 0,
    mode: str = "global",
    profiler: Optional[KernelProfiler] = None,
) -> List[Tuple[float, float, float]]:
    """Run MCL over a world's full control/measurement trace.

    ``mode="global"`` starts from a uniform prior over free space (the
    paper's global position estimation subtask); ``mode="tracking"``
    initializes particles around the known start pose (the local tracking
    subtask).  Returns the posterior mean pose after every step.
    """
    if mode not in ("global", "tracking"):
        raise ValueError(f"unknown mode {mode!r}")
    if n_particles <= 0:
        n_particles = default_particle_count(world)
    localizer = MonteCarloLocalizer(
        world=world, n_particles=n_particles, seed=seed
    )
    if mode == "tracking":
        x0, y0, t0 = world.start_pose
        rng = np.random.default_rng(seed + 1)
        n = localizer.particles.size
        localizer.particles = ParticleSet(
            x=x0 + rng.normal(0.0, 0.3, n),
            y=y0 + rng.normal(0.0, 0.3, n),
            theta=t0 + rng.normal(0.0, 0.05, n),
            weights=np.full(n, 1.0 / n),
        )
    estimates = []
    for control, ranges in zip(world.controls, world.measurements):
        estimates.append(localizer.step(control, ranges, profiler=profiler))
    return estimates


def position_error(
    estimates: List[Tuple[float, float, float]],
    truth: List[Tuple[float, float, float]],
    tail: int = 5,
) -> float:
    """Mean Euclidean position error over the final ``tail`` steps."""
    if len(estimates) != len(truth):
        raise ValueError("trace length mismatch")
    pairs = list(zip(estimates, truth))[-tail:]
    errors = [
        math.hypot(est[0] - true[0], est[1] - true[1])
        for est, true in pairs
    ]
    return sum(errors) / len(errors)
