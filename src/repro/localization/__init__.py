"""Robot Localization: Monte Carlo localization with a particle filter."""

from .benchmark import BENCHMARK, KERNELS, N_STEPS
from .mapping import OccupancyGridMapper, map_from_trace, map_quality
from .particle_filter import (
    MonteCarloLocalizer,
    default_particle_count,
    ParticleSet,
    localize,
    position_error,
    raycast_batch,
)

__all__ = [
    "BENCHMARK",
    "KERNELS",
    "N_STEPS",
    "MonteCarloLocalizer",
    "OccupancyGridMapper",
    "default_particle_count",
    "ParticleSet",
    "localize",
    "map_from_trace",
    "map_quality",
    "position_error",
    "raycast_batch",
]
