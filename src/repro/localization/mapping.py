"""Occupancy-grid mapping with a log-odds inverse sensor model.

Localization's dual: given *known* poses and range scans, reconstruct the
map.  Each beam updates the grid in log-odds form — cells along the ray
get evidence of freeness, the cell at the measured range gets evidence of
occupancy (unless the beam maxed out).  Together with
:mod:`repro.localization.particle_filter` this covers both halves of the
SLAM decomposition the robotics literature builds on MCL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.inputs import RobotWorld
from ..core.profiler import KernelProfiler, ensure_profiler


@dataclass
class OccupancyGridMapper:
    """Incremental log-odds occupancy mapping on a fixed grid."""

    shape: Tuple[int, int]
    max_range: float
    n_beams: int = 8
    log_odds_hit: float = 1.2
    log_odds_miss: float = -0.4
    clamp: float = 8.0
    step: float = 0.25
    log_odds: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if min(self.shape) < 2:
            raise ValueError("grid too small")
        self.log_odds = np.zeros(self.shape)

    def integrate_scan(
        self,
        pose: Tuple[float, float, float],
        ranges: np.ndarray,
        profiler: Optional[KernelProfiler] = None,
    ) -> None:
        """Fuse one range scan taken from ``pose`` (x, y, theta)."""
        profiler = ensure_profiler(profiler)
        x, y, theta = pose
        ranges = np.asarray(ranges, dtype=np.float64)
        if ranges.shape != (self.n_beams,):
            raise ValueError(
                f"expected {self.n_beams} ranges, got {ranges.shape}"
            )
        rows, cols = self.shape
        with profiler.kernel("ParticleFilter"):
            bearings = np.linspace(-math.pi, math.pi, self.n_beams,
                                   endpoint=False)
            for bearing, measured in zip(bearings, ranges):
                angle = theta + bearing
                cos_a, sin_a = math.cos(angle), math.sin(angle)
                distance = 0.0
                end = min(float(measured), self.max_range)
                while distance < end - self.step:
                    px = x + distance * cos_a
                    py = y + distance * sin_a
                    if not (0 <= px < cols and 0 <= py < rows):
                        break
                    self.log_odds[int(py), int(px)] += self.log_odds_miss
                    distance += self.step
                # Occupied endpoint (only for non-maxed beams).
                if measured < self.max_range - self.step:
                    px = x + end * cos_a
                    py = y + end * sin_a
                    if 0 <= px < cols and 0 <= py < rows:
                        self.log_odds[int(py), int(px)] += self.log_odds_hit
            np.clip(self.log_odds, -self.clamp, self.clamp,
                    out=self.log_odds)

    def occupancy_probability(self) -> np.ndarray:
        """Per-cell occupancy probability, sigmoid of the log-odds."""
        return 1.0 / (1.0 + np.exp(-self.log_odds))

    def binary_map(self, threshold: float = 0.5) -> np.ndarray:
        """Thresholded occupancy estimate (1 = occupied)."""
        return (self.occupancy_probability() > threshold).astype(np.int8)

    def known_fraction(self) -> float:
        """Fraction of cells touched by any evidence."""
        return float((self.log_odds != 0.0).mean())


def map_from_trace(
    world: RobotWorld,
    profiler: Optional[KernelProfiler] = None,
) -> OccupancyGridMapper:
    """Map a world from its (true) poses and recorded scans."""
    mapper = OccupancyGridMapper(
        shape=world.grid.shape,
        max_range=world.max_range,
        n_beams=world.n_beams,
    )
    for pose, ranges in zip(world.true_poses, world.measurements):
        mapper.integrate_scan(pose, ranges, profiler=profiler)
    return mapper


def map_quality(
    mapper: OccupancyGridMapper,
    truth: np.ndarray,
) -> Tuple[float, float]:
    """(occupied recall, free precision) over cells with evidence.

    Occupied recall: of the true walls the mapper has observed, how many
    it marks occupied.  Free precision: of the cells it marks free, how
    many are truly free.
    """
    truth = np.asarray(truth)
    observed = mapper.log_odds != 0.0
    estimate = mapper.binary_map()
    occ_mask = observed & (truth != 0)
    free_est = observed & (estimate == 0)
    recall = float((estimate[occ_mask] == 1).mean()) if occ_mask.any() \
        else 1.0
    precision = float((truth[free_est] == 0).mean()) if free_est.any() \
        else 1.0
    return recall, precision
