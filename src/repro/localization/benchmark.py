"""Benchmark wiring for the Robot Localization (MCL) application."""

from __future__ import annotations

from typing import List, Mapping

from ..core.dataflow import Chain, Op, ParMap, Reduce, Scan, Seq
from ..core.inputs import robot_world
from ..core.profiler import KernelProfiler
from ..core.registry import Benchmark
from ..core.types import (
    Characteristic,
    ConcentrationArea,
    InputSize,
    KernelInfo,
    ParallelismClass,
    ParallelismEstimate,
)
from .particle_filter import localize, position_error

N_STEPS = 48

KERNELS = (
    KernelInfo("ParticleFilter", "motion model and sensor weighting",
               ParallelismClass.TLP),
    KernelInfo("Sampling", "weighted particle resampling",
               ParallelismClass.TLP),
)


def setup(size: InputSize, variant: int):
    """Build the synthetic grid world and trace (untimed)."""
    return (robot_world(size, variant, n_steps=N_STEPS), variant)


def run(workload, profiler: KernelProfiler) -> Mapping[str, object]:
    """Localize the robot through a prepared trace.

    Matching the paper's observation, the cost is governed by the trace
    and particle count, not the nominal input size (the map merely grows
    with ``size``).
    """
    world, variant = workload
    global_est = localize(world, seed=variant, mode="global",
                          profiler=profiler)
    tracking_est = localize(world, seed=variant, mode="tracking",
                            profiler=profiler)
    return {
        "global_error": position_error(global_est, world.true_poses),
        "tracking_error": position_error(tracking_est, world.true_poses),
        "steps": len(global_est),
    }


def parallelism_models(size: InputSize) -> List[ParallelismEstimate]:
    """Work/span models for the localization kernels.

    Localization is not in the paper's Table IV; section III describes
    both kernels as compute-heavy with irregular access.  Particles are
    independent (TLP across particles) but each particle's ray march is a
    serial chain, and the resampling prefix sum is the Sampling kernel's
    dependence bottleneck.
    """
    side = max(24, size.height // 8)  # must match inputs.robot_world
    ray_steps = 4 * side  # steps of 0.25 cells across the map
    beams = 8
    particle = Seq(
        Op(12),  # trig-heavy pose update
        ParMap(beams, Chain(ray_steps, Op(2))),
        Reduce(beams),
    )
    n_particles = int(800 * (side / 24.0) ** 2)
    particle_filter = Chain(N_STEPS, ParMap(n_particles, particle))
    sampling = Chain(
        N_STEPS,
        Seq(Scan(n_particles), ParMap(n_particles, Op(6))),
    )
    estimates = []
    for name, model in (
        ("ParticleFilter", particle_filter),
        ("Sampling", sampling),
    ):
        info = next(k for k in KERNELS if k.name == name)
        estimates.append(
            ParallelismEstimate(
                benchmark="localization",
                kernel=name,
                parallelism=model.parallelism,
                parallelism_class=info.parallelism_class,
                work=model.work,
                span=model.span,
            )
        )
    return estimates


BENCHMARK = Benchmark(
    name="Robot Localization",
    slug="localization",
    area=ConcentrationArea.IMAGE_UNDERSTANDING,
    description="Detect location based on environment",
    characteristic=Characteristic.COMPUTE_INTENSIVE,
    application_domain="Robotics",
    kernels=KERNELS,
    setup=setup,
    run=run,
    parallelism=parallelism_models,
    in_figure2=True,
)
