"""Disparity refinements: SAD cost, left-right check, subpixel fitting.

The SD-VBS disparity code computes SAD/SSD block costs; this module adds
the standard quality extensions around the core matcher:

* :func:`dense_disparity_sad` — L1 block matching (the suite's
  ``computeSAD`` path), cheaper and more robust to outliers than SSD;
* :func:`left_right_consistency` — cross-checking the left->right and
  right->left maps to invalidate occluded pixels;
* :func:`subpixel_disparity` — parabola fitting over the cost volume's
  winning neighbourhood for sub-integer disparity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from .algorithm import DisparityResult, correlate_window, shift_right


@dataclass(frozen=True)
class ConsistencyResult:
    """Disparity with occlusions invalidated by the left-right check."""

    disparity: np.ndarray  # float; NaN where inconsistent
    valid: np.ndarray  # bool mask
    invalid_fraction: float


def _cost_volume(
    left: np.ndarray,
    right: np.ndarray,
    max_disparity: int,
    window: int,
    metric: str,
    profiler: KernelProfiler,
) -> np.ndarray:
    """Aggregated cost per (shift, row, col)."""
    volume = np.empty((max_disparity,) + left.shape)
    for d in range(max_disparity):
        with profiler.kernel("SSD"):
            shifted = shift_right(right, d)
            if metric == "sad":
                per_pixel = np.abs(left - shifted)
            else:
                diff = left - shifted
                per_pixel = diff * diff
        volume[d] = correlate_window(per_pixel, window, profiler)
    return volume


def dense_disparity_sad(
    left: np.ndarray,
    right: np.ndarray,
    max_disparity: int = 16,
    window: int = 9,
    profiler: Optional[KernelProfiler] = None,
) -> DisparityResult:
    """Dense disparity with the SAD (L1) block cost."""
    profiler = ensure_profiler(profiler)
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape or left.ndim != 2:
        raise ValueError("stereo inputs must be equal-shape 2-D images")
    if not 1 <= max_disparity < left.shape[1]:
        raise ValueError("invalid max_disparity")
    volume = _cost_volume(left, right, max_disparity, window, "sad",
                          profiler)
    with profiler.kernel("Sort"):
        best = volume.argmin(axis=0)
        cost = np.take_along_axis(volume, best[None], axis=0)[0]
    return DisparityResult(
        disparity=best.astype(np.int64),
        cost=cost,
        max_disparity=max_disparity,
        window=window,
    )


def disparity_right_to_left(
    left: np.ndarray,
    right: np.ndarray,
    max_disparity: int = 16,
    window: int = 9,
    profiler: Optional[KernelProfiler] = None,
) -> DisparityResult:
    """Disparity computed with the right image as reference.

    A right-image pixel at column ``c`` matches left column ``c + d``, so
    the matcher runs on horizontally mirrored images, which maps the
    rightward search onto :func:`dense_disparity_sad`'s leftward one.
    """
    profiler = ensure_profiler(profiler)
    mirrored = dense_disparity_sad(
        np.asarray(right, dtype=np.float64)[:, ::-1],
        np.asarray(left, dtype=np.float64)[:, ::-1],
        max_disparity=max_disparity,
        window=window,
        profiler=profiler,
    )
    return DisparityResult(
        disparity=mirrored.disparity[:, ::-1].copy(),
        cost=mirrored.cost[:, ::-1].copy(),
        max_disparity=max_disparity,
        window=window,
    )


def left_right_consistency(
    left_result: DisparityResult,
    right_result: DisparityResult,
    tolerance: int = 1,
) -> ConsistencyResult:
    """Invalidate pixels whose two disparity maps disagree.

    For left pixel (r, c) with disparity d, the corresponding right pixel
    is (r, c - d); consistency requires the right map's disparity there
    to be within ``tolerance`` of d.
    """
    disp = left_result.disparity
    rows, cols = disp.shape
    cc = np.arange(cols)[None, :].repeat(rows, axis=0)
    right_cols = np.clip(cc - disp, 0, cols - 1)
    rr = np.arange(rows)[:, None].repeat(cols, axis=1)
    right_disp = right_result.disparity[rr, right_cols]
    valid = np.abs(right_disp - disp) <= tolerance
    out = disp.astype(np.float64)
    out[~valid] = np.nan
    return ConsistencyResult(
        disparity=out,
        valid=valid,
        invalid_fraction=float((~valid).mean()),
    )


def subpixel_disparity(
    left: np.ndarray,
    right: np.ndarray,
    max_disparity: int = 16,
    window: int = 9,
    profiler: Optional[KernelProfiler] = None,
) -> np.ndarray:
    """Sub-integer disparity via parabola fitting on the SSD volume.

    Fits ``d* = d - (c+ - c-) / (2 (c+ - 2c + c-))`` through the winning
    cost and its shift neighbours; boundary winners keep their integer
    value.
    """
    profiler = ensure_profiler(profiler)
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    volume = _cost_volume(left, right, max_disparity, window, "ssd",
                          profiler)
    with profiler.kernel("Sort"):
        best = volume.argmin(axis=0)
        refined = best.astype(np.float64)
        interior = (best > 0) & (best < max_disparity - 1)
        rows, cols = best.shape
        rr, cc = np.nonzero(interior)
        d = best[rr, cc]
        c_mid = volume[d, rr, cc]
        c_minus = volume[d - 1, rr, cc]
        c_plus = volume[d + 1, rr, cc]
        denom = c_plus - 2.0 * c_mid + c_minus
        offset = np.where(
            np.abs(denom) > 1e-12,
            (c_minus - c_plus) / (2.0 * np.where(np.abs(denom) > 1e-12,
                                                 denom, 1.0)),
            0.0,
        )
        refined[rr, cc] = d + np.clip(offset, -0.5, 0.5)
    return refined
