"""Disparity Map: dense stereo depth (Motion, Tracking and Stereo Vision)."""

from .algorithm import (
    DisparityResult,
    correlate_window,
    dense_disparity,
    disparity_error,
    shift_right,
    ssd_map,
)
from .benchmark import BENCHMARK, KERNELS, MAX_DISPARITY, WINDOW
from .refine import (
    ConsistencyResult,
    dense_disparity_sad,
    disparity_right_to_left,
    left_right_consistency,
    subpixel_disparity,
)

__all__ = [
    "BENCHMARK",
    "KERNELS",
    "MAX_DISPARITY",
    "WINDOW",
    "ConsistencyResult",
    "DisparityResult",
    "correlate_window",
    "dense_disparity",
    "dense_disparity_sad",
    "disparity_right_to_left",
    "disparity_error",
    "left_right_consistency",
    "subpixel_disparity",
    "shift_right",
    "ssd_map",
]
