"""Dense stereo disparity — SD-VBS's Disparity Map application.

Given a rectified stereo pair, computes dense disparity by block matching:
for every candidate shift ``d`` the per-pixel squared difference between
the left image and the right image shifted right by ``d`` is aggregated
over a square window (via integral images), and each pixel takes the shift
with the smallest aggregated cost (winner-take-all).

Kernel decomposition (paper Figure 1/3):

* ``SSD`` — per-pixel squared differences for one candidate shift.
* ``IntegralImage`` — summed-area table of the SSD map.
* ``Correlation`` — windowed aggregation of SSD via area sums.
* ``Sort`` — winner-take-all cost minimization across shifts.

The pre-filtering the paper mentions ("the 2D filtering operation was
implemented as two 1D filters") appears as the optional smoothing pass in
:func:`dense_disparity`, attributed to the ``SSD`` phase's setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.backend import register_kernel
from ..core.metrics import FLOAT_BYTES, WorkEstimate
from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.convolution import convolve_separable
from ..imgproc.integral import integral_image

#: Smoothing taps applied before matching (two 1-D passes, as in the suite).
_PREFILTER = np.array([0.25, 0.5, 0.25])


@dataclass(frozen=True)
class DisparityResult:
    """Dense disparity map plus the per-pixel winning cost."""

    disparity: np.ndarray
    cost: np.ndarray
    max_disparity: int
    window: int


def shift_right(image: np.ndarray, d: int) -> np.ndarray:
    """Shift an image ``d`` columns to the right with edge replication.

    ``shift_right(right, d)[r, c] == right[r, c - d]``: aligns the right
    view's candidate correspondents under the left view's pixels.
    """
    if d < 0:
        raise ValueError("shift must be non-negative")
    if d == 0:
        return np.asarray(image, dtype=np.float64).copy()
    out = np.empty_like(image, dtype=np.float64)
    out[:, d:] = image[:, :-d]
    out[:, :d] = image[:, :1]
    return out


def _work_ssd_map(left: np.ndarray, right: np.ndarray,
                  d: int) -> WorkEstimate:
    """One subtract and one multiply per pixel; read both views, write
    the squared-difference map."""
    pixels = int(np.prod(np.shape(left)))
    return WorkEstimate(
        flops=2.0 * pixels,
        traffic_bytes=FLOAT_BYTES * 3.0 * pixels,
    )


def _ssd_map_ref(left: np.ndarray, right: np.ndarray, d: int) -> np.ndarray:
    """Loop-faithful SSD: one scalar subtract/square per (pixel, shift).

    The column clamp reproduces :func:`shift_right`'s replicated border
    (``right[r, 0]`` for columns left of the shift).
    """
    if d < 0:
        raise ValueError("shift must be non-negative")
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    rows, cols = left.shape
    out = np.empty((rows, cols), dtype=np.float64)
    for r in range(rows):
        for c in range(cols):
            diff = left[r, c] - right[r, c - d if c >= d else 0]
            out[r, c] = diff * diff
    return out


@register_kernel(
    "disparity.ssd",
    paper_kernel="SSD",
    apps=("disparity",),
    ref=_ssd_map_ref,
    work=_work_ssd_map,
)
def ssd_map(left: np.ndarray, right: np.ndarray, d: int) -> np.ndarray:
    """Per-pixel squared difference for candidate disparity ``d``."""
    diff = left - shift_right(right, d)
    return diff * diff


def window_sums(table: np.ndarray, window: int) -> np.ndarray:
    """Windowed area sums read out of a summed-area table.

    ``table`` is the ``(rows+1, cols+1)`` integral image of the source
    map; the result has the source shape, with border bands replicating
    the nearest full-window sum.  This is the "Correlation" kernel body
    — a named function (rather than inline code) so stack samples land
    on an attributable frame.
    """
    rows, cols = table.shape[0] - 1, table.shape[1] - 1
    inner = (
        table[window:, window:]
        - table[:-window, window:]
        - table[window:, :-window]
        + table[:-window, :-window]
    )
    half = window // 2
    out = np.empty((rows, cols), dtype=np.float64)
    out[half : rows - half, half : cols - half] = inner
    # Replicate the outermost full-window costs into the border bands.
    out[:half, half : cols - half] = inner[0]
    out[rows - half :, half : cols - half] = inner[-1]
    out[:, :half] = out[:, half : half + 1]
    out[:, cols - half :] = out[:, cols - half - 1 : cols - half]
    return out


def correlate_window(ssd: np.ndarray, window: int,
                     profiler: Optional[KernelProfiler] = None) -> np.ndarray:
    """Aggregate an SSD map over ``window x window`` neighbourhoods.

    Splits the work exactly as the suite does: build the integral image
    ("IntegralImage" kernel) then read window sums out of it
    ("Correlation" kernel).  Borders replicate the nearest full window.
    """
    profiler = ensure_profiler(profiler)
    rows, cols = ssd.shape
    if window < 1 or window % 2 == 0:
        raise ValueError("window must be a positive odd integer")
    if window > rows or window > cols:
        raise ValueError(f"window {window} exceeds image shape {ssd.shape}")
    with profiler.kernel("IntegralImage"):
        table = integral_image(ssd)
    with profiler.kernel("Correlation"):
        out = window_sums(table, window)
    return out


def winner_update(
    aggregated: np.ndarray,
    d: int,
    best_cost: np.ndarray,
    best_disp: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Winner-take-all update for one candidate shift.

    This is the "Sort" kernel body — a named function (rather than
    inline code) so stack samples land on an attributable frame.
    """
    better = aggregated < best_cost
    best_cost = np.where(better, aggregated, best_cost)
    best_disp = np.where(better, d, best_disp)
    return best_cost, best_disp


def dense_disparity(
    left: np.ndarray,
    right: np.ndarray,
    max_disparity: int = 16,
    window: int = 9,
    prefilter: bool = True,
    profiler: Optional[KernelProfiler] = None,
) -> DisparityResult:
    """Compute the dense disparity map of a rectified stereo pair.

    ``max_disparity`` bounds the search (exclusive); ``window`` is the odd
    aggregation window side.  Returns integer disparities in
    ``[0, max_disparity)`` per pixel.
    """
    profiler = ensure_profiler(profiler)
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    if left.shape != right.shape:
        raise ValueError(f"shape mismatch: {left.shape} vs {right.shape}")
    if left.ndim != 2:
        raise ValueError("stereo inputs must be 2-D grayscale images")
    if max_disparity < 1:
        raise ValueError("max_disparity must be >= 1")
    if max_disparity >= left.shape[1]:
        raise ValueError("max_disparity must be smaller than image width")
    if prefilter:
        left = convolve_separable(left, _PREFILTER, _PREFILTER)
        right = convolve_separable(right, _PREFILTER, _PREFILTER)
    best_cost = np.full(left.shape, np.inf)
    best_disp = np.zeros(left.shape, dtype=np.int64)
    for d in range(max_disparity):
        with profiler.kernel("SSD"):
            ssd = ssd_map(left, right, d)
        aggregated = correlate_window(ssd, window, profiler)
        with profiler.kernel("Sort"):
            best_cost, best_disp = winner_update(aggregated, d,
                                                 best_cost, best_disp)
    return DisparityResult(
        disparity=best_disp,
        cost=best_cost,
        max_disparity=max_disparity,
        window=window,
    )


def disparity_error(result: DisparityResult, truth: np.ndarray,
                    border: int = 8) -> float:
    """Mean absolute disparity error over the interior (quality metric)."""
    truth = np.asarray(truth)
    if truth.shape != result.disparity.shape:
        raise ValueError("truth shape mismatch")
    interior = (slice(border, -border or None), slice(border, -border or None))
    return float(
        np.abs(result.disparity[interior] - truth[interior]).mean()
    )
