"""Benchmark wiring for the Disparity Map application.

Provides the registry descriptor (Table I/II metadata), the profiled run
entry used by Figures 2/3, and the per-kernel work/span models behind
Table IV's disparity rows.
"""

from __future__ import annotations

from typing import List, Mapping

from ..core.dataflow import Chain, Op, ParMap, Seq
from ..core.inputs import stereo_pair
from ..core.profiler import KernelProfiler
from ..core.registry import Benchmark
from ..core.types import (
    Characteristic,
    ConcentrationArea,
    InputSize,
    KernelInfo,
    ParallelismClass,
    ParallelismEstimate,
)
from .algorithm import (
    dense_disparity,
    disparity_error,
    shift_right,
    window_sums,
    winner_update,
)

#: Search range and window used by the suite driver at every size.
MAX_DISPARITY = 16
WINDOW = 9

#: Frames the statistical sampler should attribute to instrumented
#: kernels whose bodies are factored helpers rather than registered
#: dual-backend kernels (SSD and IntegralImage map automatically through
#: the backend registry).
SAMPLING_FRAMES = {
    "Correlation": (window_sums,),
    "Sort": (winner_update,),
    "SSD": (shift_right,),
}

KERNELS = (
    KernelInfo("Correlation", "windowed aggregation of SSD maps",
               ParallelismClass.TLP),
    KernelInfo("IntegralImage", "summed-area tables of SSD maps",
               ParallelismClass.TLP),
    KernelInfo("Sort", "winner-take-all cost minimization",
               ParallelismClass.DLP),
    KernelInfo("SSD", "per-pixel squared differences per shift",
               ParallelismClass.DLP),
)


def setup(size: InputSize, variant: int):
    """Build the synthetic stereo pair (untimed)."""
    return stereo_pair(size, variant, max_disparity=MAX_DISPARITY - 4)


def run(pair, profiler: KernelProfiler) -> Mapping[str, object]:
    """Run dense disparity on a prepared stereo pair."""
    result = dense_disparity(
        pair.left, pair.right,
        max_disparity=MAX_DISPARITY, window=WINDOW, profiler=profiler,
    )
    return {
        "mean_abs_error": disparity_error(result, pair.true_disparity),
        "max_disparity": result.max_disparity,
    }


def parallelism_models(size: InputSize) -> List[ParallelismEstimate]:
    """Work/span models mirroring the loop nests of each disparity kernel.

    The integral image keeps its serial accumulation chains (parallel
    across rows/columns only), which is why its measured parallelism is an
    order of magnitude below the fully independent SSD/Sort loops — the
    same ordering Table IV reports (SSD 1800x > Sort 1700x >
    Correlation 502x > Integral Image 160x).
    """
    rows, cols = size.shape
    pixels = rows * cols
    estimates = []
    # SSD: every (pixel, shift) is independent; 3 dependent ops each.
    ssd = ParMap(MAX_DISPARITY, ParMap(pixels, Op(3)))
    # Integral image: per-shift serial row scans then column scans.
    integral = ParMap(
        MAX_DISPARITY,
        Seq(ParMap(rows, Chain(cols, Op(1))), ParMap(cols, Chain(rows, Op(1)))),
    )
    # Correlation: four loads + 3 adds per pixel per shift, independent.
    correlation = ParMap(MAX_DISPARITY, ParMap(pixels, Op(7)))
    # Sort: per-pixel running min across shifts — the compare chain is
    # loop-carried over shifts but independent across pixels.
    sort = ParMap(pixels, Chain(MAX_DISPARITY, Op(2)))
    for name, model in (
        ("Correlation", correlation),
        ("IntegralImage", integral),
        ("Sort", sort),
        ("SSD", ssd),
    ):
        info = next(k for k in KERNELS if k.name == name)
        estimates.append(
            ParallelismEstimate(
                benchmark="disparity",
                kernel=name,
                parallelism=model.parallelism,
                parallelism_class=info.parallelism_class,
                work=model.work,
                span=model.span,
            )
        )
    return estimates


BENCHMARK = Benchmark(
    name="Disparity Map",
    slug="disparity",
    area=ConcentrationArea.MOTION_TRACKING_STEREO,
    description="Compute depth information using dense stereo",
    characteristic=Characteristic.DATA_INTENSIVE,
    application_domain="Robot vision for Adaptive Cruise Control, Stereo Vision",
    kernels=KERNELS,
    setup=setup,
    run=run,
    parallelism=parallelism_models,
    in_figure2=True,
    sampling_frames=SAMPLING_FRAMES,
)
