"""SIFT orientation assignment and 128-D descriptor computation.

Orientation: a 36-bin histogram of gradient angles around the keypoint,
Gaussian-weighted by distance; the dominant bin (parabola-refined) becomes
the keypoint orientation, and secondary peaks above 80% spawn duplicate
keypoints (as in Lowe's paper).

Descriptor: gradients in a 16x16 window, rotated into the keypoint frame,
binned into a 4x4 spatial grid of 8-bin orientation histograms, then
normalized / clipped at 0.2 / renormalized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.backend import register_kernel
from ..core.metrics import FLOAT_BYTES, WorkEstimate
from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.gradient import gradient
from .keypoints import Keypoint

N_ORIENTATION_BINS = 36
DESCRIPTOR_GRID = 4
DESCRIPTOR_BINS = 8
DESCRIPTOR_CLIP = 0.2


def _work_descriptor_at(
    magnitude: np.ndarray,
    angle: np.ndarray,
    row: float,
    col: float,
    orientation: float,
    scale: float = 1.0,
) -> WorkEstimate:
    """Fixed-size window: ~20 flops per 16x16 sample (rotate, Gaussian
    weight, binning) plus the normalize/clip/renormalize tail over the
    128 histogram bins; traffic is two field reads per sample plus the
    histogram passes."""
    samples = float((4 * DESCRIPTOR_GRID) ** 2)  # 16x16 window
    bins = float(DESCRIPTOR_GRID * DESCRIPTOR_GRID * DESCRIPTOR_BINS)
    return WorkEstimate(
        flops=20.0 * samples + 6.0 * bins,
        traffic_bytes=FLOAT_BYTES * (3.0 * samples + 3.0 * bins),
    )


@dataclass(frozen=True)
class SiftFeature:
    """A keypoint plus its 128-D descriptor."""

    keypoint: Keypoint
    descriptor: np.ndarray  # (128,), L2-normalized


def orientation_histogram(
    magnitude: np.ndarray,
    angle: np.ndarray,
    row: int,
    col: int,
    radius: int,
    sigma: float,
) -> np.ndarray:
    """Gaussian-weighted 36-bin angle histogram around ``(row, col)``."""
    rows, cols = magnitude.shape
    hist = np.zeros(N_ORIENTATION_BINS)
    r0, r1 = max(0, row - radius), min(rows, row + radius + 1)
    c0, c1 = max(0, col - radius), min(cols, col + radius + 1)
    yy, xx = np.mgrid[r0:r1, c0:c1]
    weight = np.exp(
        -((yy - row) ** 2 + (xx - col) ** 2) / (2.0 * sigma * sigma)
    )
    mags = magnitude[r0:r1, c0:c1] * weight
    angles = angle[r0:r1, c0:c1]
    bins = np.floor(
        (angles + math.pi) / (2 * math.pi) * N_ORIENTATION_BINS
    ).astype(int) % N_ORIENTATION_BINS
    np.add.at(hist, bins.ravel(), mags.ravel())
    # Circular smoothing (Lowe smooths the histogram before peak picking).
    smoothed = hist.copy()
    for _ in range(2):
        smoothed = (
            np.roll(smoothed, 1) + smoothed + np.roll(smoothed, -1)
        ) / 3.0
    return smoothed


def dominant_orientations(hist: np.ndarray,
                          peak_ratio: float = 0.8) -> List[float]:
    """Angles (radians) of histogram peaks above ``peak_ratio * max``.

    Peak positions are refined by fitting a parabola through the bin and
    its neighbours.
    """
    n = hist.size
    peak = float(hist.max())
    if peak <= 0.0:
        return []
    angles = []
    for i in range(n):
        left, right = hist[(i - 1) % n], hist[(i + 1) % n]
        if hist[i] >= peak_ratio * peak and hist[i] > left and hist[i] > right:
            denom = left - 2.0 * hist[i] + right
            shift = 0.0 if denom == 0 else 0.5 * (left - right) / denom
            bin_center = (i + shift + 0.5) / n
            angles.append(bin_center * 2.0 * math.pi - math.pi)
    return angles


def _descriptor_at_ref(
    magnitude: np.ndarray,
    angle: np.ndarray,
    row: float,
    col: float,
    orientation: float,
    scale: float = 1.0,
) -> np.ndarray:
    """Loop-faithful descriptor: one scalar rotate/bin/accumulate per
    sample of the 16x16 window, then the normalize/clip/renormalize tail.

    Sample order matches the vectorized path's row-major ``np.add.at``
    accumulation, so histogram bins agree to round-off.
    """
    rows, cols = magnitude.shape
    half = DESCRIPTOR_GRID * 2
    span = max(1.0, scale)
    cos_o, sin_o = math.cos(orientation), math.sin(orientation)
    two_pi = 2.0 * math.pi
    sigma_sq2 = 2.0 * (half * 0.6) ** 2
    hist = np.zeros(DESCRIPTOR_GRID * DESCRIPTOR_GRID * DESCRIPTOR_BINS)
    for sy in range(-half, half):
        for sx in range(-half, half):
            oy = (sy + 0.5) * span
            ox = (sx + 0.5) * span
            ry = int(np.rint(row + cos_o * oy - sin_o * ox))
            rx = int(np.rint(col + sin_o * oy + cos_o * ox))
            if not (0 <= ry < rows and 0 <= rx < cols):
                continue
            weight = math.exp(-(sy * sy + sx * sx) / sigma_sq2)
            mag = magnitude[ry, rx] * weight
            theta = (angle[ry, rx] - orientation) % two_pi
            cell_y = ((sy + half) * DESCRIPTOR_GRID) // (2 * half)
            cell_x = ((sx + half) * DESCRIPTOR_GRID) // (2 * half)
            bin_index = min(int(theta / two_pi * DESCRIPTOR_BINS),
                            DESCRIPTOR_BINS - 1)
            flat = (cell_y * DESCRIPTOR_GRID + cell_x) * DESCRIPTOR_BINS \
                + bin_index
            hist[flat] += mag
    desc = hist
    norm = math.sqrt(float(sum(v * v for v in desc)))
    if norm > 0:
        desc = desc / norm
        desc = np.minimum(desc, DESCRIPTOR_CLIP)
        norm = math.sqrt(float(sum(v * v for v in desc)))
        if norm > 0:
            desc = desc / norm
    return desc


@register_kernel(
    "sift.descriptor",
    paper_kernel="SIFT (descriptor histogram)",
    apps=("sift", "stitch"),
    ref=_descriptor_at_ref,
    rtol=1e-9,
    atol=1e-9,
    work=_work_descriptor_at,
)
def descriptor_at(
    magnitude: np.ndarray,
    angle: np.ndarray,
    row: float,
    col: float,
    orientation: float,
    scale: float = 1.0,
) -> np.ndarray:
    """Compute the 4x4x8 descriptor at a (level-local) position.

    ``scale`` stretches the 16x16 sampling window with the keypoint size.
    """
    rows, cols = magnitude.shape
    half = DESCRIPTOR_GRID * 2  # 8 samples per side half-window
    span = max(1.0, scale)
    cos_o, sin_o = math.cos(orientation), math.sin(orientation)
    # Vectorized sampling grid: rotate all 16x16 offsets at once.
    sy, sx = np.mgrid[-half:half, -half:half].astype(np.float64)
    oy = (sy + 0.5) * span
    ox = (sx + 0.5) * span
    ry = np.rint(row + cos_o * oy - sin_o * ox).astype(np.int64)
    rx = np.rint(col + sin_o * oy + cos_o * ox).astype(np.int64)
    inside = (ry >= 0) & (ry < rows) & (rx >= 0) & (rx < cols)
    ry_safe = np.clip(ry, 0, rows - 1)
    rx_safe = np.clip(rx, 0, cols - 1)
    weight = np.exp(-(sy * sy + sx * sx) / (2.0 * (half * 0.6) ** 2))
    mags = magnitude[ry_safe, rx_safe] * weight * inside
    theta = np.mod(angle[ry_safe, rx_safe] - orientation, 2.0 * math.pi)
    cell_y = ((sy + half).astype(np.int64) * DESCRIPTOR_GRID) // (2 * half)
    cell_x = ((sx + half).astype(np.int64) * DESCRIPTOR_GRID) // (2 * half)
    bin_index = np.minimum(
        (theta / (2.0 * math.pi) * DESCRIPTOR_BINS).astype(np.int64),
        DESCRIPTOR_BINS - 1,
    )
    flat_index = (
        cell_y * DESCRIPTOR_GRID + cell_x
    ) * DESCRIPTOR_BINS + bin_index
    hist = np.zeros(DESCRIPTOR_GRID * DESCRIPTOR_GRID * DESCRIPTOR_BINS)
    np.add.at(hist, flat_index.ravel(), mags.ravel())
    desc = hist
    norm = float(np.linalg.norm(desc))
    if norm > 0:
        desc = desc / norm
        desc = np.minimum(desc, DESCRIPTOR_CLIP)
        norm = float(np.linalg.norm(desc))
        if norm > 0:
            desc = desc / norm
    return desc


def describe_keypoints(
    image: np.ndarray,
    keypoints: Sequence[Keypoint],
    profiler: Optional[KernelProfiler] = None,
) -> List[SiftFeature]:
    """Assign orientations and descriptors to detected keypoints.

    Gradients are computed once on the full-resolution image; keypoints
    carrying multiple dominant orientations are duplicated per
    orientation, exactly as Lowe specifies.
    """
    profiler = ensure_profiler(profiler)
    with profiler.kernel("SIFT"):
        gx, gy = gradient(np.asarray(image, dtype=np.float64))
        magnitude = np.hypot(gx, gy)
        angle = np.arctan2(gy, gx)
        features: List[SiftFeature] = []
        rows, cols = magnitude.shape
        for kp in keypoints:
            row, col = int(round(kp.row)), int(round(kp.col))
            if not (0 <= row < rows and 0 <= col < cols):
                continue
            radius = max(3, int(round(3.0 * kp.sigma)))
            hist = orientation_histogram(
                magnitude, angle, row, col, radius, 1.5 * max(kp.sigma, 0.8)
            )
            for theta in dominant_orientations(hist) or [0.0]:
                oriented = Keypoint(
                    row=kp.row,
                    col=kp.col,
                    octave=kp.octave,
                    scale_index=kp.scale_index,
                    sigma=kp.sigma,
                    response=kp.response,
                    orientation=theta,
                )
                desc = descriptor_at(
                    magnitude, angle, kp.row, kp.col, theta,
                    scale=max(0.5, kp.sigma / 2.0),
                )
                features.append(SiftFeature(keypoint=oriented, descriptor=desc))
    return features


def match_descriptors(
    first: Sequence[SiftFeature],
    second: Sequence[SiftFeature],
    ratio: float = 0.8,
) -> List[Tuple[int, int]]:
    """Lowe-ratio nearest-neighbour matching between two feature sets.

    Returns index pairs ``(i, j)`` where the best match ``j`` for ``i`` is
    sufficiently better than the runner-up.
    """
    if not first or not second:
        return []
    a = np.stack([f.descriptor for f in first])
    b = np.stack([f.descriptor for f in second])
    # Squared distances via the expansion |x-y|^2 = |x|^2 + |y|^2 - 2 x.y
    d2 = (
        (a * a).sum(axis=1)[:, None]
        + (b * b).sum(axis=1)[None, :]
        - 2.0 * (a @ b.T)
    )
    matches = []
    for i in range(a.shape[0]):
        order = np.argsort(d2[i])
        best = order[0]
        if d2.shape[1] >= 2:
            second_best = order[1]
            if d2[i, best] > ratio * ratio * d2[i, second_best]:
                continue
        matches.append((i, int(best)))
    return matches
