"""SIFT: scale-invariant feature detection and description."""

from .benchmark import BENCHMARK, KERNELS, N_OCTAVES, SCALES_PER_OCTAVE
from .descriptors import (
    SiftFeature,
    describe_keypoints,
    descriptor_at,
    dominant_orientations,
    match_descriptors,
    orientation_histogram,
)
from .mser import LEVELS, MserRegion, detect_mser
from .keypoints import (
    Keypoint,
    build_scale_space,
    detect_keypoints,
    edge_response_ok,
    local_extrema_mask,
    refine_candidate,
)
from .sift import SiftResult, contrast_normalize, extract_features

__all__ = [
    "BENCHMARK",
    "KERNELS",
    "N_OCTAVES",
    "SCALES_PER_OCTAVE",
    "Keypoint",
    "LEVELS",
    "MserRegion",
    "SiftFeature",
    "SiftResult",
    "build_scale_space",
    "contrast_normalize",
    "describe_keypoints",
    "descriptor_at",
    "detect_keypoints",
    "detect_mser",
    "dominant_orientations",
    "edge_response_ok",
    "extract_features",
    "local_extrema_mask",
    "match_descriptors",
    "orientation_histogram",
    "refine_candidate",
]
