"""Benchmark wiring for the SIFT application."""

from __future__ import annotations

from typing import List, Mapping

from ..core.dataflow import Chain, Op, ParMap, Scan, Seq
from ..core.inputs import image
from ..core.profiler import KernelProfiler
from ..core.registry import Benchmark
from ..core.types import (
    Characteristic,
    ConcentrationArea,
    InputSize,
    KernelInfo,
    ParallelismClass,
    ParallelismEstimate,
)
from .sift import extract_features

N_OCTAVES = 3
SCALES_PER_OCTAVE = 3

KERNELS = (
    KernelInfo("SIFT", "scale space, keypoint detection, descriptors",
               ParallelismClass.TLP),
    KernelInfo("Interpolation", "2x anti-aliased upsampling",
               ParallelismClass.TLP),
    KernelInfo("IntegralImage", "window-statistics contrast normalization",
               ParallelismClass.TLP),
)


def setup(size: InputSize, variant: int):
    """Build the synthetic textured scene (untimed)."""
    return image(size, variant, salt="sift")


def run(scene, profiler: KernelProfiler) -> Mapping[str, object]:
    """Extract SIFT features from a prepared scene."""
    result = extract_features(
        scene, n_octaves=N_OCTAVES, scales_per_octave=SCALES_PER_OCTAVE,
        profiler=profiler,
    )
    return {
        "keypoints": len(result.keypoints),
        "features": len(result.features),
    }


def parallelism_models(size: InputSize) -> List[ParallelismEstimate]:
    """Work/span models for the SIFT kernels.

    Table IV reports Integral Image with the most parallelism (16,000x),
    then Interpolation (502x) and SIFT detection lowest (180x) — the
    detection/descriptor stage pays for its irregular, feature-serial
    refinement loops.  The models mirror those loop shapes.
    """
    rows, cols = size.shape
    pixels = rows * cols
    up_rows, up_cols = 2 * rows, 2 * cols
    # Integral image: the ideal machine reassociates both accumulation
    # passes into parallel prefixes, then window statistics are fully
    # independent — the highest limit in this benchmark (paper: 16,000x).
    integral = Seq(
        ParMap(rows, Scan(cols)),
        ParMap(cols, Scan(rows)),
        ParMap(pixels, Op(9)),
    )
    # Interpolation: output rows are pairwise independent, samples along a
    # row share incremental index arithmetic (a serial chain).
    interpolation = ParMap(up_rows * 2, Chain(up_cols // 2, Op(8)))
    # SIFT detection: scale levels are serially dependent (each Gaussian
    # feeds the next), rows parallel, columns a scan chain; descriptor
    # refinement serializes per keypoint.  Lowest limit (paper: 180x).
    n_feats = max(16, pixels // 256)
    sift_model = Seq(
        Chain(
            SCALES_PER_OCTAVE + 2,
            ParMap(up_rows, Chain(up_cols, Op(27))),
        ),
        ParMap(n_feats, Chain(40, Op(6))),
    )
    estimates = []
    for name, model in (
        ("SIFT", sift_model),
        ("Interpolation", interpolation),
        ("IntegralImage", integral),
    ):
        info = next(k for k in KERNELS if k.name == name)
        estimates.append(
            ParallelismEstimate(
                benchmark="sift",
                kernel=name,
                parallelism=model.parallelism,
                parallelism_class=info.parallelism_class,
                work=model.work,
                span=model.span,
            )
        )
    return estimates


BENCHMARK = Benchmark(
    name="SIFT",
    slug="sift",
    area=ConcentrationArea.IMAGE_ANALYSIS,
    description="Extract invariant features from distorted images",
    characteristic=Characteristic.COMPUTE_INTENSIVE,
    application_domain="Object recognition",
    kernels=KERNELS,
    setup=setup,
    run=run,
    parallelism=parallelism_models,
    in_figure2=True,
)
