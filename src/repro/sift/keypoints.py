"""SIFT keypoint detection: DoG scale-space extrema with refinement.

Candidates are local extrema of the Difference-of-Gaussians pyramid over a
3x3x3 neighbourhood (space x scale).  Each candidate is refined by fitting
a quadratic to the DoG (one Newton step on the 3-D gradient/Hessian) and
pruned by contrast and by the Harris-style edge-response ratio, following
Lowe's criteria.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.pyramid import ScaleSpace, scale_space
from ..linalg.matrix import SingularMatrixError, solve


@dataclass(frozen=True)
class Keypoint:
    """A refined scale-space feature in input-image coordinates."""

    row: float
    col: float
    octave: int
    scale_index: int
    sigma: float
    response: float
    orientation: float = 0.0


def local_extrema_mask(below: np.ndarray, here: np.ndarray,
                       above: np.ndarray, threshold: float) -> np.ndarray:
    """Pixels of ``here`` that are 3x3x3 extrema above ``threshold``.

    Border pixels are excluded.  Vectorized by comparing against the max/
    min over all 26 neighbours computed with shifted views.
    """
    if not (below.shape == here.shape == above.shape):
        raise ValueError("scale slices must share a shape")
    rows, cols = here.shape
    if rows < 3 or cols < 3:
        return np.zeros_like(here, dtype=bool)
    center = here[1:-1, 1:-1]
    neighbour_max = np.full(center.shape, -np.inf)
    neighbour_min = np.full(center.shape, np.inf)
    for layer in (below, here, above):
        for dy in (0, 1, 2):
            for dx in (0, 1, 2):
                view = layer[dy : rows - 2 + dy, dx : cols - 2 + dx]
                if layer is here and dy == 1 and dx == 1:
                    continue
                neighbour_max = np.maximum(neighbour_max, view)
                neighbour_min = np.minimum(neighbour_min, view)
    is_max = (center > neighbour_max) & (center > threshold)
    is_min = (center < neighbour_min) & (center < -threshold)
    mask = np.zeros_like(here, dtype=bool)
    mask[1:-1, 1:-1] = is_max | is_min
    return mask


def refine_candidate(dogs: Sequence[np.ndarray], scale: int, row: int,
                     col: int) -> Optional[np.ndarray]:
    """One Newton refinement step in (row, col, scale).

    Returns the offset vector ``[dr, dc, ds]`` or ``None`` when the
    Hessian is singular.  Offsets larger than 1.5 in any coordinate mark
    unstable candidates (rejected by the caller).
    """
    d = dogs
    grad = np.array(
        [
            (d[scale][row + 1, col] - d[scale][row - 1, col]) / 2.0,
            (d[scale][row, col + 1] - d[scale][row, col - 1]) / 2.0,
            (d[scale + 1][row, col] - d[scale - 1][row, col]) / 2.0,
        ]
    )
    drr = d[scale][row + 1, col] - 2 * d[scale][row, col] + d[scale][row - 1, col]
    dcc = d[scale][row, col + 1] - 2 * d[scale][row, col] + d[scale][row, col - 1]
    dss = d[scale + 1][row, col] - 2 * d[scale][row, col] + d[scale - 1][row, col]
    drc = (
        d[scale][row + 1, col + 1]
        - d[scale][row + 1, col - 1]
        - d[scale][row - 1, col + 1]
        + d[scale][row - 1, col - 1]
    ) / 4.0
    drs = (
        d[scale + 1][row + 1, col]
        - d[scale + 1][row - 1, col]
        - d[scale - 1][row + 1, col]
        + d[scale - 1][row - 1, col]
    ) / 4.0
    dcs = (
        d[scale + 1][row, col + 1]
        - d[scale + 1][row, col - 1]
        - d[scale - 1][row, col + 1]
        + d[scale - 1][row, col - 1]
    ) / 4.0
    hessian = np.array([[drr, drc, drs], [drc, dcc, dcs], [drs, dcs, dss]])
    try:
        return -solve(hessian, grad)
    except SingularMatrixError:
        return None


def edge_response_ok(dog: np.ndarray, row: int, col: int,
                     edge_ratio: float = 10.0) -> bool:
    """Lowe's edge test: reject candidates on ridges (high curvature ratio)."""
    drr = dog[row + 1, col] - 2 * dog[row, col] + dog[row - 1, col]
    dcc = dog[row, col + 1] - 2 * dog[row, col] + dog[row, col - 1]
    drc = (
        dog[row + 1, col + 1]
        - dog[row + 1, col - 1]
        - dog[row - 1, col + 1]
        + dog[row - 1, col - 1]
    ) / 4.0
    trace = drr + dcc
    det = drr * dcc - drc * drc
    if det <= 0.0:
        return False
    return trace * trace / det < (edge_ratio + 1.0) ** 2 / edge_ratio


def detect_keypoints(
    octaves: Sequence[ScaleSpace],
    contrast_threshold: float = 0.015,
    edge_ratio: float = 10.0,
    upsampled: bool = True,
    profiler: Optional[KernelProfiler] = None,
) -> List[Keypoint]:
    """Find refined, pruned keypoints across all octaves.

    Coordinates are reported in the original (pre-upsampling) image frame
    when ``upsampled`` is true, matching the pipeline in
    :func:`repro.sift.sift.extract_features`.
    """
    profiler = ensure_profiler(profiler)
    keypoints: List[Keypoint] = []
    base = 0.5 if upsampled else 1.0
    with profiler.kernel("SIFT"):
        for space in octaves:
            pixel_scale = base * (2.0**space.octave)
            dogs = space.dogs
            for s in range(1, len(dogs) - 1):
                mask = local_extrema_mask(
                    dogs[s - 1], dogs[s], dogs[s + 1], contrast_threshold
                )
                for row, col in zip(*np.nonzero(mask)):
                    offset = refine_candidate(dogs, s, int(row), int(col))
                    if offset is None or np.abs(offset).max() > 1.5:
                        continue
                    value = dogs[s][row, col] + 0.5 * float(
                        offset
                        @ np.array(
                            [
                                (dogs[s][row + 1, col] - dogs[s][row - 1, col]) / 2,
                                (dogs[s][row, col + 1] - dogs[s][row, col - 1]) / 2,
                                (dogs[s + 1][row, col] - dogs[s - 1][row, col]) / 2,
                            ]
                        )
                    )
                    if abs(value) < contrast_threshold:
                        continue
                    if not edge_response_ok(dogs[s], int(row), int(col),
                                            edge_ratio):
                        continue
                    keypoints.append(
                        Keypoint(
                            row=(float(row) + float(offset[0])) * pixel_scale,
                            col=(float(col) + float(offset[1])) * pixel_scale,
                            octave=space.octave,
                            scale_index=s,
                            sigma=space.sigmas[s] * pixel_scale,
                            response=float(value),
                        )
                    )
    return keypoints


def build_scale_space(image: np.ndarray, n_octaves: int = 3,
                      scales_per_octave: int = 3,
                      profiler: Optional[KernelProfiler] = None) -> List[ScaleSpace]:
    """Profiled wrapper around the Gaussian/DoG pyramid construction."""
    profiler = ensure_profiler(profiler)
    with profiler.kernel("SIFT"):
        return scale_space(image, n_octaves, scales_per_octave)
