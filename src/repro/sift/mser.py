"""MSER — Maximally Stable Extremal Regions (Matas et al., 2002).

The SD-VBS authors acknowledge Vedaldi's SIFT *and MSER* implementations;
MSER is the suite's companion region detector.  An extremal region is a
connected component of a thresholded image; as the threshold sweeps, the
component tree evolves, and regions whose area is most stable across
thresholds are reported.

Implementation: union-find over pixels processed in intensity order
(the standard linear-time formulation).  Dark-on-bright regions come from
the upward sweep; bright-on-dark from running the same sweep on the
inverted image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler

#: Intensity quantization levels for the threshold sweep.
LEVELS = 64


@dataclass(frozen=True)
class MserRegion:
    """One maximally stable region."""

    level: int  # threshold level at which stability was measured
    area: int
    centroid: Tuple[float, float]  # (row, col)
    stability: float  # relative area growth rate (lower = more stable)
    pixels: np.ndarray  # (n, 2) member coordinates


class _UnionFind:
    """Union-find with region area/seed bookkeeping for the sweep."""

    def __init__(self, n: int) -> None:
        self.parent = np.full(n, -1, dtype=np.int64)  # -1: not yet active
        self.size = np.zeros(n, dtype=np.int64)

    def activate(self, index: int) -> None:
        self.parent[index] = index
        self.size[index] = 1

    def find(self, index: int) -> int:
        root = index
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[index] != root:  # path compression
            self.parent[index], index = root, self.parent[index]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return ra


def _component_histories(quantized: np.ndarray) -> np.ndarray:
    """Area of the component containing each pixel at every level.

    Returns ``history[level, pixel]`` = size of the pixel's component
    after all pixels with value <= level are active (0 when inactive).
    """
    rows, cols = quantized.shape
    n = rows * cols
    flat = quantized.ravel()
    order = np.argsort(flat, kind="stable")
    uf = _UnionFind(n)
    history = np.zeros((LEVELS, n), dtype=np.int64)
    cursor = 0
    for level in range(LEVELS):
        while cursor < n and flat[order[cursor]] <= level:
            index = int(order[cursor])
            uf.activate(index)
            r, c = divmod(index, cols)
            for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                rr, cc = r + dr, c + dc
                if 0 <= rr < rows and 0 <= cc < cols:
                    neighbour = rr * cols + cc
                    if uf.parent[neighbour] != -1:
                        uf.union(index, neighbour)
            cursor += 1
        # Record component sizes for active pixels.
        active = np.nonzero(uf.parent != -1)[0]
        for index in active:
            history[level, index] = uf.size[uf.find(int(index))]
    return history


def detect_mser(
    image: np.ndarray,
    delta: int = 3,
    min_area: int = 16,
    max_area_fraction: float = 0.25,
    max_stability: float = 0.5,
    polarity: str = "dark",
    profiler: Optional[KernelProfiler] = None,
) -> List[MserRegion]:
    """Detect maximally stable extremal regions.

    ``polarity="dark"`` finds dark-on-bright regions (upward sweep);
    ``"bright"`` inverts the image first.  ``delta`` is the stability
    window in quantized levels; stability is
    ``(area(l + delta) - area(l - delta)) / area(l)`` and regions are
    kept at local minima of that rate below ``max_stability``.
    """
    profiler = ensure_profiler(profiler)
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if polarity not in ("dark", "bright"):
        raise ValueError(f"unknown polarity {polarity!r}")
    if delta < 1:
        raise ValueError("delta must be >= 1")
    work = image if polarity == "dark" else (image.max() - image)
    lo, hi = work.min(), work.max()
    span = hi - lo if hi > lo else 1.0
    quantized = np.minimum(
        ((work - lo) / span * (LEVELS - 1)).astype(np.int64), LEVELS - 1
    )
    rows, cols = quantized.shape
    with profiler.kernel("SIFT"):
        history = _component_histories(quantized)
        regions: List[MserRegion] = []
        max_area = int(max_area_fraction * rows * cols)
        flat = quantized.ravel()
        # Candidate seeds: darkest pixel of each component — approximate
        # by scanning pixels and keeping, per (level, root-size) change,
        # the most stable levels.  Simpler robust criterion: for every
        # pixel, look at its component-size trajectory; the pixel whose
        # value equals the component's minimum level represents it.
        seen_components = set()
        label_cache: dict = {}

        def labels_at(level: int) -> np.ndarray:
            cached = label_cache.get(level)
            if cached is None:
                cached = _label_components(quantized <= level)
                label_cache[level] = cached
            return cached

        for index in range(rows * cols):
            base_level = int(flat[index])
            trajectory = history[:, index]
            for level in range(max(delta, base_level + 1),
                               LEVELS - delta):
                area = int(trajectory[level])
                if area < min_area or area > max_area:
                    continue
                prev_area = int(trajectory[level - delta])
                next_area = int(trajectory[level + delta])
                if prev_area == 0:
                    continue
                stability = (next_area - prev_area) / area
                prev_s = _stability_at(trajectory, level - 1, delta)
                next_s = _stability_at(trajectory, level + 1, delta)
                if stability <= max_stability and \
                        stability <= prev_s and stability < next_s:
                    labels = labels_at(level)
                    component_id = int(labels.flat[index])
                    # (level, component id) uniquely identifies the
                    # extremal region, so duplicates are skipped before
                    # any member extraction.
                    key = (level, component_id)
                    if key in seen_components:
                        continue
                    seen_components.add(key)
                    member_coords = np.argwhere(labels == component_id)
                    centroid = member_coords.mean(axis=0)
                    regions.append(
                        MserRegion(
                            level=level,
                            area=area,
                            centroid=(float(centroid[0]),
                                      float(centroid[1])),
                            stability=float(stability),
                            pixels=member_coords,
                        )
                    )
        # Deduplicate near-identical regions (same centroid & area).
        unique: List[MserRegion] = []
        for region in sorted(regions, key=lambda reg: reg.stability):
            if all(
                abs(region.centroid[0] - kept.centroid[0]) > 2
                or abs(region.centroid[1] - kept.centroid[1]) > 2
                or abs(region.area - kept.area) > 0.3 * kept.area
                for kept in unique
            ):
                unique.append(region)
    return unique


def _stability_at(trajectory: np.ndarray, level: int, delta: int) -> float:
    if level - delta < 0 or level + delta >= LEVELS:
        return float("inf")
    area = int(trajectory[level])
    prev_area = int(trajectory[level - delta])
    if area == 0 or prev_area == 0:
        return float("inf")
    return (int(trajectory[level + delta]) - prev_area) / area


def _label_components(mask: np.ndarray) -> np.ndarray:
    """4-connected component labels of ``mask`` (0 = background).

    Iterative BFS labeling; labels start at 1.
    """
    rows, cols = mask.shape
    labels = np.zeros((rows, cols), dtype=np.int64)
    next_label = 1
    for start_r in range(rows):
        for start_c in range(cols):
            if not mask[start_r, start_c] or labels[start_r, start_c]:
                continue
            stack = [(start_r, start_c)]
            labels[start_r, start_c] = next_label
            while stack:
                r, c = stack.pop()
                for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < rows and 0 <= cc < cols \
                            and mask[rr, cc] and not labels[rr, cc]:
                        labels[rr, cc] = next_label
                        stack.append((rr, cc))
            next_label += 1
    return labels
