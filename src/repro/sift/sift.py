"""The full SIFT pipeline with the paper's kernel attribution.

Stages:

1. ``Interpolation`` — 2x bilinear upsampling of the input (anti-alias
   preprocessing, the paper's data-intensive interpolation phase).
2. ``IntegralImage`` — local contrast normalization driven by windowed
   means/variances from summed-area tables (the suite's integral-image
   preprocessing slice).
3. ``SIFT`` — scale-space construction, keypoint detection and
   descriptor computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..imgproc.integral import window_means, window_variances
from ..imgproc.interpolate import upsample2
from .descriptors import SiftFeature, describe_keypoints
from .keypoints import Keypoint, build_scale_space, detect_keypoints


@dataclass(frozen=True)
class SiftResult:
    """Detected keypoints and their descriptors for one image."""

    keypoints: List[Keypoint]
    features: List[SiftFeature]


def contrast_normalize(image: np.ndarray, window: int = 15,
                       strength: float = 0.5,
                       profiler: Optional[KernelProfiler] = None) -> np.ndarray:
    """Flatten slow illumination via integral-image window statistics.

    Each pixel is shifted toward zero-mean by its window mean and softly
    rescaled by the window standard deviation; ``strength`` in [0, 1]
    blends with the identity.
    """
    profiler = ensure_profiler(profiler)
    image = np.asarray(image, dtype=np.float64)
    if not 0.0 <= strength <= 1.0:
        raise ValueError("strength must lie in [0, 1]")
    with profiler.kernel("IntegralImage"):
        means = _expand(window_means(image, window), image.shape, window)
        variances = _expand(window_variances(image, window), image.shape, window)
        std = np.sqrt(variances) + 1e-3
        centered = (image - means) / std
        # Rescale to the global contrast so intensities stay comparable.
        centered *= image.std() or 1.0
        centered += image.mean()
    return (1.0 - strength) * image + strength * centered


def _expand(inner: np.ndarray, shape, window: int) -> np.ndarray:
    """Grow a valid-window map back to image shape by edge replication."""
    half = window // 2
    out = np.empty(shape)
    rows, cols = shape
    out[half : rows - half, half : cols - half] = inner
    out[:half, half : cols - half] = inner[0]
    out[rows - half :, half : cols - half] = inner[-1]
    out[:, :half] = out[:, half : half + 1]
    out[:, cols - half :] = out[:, cols - half - 1 : cols - half]
    return out


def extract_features(
    image: np.ndarray,
    n_octaves: int = 3,
    scales_per_octave: int = 3,
    contrast_threshold: float = 0.015,
    edge_ratio: float = 10.0,
    upsample: bool = True,
    profiler: Optional[KernelProfiler] = None,
) -> SiftResult:
    """Detect SIFT keypoints and compute descriptors for ``image``."""
    profiler = ensure_profiler(profiler)
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    work = contrast_normalize(image, profiler=profiler)
    if upsample:
        with profiler.kernel("Interpolation"):
            work = upsample2(work)
    octaves = build_scale_space(
        work, n_octaves=n_octaves, scales_per_octave=scales_per_octave,
        profiler=profiler,
    )
    keypoints = detect_keypoints(
        octaves,
        contrast_threshold=contrast_threshold,
        edge_ratio=edge_ratio,
        upsampled=upsample,
        profiler=profiler,
    )
    features = describe_keypoints(image, keypoints, profiler=profiler)
    return SiftResult(keypoints=keypoints, features=features)
