"""Geometric image warping: affine and homography resampling.

General inverse-mapping warps built on the suite's bilinear sampler: for
every output pixel, the transform maps its coordinates into the source
image and samples there.  Complements the stitch pipeline's specialized
panorama compositing with a reusable standalone primitive.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.backend import register_kernel
from ..core.metrics import FLOAT_BYTES, WorkEstimate
from .interpolate import bilinear


def _work_warp_affine(
    image: np.ndarray,
    matrix: np.ndarray,
    translation: np.ndarray,
    out_shape: Optional[Tuple[int, int]] = None,
    fill: float = 0.0,
) -> WorkEstimate:
    """Per output pixel: 8-op affine transform, inside test, 16-op
    bilinear blend (~25 flops); traffic is 4 taps + 2 coordinates in,
    1 pixel out."""
    shape = tuple(out_shape) if out_shape is not None else np.shape(image)
    pixels = int(np.prod(shape))
    return WorkEstimate(
        flops=25.0 * pixels,
        traffic_bytes=FLOAT_BYTES * 7.0 * pixels,
    )


def _warp_affine_ref(
    image: np.ndarray,
    matrix: np.ndarray,
    translation: np.ndarray,
    out_shape: Optional[Tuple[int, int]] = None,
    fill: float = 0.0,
) -> np.ndarray:
    """Loop-faithful inverse-mapping warp: one scalar sample per pixel.

    The per-pixel transform/inside-test/4-tap-blend sequence mirrors the
    C suite's warp loops; out-of-source pixels take ``fill`` exactly as
    the vectorized ``np.where`` does.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    matrix = np.asarray(matrix, dtype=np.float64)
    translation = np.asarray(translation, dtype=np.float64)
    if matrix.shape != (2, 2) or translation.shape != (2,):
        raise ValueError("need a 2x2 matrix and a length-2 translation")
    shape = tuple(out_shape) if out_shape is not None else image.shape
    rows, cols = image.shape
    out = np.empty(shape, dtype=np.float64)
    for rr in range(shape[0]):
        for cc in range(shape[1]):
            src_r = matrix[0, 0] * rr + matrix[0, 1] * cc + translation[0]
            src_c = matrix[1, 0] * rr + matrix[1, 1] * cc + translation[1]
            if not (0.0 <= src_r <= rows - 1 and 0.0 <= src_c <= cols - 1):
                out[rr, cc] = fill
                continue
            r0 = int(np.floor(src_r))
            c0 = int(np.floor(src_c))
            r1 = min(r0 + 1, rows - 1)
            c1 = min(c0 + 1, cols - 1)
            fr = src_r - r0
            fc = src_c - c0
            top = image[r0, c0] * (1.0 - fc) + image[r0, c1] * fc
            bottom = image[r1, c0] * (1.0 - fc) + image[r1, c1] * fc
            out[rr, cc] = top * (1.0 - fr) + bottom * fr
    return out


@register_kernel(
    "imgproc.warp_affine",
    paper_kernel="Transform (affine warp)",
    apps=("stitch", "tracking"),
    ref=_warp_affine_ref,
    work=_work_warp_affine,
)
def warp_affine(
    image: np.ndarray,
    matrix: np.ndarray,
    translation: np.ndarray,
    out_shape: Optional[Tuple[int, int]] = None,
    fill: float = 0.0,
) -> np.ndarray:
    """Resample ``image`` under ``src = A @ dst + t`` (inverse mapping).

    ``matrix`` (2x2) and ``translation`` (2,) map *output* (row, col)
    coordinates to source coordinates; out-of-source pixels get ``fill``.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    matrix = np.asarray(matrix, dtype=np.float64)
    translation = np.asarray(translation, dtype=np.float64)
    if matrix.shape != (2, 2) or translation.shape != (2,):
        raise ValueError("need a 2x2 matrix and a length-2 translation")
    shape = tuple(out_shape) if out_shape is not None else image.shape
    rr, cc = np.mgrid[: shape[0], : shape[1]].astype(np.float64)
    src_r = matrix[0, 0] * rr + matrix[0, 1] * cc + translation[0]
    src_c = matrix[1, 0] * rr + matrix[1, 1] * cc + translation[1]
    rows, cols = image.shape
    inside = (
        (src_r >= 0) & (src_r <= rows - 1) & (src_c >= 0)
        & (src_c <= cols - 1)
    )
    sampled = bilinear(image, src_r, src_c)
    return np.where(inside, sampled, fill)


def warp_translation(image: np.ndarray, dy: float, dx: float,
                     fill: float = 0.0) -> np.ndarray:
    """Shift an image by a (possibly fractional) ``(dy, dx)``.

    A feature at ``(r, c)`` moves to ``(r + dy, c + dx)`` in the output.
    """
    return warp_affine(
        image, np.eye(2), np.array([-dy, -dx]), fill=fill
    )


def warp_homography(
    image: np.ndarray,
    h: np.ndarray,
    out_shape: Optional[Tuple[int, int]] = None,
    fill: float = 0.0,
) -> np.ndarray:
    """Resample under a 3x3 homography mapping output to source coords.

    ``h`` acts on homogeneous ``(x, y, 1) = (col, row, 1)`` vectors, the
    convention of :func:`repro.stitch.ransac.apply_homography`.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    h = np.asarray(h, dtype=np.float64)
    if h.shape != (3, 3):
        raise ValueError("homography must be 3x3")
    shape = tuple(out_shape) if out_shape is not None else image.shape
    rr, cc = np.mgrid[: shape[0], : shape[1]].astype(np.float64)
    denom = h[2, 0] * cc + h[2, 1] * rr + h[2, 2]
    denom = np.where(np.abs(denom) < 1e-12, 1e-12, denom)
    src_x = (h[0, 0] * cc + h[0, 1] * rr + h[0, 2]) / denom
    src_y = (h[1, 0] * cc + h[1, 1] * rr + h[1, 2]) / denom
    rows, cols = image.shape
    inside = (
        (src_y >= 0) & (src_y <= rows - 1) & (src_x >= 0)
        & (src_x <= cols - 1)
    )
    sampled = bilinear(image, src_y, src_x)
    return np.where(inside, sampled, fill)


def rotation_matrix(angle: float) -> np.ndarray:
    """2x2 rotation by ``angle`` radians in (row, col) coordinates."""
    c, s = float(np.cos(angle)), float(np.sin(angle))
    return np.array([[c, -s], [s, c]])


def warp_rotate(image: np.ndarray, angle: float,
                fill: float = 0.0) -> np.ndarray:
    """Rotate about the image centre by ``angle`` radians."""
    image = np.asarray(image, dtype=np.float64)
    rows, cols = image.shape
    centre = np.array([(rows - 1) / 2.0, (cols - 1) / 2.0])
    inverse = rotation_matrix(-angle)
    translation = centre - inverse @ centre
    return warp_affine(image, inverse, translation, fill=fill)
