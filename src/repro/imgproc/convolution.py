"""Convolution kernels: 1-D row/column passes and full 2-D correlation.

The disparity benchmark's "Filtering" kernel is implemented — exactly as
the paper notes — as two 1-D passes "for better cache locality".  We keep
that structure: :func:`convolve_rows` / :func:`convolve_cols` are the
separable passes and :func:`convolve_separable` composes them.
:func:`convolve2d` provides the general (non-separable) case used by the
stitch and texture benchmarks.

All functions use correlation orientation (no kernel flip) with replicate
borders and return an array of the input's shape, matching the C suite's
``imageBlur``-family helpers.

Each public entry point is a dual-backend kernel (see
:mod:`repro.core.backend`): the vectorized bodies below are the ``fast``
path, and the ``_*_ref`` loop nests mirror the original C suite's
per-pixel/per-tap loops statement for statement.
"""

from __future__ import annotations

import numpy as np

from ..core.backend import register_kernel
from ..core.metrics import FLOAT_BYTES, WorkEstimate
from .pad import pad


def _work_convolve(image: np.ndarray, kernel: np.ndarray,
                      mode: str = "replicate") -> WorkEstimate:
    """Correlation work model: 2 flops per (pixel, tap), streaming I/O.

    Shared by the 1-D passes and the full 2-D kernel — ``taps`` is the
    total tap count either way.
    """
    pixels = int(np.prod(np.shape(image)))
    taps = int(np.prod(np.shape(kernel)))
    return WorkEstimate(
        flops=2.0 * taps * pixels,
        traffic_bytes=FLOAT_BYTES * (2.0 * pixels + taps),
    )


def _check_kernel_1d(kernel: np.ndarray) -> np.ndarray:
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.ndim != 1 or kernel.size == 0:
        raise ValueError("1-D kernel required")
    if kernel.size % 2 == 0:
        raise ValueError("kernel length must be odd for centred filtering")
    return kernel


def _convolve_rows_ref(image: np.ndarray, kernel: np.ndarray,
                       mode: str = "replicate") -> np.ndarray:
    """Loop-faithful row correlation (the C suite's per-pixel tap loop)."""
    kernel = _check_kernel_1d(kernel)
    half = kernel.size // 2
    image = np.asarray(image, dtype=np.float64)
    padded = pad(image, half, mode)
    rows, cols = image.shape
    out = np.zeros((rows, cols), dtype=np.float64)
    for r in range(rows):
        for c in range(cols):
            acc = 0.0
            for tap in range(kernel.size):
                acc += kernel[tap] * padded[half + r, c + tap]
            out[r, c] = acc
    return out


@register_kernel(
    "imgproc.convolve_rows",
    paper_kernel="Filter (1-D row pass)",
    apps=("disparity", "tracking", "sift", "stitch", "texture"),
    ref=_convolve_rows_ref,
    work=_work_convolve,
)
def convolve_rows(image: np.ndarray, kernel: np.ndarray,
                  mode: str = "replicate") -> np.ndarray:
    """Correlate every row of ``image`` with a 1-D ``kernel``."""
    kernel = _check_kernel_1d(kernel)
    half = kernel.size // 2
    padded = pad(np.asarray(image, dtype=np.float64), half, mode)
    rows, cols = image.shape
    out = np.zeros((rows, cols), dtype=np.float64)
    for tap, weight in enumerate(kernel):
        out += weight * padded[half : half + rows, tap : tap + cols]
    return out


def _convolve_cols_ref(image: np.ndarray, kernel: np.ndarray,
                       mode: str = "replicate") -> np.ndarray:
    """Loop-faithful column correlation (per-pixel tap loop)."""
    kernel = _check_kernel_1d(kernel)
    half = kernel.size // 2
    image = np.asarray(image, dtype=np.float64)
    padded = pad(image, half, mode)
    rows, cols = image.shape
    out = np.zeros((rows, cols), dtype=np.float64)
    for r in range(rows):
        for c in range(cols):
            acc = 0.0
            for tap in range(kernel.size):
                acc += kernel[tap] * padded[r + tap, half + c]
            out[r, c] = acc
    return out


@register_kernel(
    "imgproc.convolve_cols",
    paper_kernel="Filter (1-D column pass)",
    apps=("disparity", "tracking", "sift", "stitch", "texture"),
    ref=_convolve_cols_ref,
    work=_work_convolve,
)
def convolve_cols(image: np.ndarray, kernel: np.ndarray,
                  mode: str = "replicate") -> np.ndarray:
    """Correlate every column of ``image`` with a 1-D ``kernel``."""
    kernel = _check_kernel_1d(kernel)
    half = kernel.size // 2
    padded = pad(np.asarray(image, dtype=np.float64), half, mode)
    rows, cols = image.shape
    out = np.zeros((rows, cols), dtype=np.float64)
    for tap, weight in enumerate(kernel):
        out += weight * padded[tap : tap + rows, half : half + cols]
    return out


def convolve_separable(image: np.ndarray, row_kernel: np.ndarray,
                       col_kernel: np.ndarray,
                       mode: str = "replicate") -> np.ndarray:
    """Two-pass separable filtering: columns then rows.

    Equivalent to ``convolve2d(image, outer(col_kernel, row_kernel))`` up
    to border effects, at O(k) instead of O(k^2) cost per pixel.
    """
    return convolve_rows(convolve_cols(image, col_kernel, mode), row_kernel, mode)


def _convolve2d_ref(image: np.ndarray, kernel: np.ndarray,
                    mode: str = "replicate") -> np.ndarray:
    """Loop-faithful 2-D correlation: four nested loops, zero taps kept.

    Mirrors the fast path's accumulation order (kernel row-major) so the
    two backends agree to round-off.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.ndim != 2 or kernel.size == 0:
        raise ValueError("2-D kernel required")
    krows, kcols = kernel.shape
    if krows % 2 == 0 or kcols % 2 == 0:
        raise ValueError("kernel sides must be odd for centred filtering")
    half_r, half_c = krows // 2, kcols // 2
    half = max(half_r, half_c)
    image = np.asarray(image, dtype=np.float64)
    padded = pad(image, half, mode)
    rows, cols = image.shape
    out = np.zeros((rows, cols), dtype=np.float64)
    row_base = half - half_r
    col_base = half - half_c
    for r in range(rows):
        for c in range(cols):
            acc = 0.0
            for kr in range(krows):
                for kc in range(kcols):
                    weight = kernel[kr, kc]
                    if weight == 0.0:
                        continue
                    acc += weight * padded[row_base + kr + r, col_base + kc + c]
            out[r, c] = acc
    return out


@register_kernel(
    "imgproc.convolve2d",
    paper_kernel="Convolution",
    apps=("stitch", "texture"),
    ref=_convolve2d_ref,
    work=_work_convolve,
)
def convolve2d(image: np.ndarray, kernel: np.ndarray,
               mode: str = "replicate") -> np.ndarray:
    """Full 2-D correlation with an odd-sized kernel."""
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.ndim != 2 or kernel.size == 0:
        raise ValueError("2-D kernel required")
    krows, kcols = kernel.shape
    if krows % 2 == 0 or kcols % 2 == 0:
        raise ValueError("kernel sides must be odd for centred filtering")
    half_r, half_c = krows // 2, kcols // 2
    half = max(half_r, half_c)
    padded = pad(np.asarray(image, dtype=np.float64), half, mode)
    rows, cols = image.shape
    out = np.zeros((rows, cols), dtype=np.float64)
    row_base = half - half_r
    col_base = half - half_c
    for kr in range(krows):
        for kc in range(kcols):
            weight = kernel[kr, kc]
            if weight == 0.0:
                continue
            out += weight * padded[
                row_base + kr : row_base + kr + rows,
                col_base + kc : col_base + kc + cols,
            ]
    return out
