"""PGM image I/O — run the suite on real images.

The original SD-VBS distributes its inputs as image files; this module
reads and writes portable graymaps (both the ASCII ``P2`` and binary
``P5`` flavours, 8- or 16-bit) so any grayscale image can be fed to the
applications.  Values are normalized to ``float64`` in [0, 1] on read and
quantized back on write.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Union

import numpy as np

PathLike = Union[str, Path]


def _tokenize_header(data: bytes) -> tuple:
    """Parse magic, width, height, maxval; return them plus the offset of
    the pixel payload."""
    # Strip comments while scanning tokens.
    tokens = []
    position = 0
    while len(tokens) < 4:
        match = re.match(
            rb"\s*(#[^\n]*\n|\S+)", data[position:]
        )
        if match is None:
            raise ValueError("truncated PGM header")
        token = match.group(1)
        position += match.end()
        if not token.startswith(b"#"):
            tokens.append(token)
    magic = tokens[0].decode("ascii")
    if magic not in ("P2", "P5"):
        raise ValueError(f"not a PGM file (magic {magic!r})")
    width = int(tokens[1])
    height = int(tokens[2])
    maxval = int(tokens[3])
    if width < 1 or height < 1:
        raise ValueError("invalid PGM dimensions")
    if not 0 < maxval < 65536:
        raise ValueError(f"invalid maxval {maxval}")
    return magic, width, height, maxval, position


def read_pgm(path: PathLike) -> np.ndarray:
    """Read a PGM file into a float64 image in [0, 1]."""
    data = Path(path).read_bytes()
    magic, width, height, maxval, offset = _tokenize_header(data)
    count = width * height
    if magic == "P2":
        values = np.array(
            data[offset:].split()[:count], dtype=np.float64
        )
        if values.size != count:
            raise ValueError("truncated P2 pixel data")
    else:
        # P5: exactly one whitespace byte separates the maxval token from
        # the payload — skip it.
        offset += 1
        dtype = np.dtype(">u2") if maxval > 255 else np.dtype("u1")
        payload = data[offset : offset + count * dtype.itemsize]
        if len(payload) != count * dtype.itemsize:
            raise ValueError("truncated P5 pixel data")
        values = np.frombuffer(payload, dtype=dtype).astype(np.float64)
    return (values / maxval).reshape(height, width)


def write_pgm(path: PathLike, image: np.ndarray, maxval: int = 255,
              binary: bool = True) -> None:
    """Write a [0, 1] float image as a PGM file.

    Values outside [0, 1] are clipped.  ``maxval`` up to 65535 selects
    16-bit output.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if not 0 < maxval < 65536:
        raise ValueError(f"invalid maxval {maxval}")
    quantized = np.rint(np.clip(image, 0.0, 1.0) * maxval).astype(np.int64)
    height, width = image.shape
    if binary:
        header = f"P5\n{width} {height}\n{maxval}\n".encode("ascii")
        dtype = np.dtype(">u2") if maxval > 255 else np.dtype("u1")
        Path(path).write_bytes(header + quantized.astype(dtype).tobytes())
    else:
        lines = [f"P2\n{width} {height}\n{maxval}"]
        for row in quantized:
            lines.append(" ".join(str(int(v)) for v in row))
        Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")
