"""Sampling and resampling: bilinear lookup, resize, upsample, downsample.

SIFT's preprocessing upsamples the input 2x with (anti-aliased) linear
interpolation — the paper calls this out as a data/compute-intensive
"Interpolation" kernel — and the pyramid code downsamples by 2.  KLT
tracking samples patches at sub-pixel positions with :func:`bilinear`.
"""

from __future__ import annotations

import numpy as np

from ..core.backend import register_kernel
from ..core.metrics import FLOAT_BYTES, WorkEstimate


def _work_bilinear(image: np.ndarray, rows: np.ndarray,
                   cols: np.ndarray) -> WorkEstimate:
    """Per query: clamp/floor/fraction setup plus the 9-op 4-tap blend
    (~16 flops); traffic is 4 taps + 2 coordinates in, 1 sample out."""
    queries = int(np.prod(np.broadcast_shapes(np.shape(rows),
                                              np.shape(cols)))) or 1
    return WorkEstimate(
        flops=16.0 * queries,
        traffic_bytes=FLOAT_BYTES * 7.0 * queries,
    )


def _bilinear_ref(image: np.ndarray, rows: np.ndarray,
                  cols: np.ndarray) -> np.ndarray:
    """Loop-faithful bilinear sampling: one scalar 4-tap blend per query.

    Same clamp/floor/blend sequence as the vectorized path, evaluated
    per position in a plain Python loop (the C suite's per-sample code).
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    height, width = image.shape
    r_in = np.asarray(rows, dtype=np.float64)
    c_in = np.asarray(cols, dtype=np.float64)
    shape = np.broadcast(r_in, c_in).shape
    r_flat = np.broadcast_to(r_in, shape).ravel()
    c_flat = np.broadcast_to(c_in, shape).ravel()
    out = np.empty(r_flat.size, dtype=np.float64)
    for i in range(r_flat.size):
        r = min(max(float(r_flat[i]), 0.0), height - 1.0)
        c = min(max(float(c_flat[i]), 0.0), width - 1.0)
        r0 = int(np.floor(r))
        c0 = int(np.floor(c))
        r1 = min(r0 + 1, height - 1)
        c1 = min(c0 + 1, width - 1)
        fr = r - r0
        fc = c - c0
        top = image[r0, c0] * (1.0 - fc) + image[r0, c1] * fc
        bottom = image[r1, c0] * (1.0 - fc) + image[r1, c1] * fc
        out[i] = top * (1.0 - fr) + bottom * fr
    return out.reshape(shape)


@register_kernel(
    "imgproc.bilinear",
    paper_kernel="Interpolation",
    apps=("sift", "tracking", "stitch"),
    ref=_bilinear_ref,
    work=_work_bilinear,
)
def bilinear(image: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Sample ``image`` at fractional ``(rows, cols)`` positions.

    Positions are clamped to the valid square, so out-of-range queries
    return edge values (replicate semantics, matching the filters).
    ``rows``/``cols`` may be scalars or arrays of any matching shape.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    height, width = image.shape
    r = np.clip(np.asarray(rows, dtype=np.float64), 0.0, height - 1.0)
    c = np.clip(np.asarray(cols, dtype=np.float64), 0.0, width - 1.0)
    r0 = np.floor(r).astype(np.int64)
    c0 = np.floor(c).astype(np.int64)
    r1 = np.minimum(r0 + 1, height - 1)
    c1 = np.minimum(c0 + 1, width - 1)
    fr = r - r0
    fc = c - c0
    top = image[r0, c0] * (1.0 - fc) + image[r0, c1] * fc
    bottom = image[r1, c0] * (1.0 - fc) + image[r1, c1] * fc
    return top * (1.0 - fr) + bottom * fr


def resize(image: np.ndarray, out_rows: int, out_cols: int) -> np.ndarray:
    """Bilinear resize to ``(out_rows, out_cols)``.

    Sample positions align the corner pixels of source and destination
    (endpoint mapping), matching the suite's MATLAB-style ``imresize``.
    """
    if out_rows < 1 or out_cols < 1:
        raise ValueError("output dimensions must be positive")
    image = np.asarray(image, dtype=np.float64)
    in_rows, in_cols = image.shape
    rr = (
        np.linspace(0.0, in_rows - 1.0, out_rows)
        if out_rows > 1
        else np.array([(in_rows - 1) / 2.0])
    )
    cc = (
        np.linspace(0.0, in_cols - 1.0, out_cols)
        if out_cols > 1
        else np.array([(in_cols - 1) / 2.0])
    )
    grid_r, grid_c = np.meshgrid(rr, cc, indexing="ij")
    return bilinear(image, grid_r, grid_c)


def upsample2(image: np.ndarray) -> np.ndarray:
    """Double both dimensions with bilinear interpolation (SIFT preprocess)."""
    rows, cols = np.asarray(image).shape
    return resize(image, rows * 2, cols * 2)


def downsample2(image: np.ndarray) -> np.ndarray:
    """Halve both dimensions by taking every other sample.

    Callers are expected to low-pass first (see
    :func:`repro.imgproc.pyramid.gaussian_pyramid`), as the suite does.
    """
    image = np.asarray(image, dtype=np.float64)
    return image[::2, ::2].copy()
