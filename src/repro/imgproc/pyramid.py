"""Image pyramids: Gaussian stacks, multi-level pyramids, DoG pyramids.

KLT tracking uses a coarse-to-fine Gaussian pyramid; SIFT builds per-octave
Gaussian stacks and differences adjacent levels into the DoG pyramid whose
3-D extrema are keypoint candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .filters import gaussian_blur
from .interpolate import downsample2


def gaussian_pyramid(image: np.ndarray, levels: int,
                     sigma: float = 1.0) -> List[np.ndarray]:
    """Coarse-to-fine pyramid: level 0 is the input, each next level is
    blurred then decimated by 2.

    Raises if ``levels`` would shrink the image below 2 pixels a side.
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    image = np.asarray(image, dtype=np.float64)
    pyramid = [image.copy()]
    current = image
    for _ in range(levels - 1):
        if min(current.shape) < 4:
            raise ValueError(
                f"image of shape {image.shape} cannot support {levels} levels"
            )
        current = downsample2(gaussian_blur(current, sigma))
        pyramid.append(current)
    return pyramid


@dataclass(frozen=True)
class ScaleSpace:
    """One octave's Gaussian stack plus its DoG differences.

    ``gaussians[i]`` has blur ``sigma0 * k**i``; ``dogs[i]`` is
    ``gaussians[i+1] - gaussians[i]``.
    """

    octave: int
    sigmas: List[float]
    gaussians: List[np.ndarray]
    dogs: List[np.ndarray]


def scale_space(image: np.ndarray, n_octaves: int, scales_per_octave: int = 3,
                sigma0: float = 1.6) -> List[ScaleSpace]:
    """Build SIFT's Gaussian/DoG scale space.

    Each octave holds ``scales_per_octave + 3`` Gaussian images (so that
    ``scales_per_octave`` DoG triples have both neighbours), with blur
    ratio ``k = 2 ** (1 / scales_per_octave)``.  The next octave starts
    from the Gaussian image with twice the base blur, decimated by 2.
    """
    if n_octaves < 1:
        raise ValueError("need at least one octave")
    if scales_per_octave < 1:
        raise ValueError("need at least one scale per octave")
    k = 2.0 ** (1.0 / scales_per_octave)
    n_gauss = scales_per_octave + 3
    current = np.asarray(image, dtype=np.float64)
    octaves: List[ScaleSpace] = []
    for octave in range(n_octaves):
        if min(current.shape) < 8:
            break
        sigmas = [sigma0 * (k**i) for i in range(n_gauss)]
        gaussians = [gaussian_blur(current, sigmas[0])]
        for i in range(1, n_gauss):
            # Incremental blur: sigma_extra takes level i-1 to level i.
            sigma_extra = (sigmas[i] ** 2 - sigmas[i - 1] ** 2) ** 0.5
            gaussians.append(gaussian_blur(gaussians[i - 1], sigma_extra))
        dogs = [gaussians[i + 1] - gaussians[i] for i in range(n_gauss - 1)]
        octaves.append(
            ScaleSpace(octave=octave, sigmas=sigmas, gaussians=gaussians,
                       dogs=dogs)
        )
        current = downsample2(gaussians[scales_per_octave])
    if not octaves:
        raise ValueError(f"image of shape {image.shape} too small for SIFT")
    return octaves
