"""Image gradients: central difference and Sobel operators.

These back the "Gradient" kernel of the tracking benchmark, the Harris
corner measure in stitch, and SIFT's orientation assignment.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.backend import register_kernel
from ..core.metrics import FLOAT_BYTES, WorkEstimate
from .convolution import convolve_rows, convolve_cols, convolve_separable


def _work_gradient(image: np.ndarray,
                   mode: str = "replicate") -> WorkEstimate:
    """Central differences: 3 flops per pixel per direction; read the
    image once, write two gradient fields."""
    pixels = int(np.prod(np.shape(image)))
    return WorkEstimate(
        flops=6.0 * pixels,
        traffic_bytes=FLOAT_BYTES * 3.0 * pixels,
    )

#: Central-difference derivative taps (f(x+1) - f(x-1)) / 2.
CENTRAL_DIFF = np.array([-0.5, 0.0, 0.5])

#: Sobel smoothing taps used perpendicular to the derivative direction.
SOBEL_SMOOTH = np.array([1.0, 2.0, 1.0]) / 4.0


def gradient_x(image: np.ndarray, mode: str = "replicate") -> np.ndarray:
    """Horizontal central-difference derivative, d/dx (columns)."""
    return convolve_rows(image, CENTRAL_DIFF, mode)


def gradient_y(image: np.ndarray, mode: str = "replicate") -> np.ndarray:
    """Vertical central-difference derivative, d/dy (rows)."""
    return convolve_cols(image, CENTRAL_DIFF, mode)


def _gradient_ref(image: np.ndarray,
                  mode: str = "replicate") -> Tuple[np.ndarray, np.ndarray]:
    """Loop-faithful central differences (the tracking code's pixel loop).

    Only the suite's replicate border is supported; the neighbour index
    clamp implements the same edge handling as the padded fast path.
    """
    if mode != "replicate":
        return gradient_x(image, mode), gradient_y(image, mode)
    image = np.asarray(image, dtype=np.float64)
    rows, cols = image.shape
    gx = np.empty((rows, cols), dtype=np.float64)
    gy = np.empty((rows, cols), dtype=np.float64)
    for r in range(rows):
        for c in range(cols):
            left = image[r, c - 1 if c > 0 else 0]
            right = image[r, c + 1 if c < cols - 1 else cols - 1]
            gx[r, c] = 0.5 * right - 0.5 * left
            up = image[r - 1 if r > 0 else 0, c]
            down = image[r + 1 if r < rows - 1 else rows - 1, c]
            gy[r, c] = 0.5 * down - 0.5 * up
    return gx, gy


@register_kernel(
    "imgproc.gradient",
    paper_kernel="Gradient",
    apps=("tracking", "sift", "stitch"),
    ref=_gradient_ref,
    work=_work_gradient,
)
def gradient(image: np.ndarray,
             mode: str = "replicate") -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(gx, gy)`` central-difference gradients."""
    return gradient_x(image, mode), gradient_y(image, mode)


def sobel(image: np.ndarray,
          mode: str = "replicate") -> Tuple[np.ndarray, np.ndarray]:
    """Sobel gradients ``(gx, gy)``: derivative taps + cross smoothing."""
    gx = convolve_separable(image, 2.0 * CENTRAL_DIFF, SOBEL_SMOOTH, mode)
    gy = convolve_separable(image, SOBEL_SMOOTH, 2.0 * CENTRAL_DIFF, mode)
    return gx, gy


def gradient_magnitude_angle(
    image: np.ndarray, mode: str = "replicate"
) -> Tuple[np.ndarray, np.ndarray]:
    """Gradient magnitude and angle (radians in (-pi, pi])."""
    gx, gy = gradient(image, mode)
    magnitude = np.hypot(gx, gy)
    angle = np.arctan2(gy, gx)
    return magnitude, angle
