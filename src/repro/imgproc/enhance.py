"""Image enhancement kernels: median filtering and histogram equalization.

Standard preprocessing companions to the suite's filters: the median
filter removes impulse noise before matching/feature extraction, and
histogram equalization spreads intensity for detectors sensitive to
contrast (both widely used ahead of the suite's pipelines).
"""

from __future__ import annotations

import numpy as np

from .pad import pad


def median_filter(image: np.ndarray, size: int = 3,
                  mode: str = "replicate") -> np.ndarray:
    """Median of each ``size x size`` neighbourhood (odd ``size``)."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if size < 1 or size % 2 == 0:
        raise ValueError("size must be a positive odd integer")
    if size == 1:
        return image.copy()
    half = size // 2
    padded = pad(image, half, mode)
    rows, cols = image.shape
    stack = np.empty((size * size, rows, cols))
    layer = 0
    for dr in range(size):
        for dc in range(size):
            stack[layer] = padded[dr : dr + rows, dc : dc + cols]
            layer += 1
    return np.median(stack, axis=0)


def histogram_equalize(image: np.ndarray, bins: int = 256) -> np.ndarray:
    """Global histogram equalization onto [0, 1].

    Maps intensities through the empirical CDF so the output histogram is
    (approximately) uniform; constant images map to zeros.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if bins < 2:
        raise ValueError("bins must be >= 2")
    lo, hi = image.min(), image.max()
    if hi <= lo:
        return np.zeros_like(image)
    normalized = (image - lo) / (hi - lo)
    histogram, edges = np.histogram(normalized, bins=bins, range=(0.0, 1.0))
    cdf = histogram.cumsum().astype(np.float64)
    cdf /= cdf[-1]
    indices = np.minimum(
        (normalized * bins).astype(np.int64), bins - 1
    )
    return cdf[indices]


def add_salt_pepper(image: np.ndarray, fraction: float = 0.05,
                    seed: int = 0) -> np.ndarray:
    """Corrupt a copy of ``image`` with salt-and-pepper impulses.

    Test/demo helper for the median filter: ``fraction`` of pixels are
    set to 0 or 1 at random.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    image = np.asarray(image, dtype=np.float64)
    rng = np.random.default_rng(seed)
    out = image.copy()
    n = int(fraction * image.size)
    flat_indices = rng.choice(image.size, n, replace=False)
    values = rng.random(n) < 0.5
    out.ravel()[flat_indices] = values.astype(np.float64)
    return out
