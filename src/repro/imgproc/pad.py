"""Border padding helpers shared by the filtering kernels.

SD-VBS's clean-C kernels handle borders by replication; these helpers make
that policy explicit and reusable.  Supported modes: ``replicate`` (clamp to
edge, the suite's default), ``reflect`` (mirror without repeating the edge
sample), and ``zero``.
"""

from __future__ import annotations

import numpy as np

_MODES = ("replicate", "reflect", "zero")


def _check(image: np.ndarray, amount: int) -> None:
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if amount < 0:
        raise ValueError("pad amount must be non-negative")


def pad(image: np.ndarray, amount: int, mode: str = "replicate") -> np.ndarray:
    """Pad ``image`` by ``amount`` pixels on every side."""
    _check(image, amount)
    if mode not in _MODES:
        raise ValueError(f"unknown pad mode {mode!r}; expected one of {_MODES}")
    if amount == 0:
        return image.copy()
    if mode == "zero":
        return np.pad(image, amount, mode="constant")
    if mode == "replicate":
        return np.pad(image, amount, mode="edge")
    rows, cols = image.shape
    if amount >= rows or amount >= cols:
        raise ValueError(
            f"reflect pad of {amount} exceeds image extent {image.shape}"
        )
    return np.pad(image, amount, mode="reflect")


def unpad(image: np.ndarray, amount: int) -> np.ndarray:
    """Remove ``amount`` pixels of border on every side (inverse of pad)."""
    _check(image, amount)
    if amount == 0:
        return image.copy()
    if 2 * amount >= image.shape[0] or 2 * amount >= image.shape[1]:
        raise ValueError(
            f"cannot unpad {amount} from image of shape {image.shape}"
        )
    return image[amount:-amount, amount:-amount].copy()
