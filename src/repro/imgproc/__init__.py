"""Shared image-processing kernels (the suite's common substrate)."""

from .color import gray_to_rgb, normalize, rgb_to_gray, standardize
from .convolution import (
    convolve2d,
    convolve_cols,
    convolve_rows,
    convolve_separable,
)
from .enhance import add_salt_pepper, histogram_equalize, median_filter
from .filters import (
    binomial_blur,
    binomial_kernel,
    difference_of_gaussians,
    gaussian_blur,
    gaussian_kernel,
)
from .gradient import (
    gradient,
    gradient_magnitude_angle,
    gradient_x,
    gradient_y,
    sobel,
)
from .integral import (
    integral_image,
    rect_sum,
    squared_integral_image,
    window_means,
    window_sums,
    window_variances,
)
from .interpolate import bilinear, downsample2, resize, upsample2
from .io import read_pgm, write_pgm
from .pad import pad, unpad
from .pyramid import ScaleSpace, gaussian_pyramid, scale_space
from .warp import (
    rotation_matrix,
    warp_affine,
    warp_homography,
    warp_rotate,
    warp_translation,
)

__all__ = [
    "ScaleSpace",
    "add_salt_pepper",
    "bilinear",
    "binomial_blur",
    "binomial_kernel",
    "convolve2d",
    "convolve_cols",
    "convolve_rows",
    "convolve_separable",
    "difference_of_gaussians",
    "downsample2",
    "gaussian_blur",
    "gaussian_kernel",
    "gaussian_pyramid",
    "gradient",
    "histogram_equalize",
    "gradient_magnitude_angle",
    "gradient_x",
    "gradient_y",
    "gray_to_rgb",
    "integral_image",
    "median_filter",
    "normalize",
    "pad",
    "read_pgm",
    "rect_sum",
    "resize",
    "rgb_to_gray",
    "rotation_matrix",
    "scale_space",
    "sobel",
    "squared_integral_image",
    "standardize",
    "unpad",
    "upsample2",
    "window_means",
    "window_sums",
    "window_variances",
]
