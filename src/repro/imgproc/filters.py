"""Smoothing filters: Gaussian and binomial kernels plus blur wrappers.

These back the "Gaussian Filter" kernel of the tracking benchmark and the
scale-space construction of SIFT.  Kernels are generated analytically and
normalized to unit sum, so blurring preserves mean intensity.
"""

from __future__ import annotations

import math

import numpy as np

from .convolution import convolve_separable


def gaussian_kernel(sigma: float, radius: int = 0) -> np.ndarray:
    """A normalized 1-D Gaussian of standard deviation ``sigma``.

    ``radius=0`` selects the conventional 3-sigma support
    (``radius = ceil(3 * sigma)``).
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if radius == 0:
        radius = max(1, math.ceil(3.0 * sigma))
    taps = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-(taps * taps) / (2.0 * sigma * sigma))
    return kernel / kernel.sum()


def binomial_kernel(order: int) -> np.ndarray:
    """Normalized binomial kernel of the given odd ``order`` (e.g. 1-4-6-4-1).

    The SD-VBS tracking code smooths with small integer binomial filters;
    order 5 reproduces its [1 4 6 4 1]/16 kernel.
    """
    if order < 1 or order % 2 == 0:
        raise ValueError("order must be a positive odd integer")
    kernel = np.array([1.0])
    for _ in range(order - 1):
        kernel = np.convolve(kernel, [1.0, 1.0])
    return kernel / kernel.sum()


def gaussian_blur(image: np.ndarray, sigma: float,
                  radius: int = 0, mode: str = "replicate") -> np.ndarray:
    """Separable Gaussian blur (two 1-D passes)."""
    kernel = gaussian_kernel(sigma, radius)
    return convolve_separable(image, kernel, kernel, mode)


def binomial_blur(image: np.ndarray, order: int = 5,
                  mode: str = "replicate") -> np.ndarray:
    """Separable binomial blur, the tracking benchmark's smoother."""
    kernel = binomial_kernel(order)
    return convolve_separable(image, kernel, kernel, mode)


def difference_of_gaussians(image: np.ndarray, sigma_fine: float,
                            sigma_coarse: float) -> np.ndarray:
    """DoG band-pass response used by SIFT's scale-space."""
    if sigma_coarse <= sigma_fine:
        raise ValueError("sigma_coarse must exceed sigma_fine")
    return gaussian_blur(image, sigma_coarse) - gaussian_blur(image, sigma_fine)
