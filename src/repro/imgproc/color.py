"""Color conversion and intensity normalization helpers.

The suite's inputs arrive as RGB bitmaps and are converted to grayscale
before processing; synthetic inputs here are already gray, but the
conversion kernels are part of the benchmark surface and used by tests.
"""

from __future__ import annotations

import numpy as np

#: ITU-R BT.601 luma weights, the suite's RGB->gray formula.
LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])


def rgb_to_gray(image: np.ndarray) -> np.ndarray:
    """Convert an ``(rows, cols, 3)`` RGB image to grayscale luma."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected (rows, cols, 3) RGB, got {image.shape}")
    return image @ LUMA_WEIGHTS


def gray_to_rgb(image: np.ndarray) -> np.ndarray:
    """Replicate a grayscale image across three channels."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    return np.repeat(image[:, :, None], 3, axis=2)


def normalize(image: np.ndarray) -> np.ndarray:
    """Affinely rescale to [0, 1]; a constant image maps to all zeros."""
    image = np.asarray(image, dtype=np.float64)
    low = image.min()
    span = image.max() - low
    if span == 0.0:
        return np.zeros_like(image)
    return (image - low) / span


def standardize(image: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance rescale; constant images map to zeros."""
    image = np.asarray(image, dtype=np.float64)
    centered = image - image.mean()
    std = centered.std()
    if std == 0.0:
        return centered
    return centered / std
