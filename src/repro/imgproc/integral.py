"""Integral images and windowed area sums.

"Integral Image" and "Area Sum" are among the most shared kernels of the
suite (disparity, tracking, SIFT, face detection all use them).  The
integral image ``I`` of ``f`` satisfies ``I[r, c] = sum f[:r, :c]``; any
axis-aligned rectangle sum then costs four lookups, which is what makes
Viola-Jones feature evaluation and disparity window aggregation cheap.

The serial double-scan used here is exactly the suite's loop structure; its
ideal-dataflow parallelism is nevertheless enormous because each scan
reassociates into a parallel prefix (see :class:`repro.core.dataflow.Scan`).
"""

from __future__ import annotations

import numpy as np

from ..core.backend import register_kernel
from ..core.metrics import FLOAT_BYTES, WorkEstimate


def _work_integral_image(image: np.ndarray) -> WorkEstimate:
    """Two prefix-sum scans: 2 adds per pixel; the output table carries
    one extra zero row and column."""
    shape = np.shape(image)
    pixels = int(np.prod(shape))
    out_elements = float((shape[0] + 1) * (shape[1] + 1)) if len(shape) == 2 \
        else float(pixels)
    return WorkEstimate(
        flops=2.0 * pixels,
        traffic_bytes=FLOAT_BYTES * (pixels + out_elements),
    )


def _integral_image_ref(image: np.ndarray) -> np.ndarray:
    """Loop-faithful double scan: column prefix sums, then row prefix sums.

    The serial accumulation chains are exactly the C suite's structure;
    the scan order (columns first) mirrors the fast path's
    ``cumsum(axis=0).cumsum(axis=1)`` so the two backends differ only by
    reassociated additions.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    rows, cols = image.shape
    out = np.zeros((rows + 1, cols + 1), dtype=np.float64)
    for c in range(cols):
        acc = 0.0
        for r in range(rows):
            acc += image[r, c]
            out[r + 1, c + 1] = acc
    for r in range(rows):
        acc = 0.0
        for c in range(cols):
            acc += out[r + 1, c + 1]
            out[r + 1, c + 1] = acc
    return out


@register_kernel(
    "imgproc.integral_image",
    paper_kernel="Integral Image",
    apps=("disparity", "tracking", "sift", "face"),
    ref=_integral_image_ref,
    rtol=1e-9,
    atol=1e-9,
    work=_work_integral_image,
)
def integral_image(image: np.ndarray) -> np.ndarray:
    """Summed-area table with a leading zero row/column.

    Output shape is ``(rows + 1, cols + 1)`` so that
    ``rect_sum(ii, r0, c0, r1, c1)`` needs no boundary special cases.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    rows, cols = image.shape
    out = np.zeros((rows + 1, cols + 1), dtype=np.float64)
    out[1:, 1:] = image.cumsum(axis=0).cumsum(axis=1)
    return out


def squared_integral_image(image: np.ndarray) -> np.ndarray:
    """Summed-area table of the squared image (for windowed variance)."""
    image = np.asarray(image, dtype=np.float64)
    return integral_image(image * image)


def rect_sum(ii: np.ndarray, r0: int, c0: int, r1: int, c1: int) -> float:
    """Sum of ``image[r0:r1, c0:c1]`` via four integral-image lookups."""
    if not (0 <= r0 <= r1 < ii.shape[0] and 0 <= c0 <= c1 < ii.shape[1]):
        raise IndexError(
            f"rectangle ({r0},{c0})-({r1},{c1}) outside table {ii.shape}"
        )
    return float(ii[r1, c1] - ii[r0, c1] - ii[r1, c0] + ii[r0, c0])


def window_sums(image: np.ndarray, win: int) -> np.ndarray:
    """Sum of every ``win x win`` window, via the integral image.

    Returns shape ``(rows - win + 1, cols - win + 1)``; this is the
    disparity benchmark's "Area Sum" aggregation over SSD maps.
    """
    if win < 1:
        raise ValueError("window size must be positive")
    rows, cols = np.asarray(image).shape
    if win > rows or win > cols:
        raise ValueError(f"window {win} exceeds image shape {(rows, cols)}")
    ii = integral_image(image)
    return (
        ii[win:, win:]
        - ii[:-win, win:]
        - ii[win:, :-win]
        + ii[:-win, :-win]
    )


def window_means(image: np.ndarray, win: int) -> np.ndarray:
    """Mean of every ``win x win`` window."""
    return window_sums(image, win) / float(win * win)


def window_variances(image: np.ndarray, win: int) -> np.ndarray:
    """Population variance of every ``win x win`` window (clipped at 0)."""
    mean = window_means(image, win)
    mean_sq = window_sums(np.asarray(image, dtype=np.float64) ** 2, win) / float(
        win * win
    )
    return np.maximum(0.0, mean_sq - mean * mean)
