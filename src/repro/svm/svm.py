"""Support vector machine: training ("Learning") and classification.

Combines the Gram-matrix construction ("Matrix Ops" kernel), the
interior-point dual solve ("Conjugate Matrix" kernel inside
:mod:`repro.svm.ipm`), and support-vector extraction + bias fitting
(the "Learning" kernel) into the benchmark's two phases: train and
classify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from .ipm import IpmResult, solve_svm_dual
from .kernels import KernelFn, gram_matrix, polynomial_kernel


@dataclass
class SupportVectorMachine:
    """Two-class kernel SVM trained by an interior-point method.

    Labels are -1/+1.  After :meth:`fit`, ``support_vectors`` holds the
    training points with non-negligible dual weight and :meth:`decision`
    evaluates ``sum_i a_i y_i k(x_i, x) + b``.
    """

    kernel: KernelFn = field(default_factory=polynomial_kernel)
    c: float = 1.0
    support_threshold: float = 1e-5
    max_iterations: int = 150

    def __post_init__(self) -> None:
        self._fitted = False
        self.support_vectors: np.ndarray = np.empty((0, 0))
        self.support_alphas: np.ndarray = np.empty(0)
        self.support_labels: np.ndarray = np.empty(0)
        self.bias: float = 0.0
        self.last_result: Optional[IpmResult] = None

    # ------------------------------------------------------------------

    def fit(self, points: np.ndarray, labels: np.ndarray,
            profiler: Optional[KernelProfiler] = None) -> "SupportVectorMachine":
        """Train on ``(n, d)`` points with -1/+1 ``labels``."""
        profiler = ensure_profiler(profiler)
        points = np.asarray(points, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if points.ndim != 2 or labels.ndim != 1:
            raise ValueError("expected (n, d) points and (n,) labels")
        if points.shape[0] != labels.size:
            raise ValueError("points/labels length mismatch")
        if points.shape[0] < 2:
            raise ValueError("need at least two training points")
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise ValueError("labels must be -1/+1")
        if len(np.unique(labels)) < 2:
            raise ValueError("need both classes present")
        with profiler.kernel("MatrixOps"):
            gram = gram_matrix(self.kernel, points)
            signed = gram * np.outer(labels, labels)
        with profiler.kernel("Learning"):
            result = solve_svm_dual(
                signed, labels, c=self.c,
                max_iterations=self.max_iterations, profiler=profiler,
            )
            alpha = result.alpha
            mask = alpha > self.support_threshold * self.c
            self.support_vectors = points[mask]
            self.support_alphas = alpha[mask]
            self.support_labels = labels[mask]
            self.last_result = result
            self._fit_bias(gram, alpha, labels)
        self._fitted = True
        return self

    def _fit_bias(self, gram: np.ndarray, alpha: np.ndarray,
                  labels: np.ndarray) -> None:
        """Average KKT-implied bias over on-margin support vectors."""
        margin = (alpha > self.support_threshold * self.c) & (
            alpha < (1.0 - self.support_threshold) * self.c
        )
        if not margin.any():
            margin = alpha > self.support_threshold * self.c
        if not margin.any():
            self.bias = 0.0
            return
        raw = gram @ (alpha * labels)
        self.bias = float(np.mean(labels[margin] - raw[margin]))

    # ------------------------------------------------------------------

    def decision(self, points: np.ndarray,
                 profiler: Optional[KernelProfiler] = None) -> np.ndarray:
        """Signed decision values for ``(m, d)`` query points."""
        if not self._fitted:
            raise RuntimeError("fit() must be called before decision()")
        profiler = ensure_profiler(profiler)
        points = np.asarray(points, dtype=np.float64)
        with profiler.kernel("MatrixOps"):
            cross = self.kernel(points, self.support_vectors)
            return cross @ (self.support_alphas * self.support_labels) + self.bias

    def predict(self, points: np.ndarray,
                profiler: Optional[KernelProfiler] = None) -> np.ndarray:
        """-1/+1 class predictions."""
        values = self.decision(points, profiler)
        return np.where(values >= 0.0, 1.0, -1.0)

    def accuracy(self, points: np.ndarray, labels: np.ndarray,
                 profiler: Optional[KernelProfiler] = None) -> float:
        """Fraction of points classified correctly."""
        predictions = self.predict(points, profiler)
        return float(np.mean(predictions == np.asarray(labels, dtype=np.float64)))
