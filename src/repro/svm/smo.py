"""Sequential Minimal Optimization — the baseline SVM trainer.

SD-VBS trains its SVM with an interior-point method; SMO (Platt, 1998)
is the classic alternative that solves the same dual QP two variables at
a time in closed form.  Provided as a comparison baseline: the ablation
bench measures both solvers on identical problems (IPM converges in few
heavy iterations; SMO in many cheap ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler


@dataclass
class SmoResult:
    """Solution of the dual QP via SMO."""

    alpha: np.ndarray
    bias: float
    iterations: int
    converged: bool
    objective_trace: List[float]


def solve_svm_dual_smo(
    gram: np.ndarray,
    labels: np.ndarray,
    c: float = 1.0,
    tol: float = 1e-4,
    max_passes: int = 20,
    max_iterations: int = 20_000,
    seed: int = 0,
    profiler: Optional[KernelProfiler] = None,
) -> SmoResult:
    """Solve the soft-margin dual by simplified SMO.

    ``gram`` is the *plain* kernel Gram matrix (not label-signed);
    ``labels`` in {-1, +1}.  Iterates pairs violating the KKT conditions
    until a full sweep finds none (repeated ``max_passes`` times).
    """
    profiler = ensure_profiler(profiler)
    gram = np.asarray(gram, dtype=np.float64)
    y = np.asarray(labels, dtype=np.float64)
    n = y.size
    if gram.shape != (n, n):
        raise ValueError("gram/labels shape mismatch")
    if c <= 0:
        raise ValueError("C must be positive")
    if not np.all(np.isin(y, (-1.0, 1.0))):
        raise ValueError("labels must be -1/+1")
    rng = np.random.default_rng(seed)
    alpha = np.zeros(n)
    bias = 0.0
    passes = 0
    iterations = 0
    objective_trace: List[float] = []

    def decision(index: int) -> float:
        return float((alpha * y) @ gram[index]) + bias

    def objective() -> float:
        signed = alpha * y
        return float(0.5 * signed @ gram @ signed - alpha.sum())

    with profiler.kernel("Learning"):
        while passes < max_passes and iterations < max_iterations:
            changed = 0
            for i in range(n):
                error_i = decision(i) - y[i]
                if not (
                    (y[i] * error_i < -tol and alpha[i] < c)
                    or (y[i] * error_i > tol and alpha[i] > 0)
                ):
                    continue
                j = int(rng.integers(0, n - 1))
                if j >= i:
                    j += 1
                error_j = decision(j) - y[j]
                alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                if y[i] != y[j]:
                    low = max(0.0, alpha[j] - alpha[i])
                    high = min(c, c + alpha[j] - alpha[i])
                else:
                    low = max(0.0, alpha[i] + alpha[j] - c)
                    high = min(c, alpha[i] + alpha[j])
                if high - low < 1e-12:
                    continue
                eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                if eta >= 0:
                    continue
                alpha[j] -= y[j] * (error_i - error_j) / eta
                alpha[j] = min(high, max(low, alpha[j]))
                if abs(alpha[j] - alpha_j_old) < 1e-7:
                    alpha[j] = alpha_j_old
                    continue
                alpha[i] += y[i] * y[j] * (alpha_j_old - alpha[j])
                b1 = (
                    bias - error_i
                    - y[i] * (alpha[i] - alpha_i_old) * gram[i, i]
                    - y[j] * (alpha[j] - alpha_j_old) * gram[i, j]
                )
                b2 = (
                    bias - error_j
                    - y[i] * (alpha[i] - alpha_i_old) * gram[i, j]
                    - y[j] * (alpha[j] - alpha_j_old) * gram[j, j]
                )
                if 0 < alpha[i] < c:
                    bias = b1
                elif 0 < alpha[j] < c:
                    bias = b2
                else:
                    bias = 0.5 * (b1 + b2)
                changed += 1
                iterations += 1
            objective_trace.append(objective())
            passes = passes + 1 if changed == 0 else 0
    return SmoResult(
        alpha=alpha,
        bias=bias,
        iterations=iterations,
        converged=passes >= max_passes,
        objective_trace=objective_trace,
    )
