"""One-vs-rest multiclass classification on top of the binary SVM.

The benchmark's SVM is two-class; vision pipelines (the paper cites
"pattern recognition" applications) usually need k classes.  One-vs-rest
trains one binary machine per class and predicts by the largest decision
value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from .kernels import KernelFn, polynomial_kernel
from .svm import SupportVectorMachine


@dataclass
class OneVsRestSVM:
    """k-class classifier from one binary SVM per class."""

    kernel_factory: Callable[[], KernelFn] = polynomial_kernel
    c: float = 1.0
    machines: Dict[object, SupportVectorMachine] = field(
        default_factory=dict
    )

    def fit(self, points: np.ndarray, labels: np.ndarray,
            profiler: Optional[KernelProfiler] = None) -> "OneVsRestSVM":
        """Train one machine per distinct label."""
        profiler = ensure_profiler(profiler)
        points = np.asarray(points, dtype=np.float64)
        labels = np.asarray(labels)
        classes = np.unique(labels)
        if classes.size < 2:
            raise ValueError("need at least two classes")
        self.machines = {}
        for cls in classes:
            binary = np.where(labels == cls, 1.0, -1.0)
            machine = SupportVectorMachine(
                kernel=self.kernel_factory(), c=self.c
            )
            machine.fit(points, binary, profiler=profiler)
            self.machines[cls] = machine
        return self

    @property
    def classes(self) -> List[object]:
        return list(self.machines)

    def decision_matrix(self, points: np.ndarray,
                        profiler: Optional[KernelProfiler] = None
                        ) -> np.ndarray:
        """(n_points, n_classes) decision values, class order as
        :attr:`classes`."""
        if not self.machines:
            raise RuntimeError("fit() must be called first")
        profiler = ensure_profiler(profiler)
        columns = [
            machine.decision(points, profiler=profiler)
            for machine in self.machines.values()
        ]
        return np.stack(columns, axis=1)

    def predict(self, points: np.ndarray,
                profiler: Optional[KernelProfiler] = None) -> np.ndarray:
        """Labels with the largest one-vs-rest decision value."""
        values = self.decision_matrix(points, profiler)
        classes = np.asarray(self.classes)
        return classes[np.argmax(values, axis=1)]

    def accuracy(self, points: np.ndarray, labels: np.ndarray,
                 profiler: Optional[KernelProfiler] = None) -> float:
        predictions = self.predict(points, profiler)
        return float(np.mean(predictions == np.asarray(labels)))


def multiclass_blobs(n_classes: int = 3, per_class: int = 30, dim: int = 4,
                     separation: float = 3.0, seed: int = 0):
    """Synthetic k-class Gaussian blobs: ``(points, labels)``."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((n_classes, dim))
    centers *= separation / np.maximum(
        np.linalg.norm(centers, axis=1, keepdims=True), 1e-12
    )
    points = []
    labels = []
    for cls in range(n_classes):
        points.append(rng.standard_normal((per_class, dim)) + centers[cls])
        labels.extend([cls] * per_class)
    return np.vstack(points), np.array(labels)
