"""Benchmark wiring for the SVM application."""

from __future__ import annotations

from typing import List, Mapping

from ..core.dataflow import Chain, Op, ParMap, Reduce, Seq
from ..core.inputs import svm_dataset
from ..core.profiler import KernelProfiler
from ..core.registry import Benchmark
from ..core.types import (
    Characteristic,
    ConcentrationArea,
    InputSize,
    KernelInfo,
    ParallelismClass,
    ParallelismEstimate,
)
from .kernels import polynomial_kernel
from .svm import SupportVectorMachine

DIM = 16
DEGREE = 3

KERNELS = (
    KernelInfo("MatrixOps", "Gram matrix and decision-function products",
               ParallelismClass.DLP),
    KernelInfo("Learning", "interior-point training iterations",
               ParallelismClass.ILP),
    KernelInfo("ConjugateMatrix", "CG solves of the KKT Newton system",
               ParallelismClass.TLP),
)


def setup(size: InputSize, variant: int):
    """Build the synthetic two-class data set (untimed)."""
    return svm_dataset(size, variant, dim=DIM)


def run(data, profiler: KernelProfiler) -> Mapping[str, object]:
    """Train on a prepared data set and classify the held-out split."""
    machine = SupportVectorMachine(
        kernel=polynomial_kernel(degree=DEGREE, gamma=1.0 / DIM), c=1.0
    )
    machine.fit(data.train_x, data.train_y, profiler=profiler)
    return {
        "train_accuracy": machine.accuracy(data.train_x, data.train_y,
                                           profiler=profiler),
        "test_accuracy": machine.accuracy(data.test_x, data.test_y,
                                          profiler=profiler),
        "support_vectors": int(machine.support_alphas.size),
        "ipm_iterations": machine.last_result.trace.iterations
        if machine.last_result else 0,
    }


def parallelism_models(size: InputSize) -> List[ParallelismEstimate]:
    """Work/span models for the SVM kernels.

    Table IV order for SVM: Matrix Ops (1000x, DLP) > Learning (851x, ILP)
    > Conjugate Matrix (502x, TLP).  Gram entries are fully independent;
    the learning loop serializes across interior-point iterations but each
    iteration's vector work is wide; CG serializes across its own
    iterations with parallel matvecs inside.
    """
    n = 40 * size.relative + 40
    gram = ParMap(n * n, Seq(ParMap(DIM, Op(2)), Reduce(DIM), Op(DEGREE)))
    ipm_iters = 20
    # Learning: each interior-point iteration refreshes residuals and
    # multipliers across the full n x n KKT structure; entries are
    # independent within an iteration, iterations chain serially.
    learning = Chain(
        ipm_iters,
        Seq(ParMap(n * n, Op(3)), Reduce(n)),
    )
    cg_iters = 30
    conjugate = Chain(
        ipm_iters,
        Chain(cg_iters, Seq(ParMap(n, ParMap(n, Op(2))), Reduce(n))),
    )
    estimates = []
    for name, model in (
        ("MatrixOps", gram),
        ("Learning", learning),
        ("ConjugateMatrix", conjugate),
    ):
        info = next(k for k in KERNELS if k.name == name)
        estimates.append(
            ParallelismEstimate(
                benchmark="svm",
                kernel=name,
                parallelism=model.parallelism,
                parallelism_class=info.parallelism_class,
                work=model.work,
                span=model.span,
            )
        )
    return estimates


BENCHMARK = Benchmark(
    name="SVM",
    slug="svm",
    area=ConcentrationArea.IMAGE_UNDERSTANDING,
    description="Supervised learning method for classification",
    characteristic=Characteristic.COMPUTE_INTENSIVE,
    application_domain="Machine learning",
    kernels=KERNELS,
    setup=setup,
    run=run,
    parallelism=parallelism_models,
)
