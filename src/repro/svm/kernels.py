"""SVM kernel functions and Gram-matrix construction ("Matrix Ops").

The SD-VBS SVM uses polynomial kernels; linear and RBF variants are
provided for the examples and tests.  Gram construction is the
benchmark's dominant matrix workload.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

KernelFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def linear_kernel() -> KernelFn:
    """k(x, z) = <x, z>."""

    def apply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.asarray(a) @ np.asarray(b).T

    return apply


def polynomial_kernel(degree: int = 3, coef0: float = 1.0,
                      gamma: float = 1.0) -> KernelFn:
    """k(x, z) = (gamma <x, z> + coef0)^degree — the suite's kernel."""
    if degree < 1:
        raise ValueError("degree must be >= 1")

    def apply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (gamma * (np.asarray(a) @ np.asarray(b).T) + coef0) ** degree

    return apply


def rbf_kernel(gamma: float = 0.5) -> KernelFn:
    """k(x, z) = exp(-gamma |x - z|^2)."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")

    def apply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        sq = (
            (a * a).sum(axis=1)[:, None]
            + (b * b).sum(axis=1)[None, :]
            - 2.0 * (a @ b.T)
        )
        return np.exp(-gamma * np.maximum(sq, 0.0))

    return apply


def gram_matrix(kernel: KernelFn, points: np.ndarray) -> np.ndarray:
    """Symmetric Gram matrix K[i, j] = k(x_i, x_j)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"expected (n, d) points, got shape {points.shape}")
    gram = kernel(points, points)
    return 0.5 * (gram + gram.T)  # symmetrize against round-off
