"""SVM kernel functions and Gram-matrix construction ("Matrix Ops").

The SD-VBS SVM uses polynomial kernels; linear and RBF variants are
provided for the examples and tests.  Gram construction is the
benchmark's dominant matrix workload.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.backend import register_kernel
from ..core.metrics import FLOAT_BYTES, WorkEstimate

KernelFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _work_gram_matrix(kernel: KernelFn, points: np.ndarray) -> WorkEstimate:
    """Gram construction: 2 flops per (pair, dimension) inner product
    plus the symmetrization pass; read the points, write the n x n
    matrix twice (construction + symmetrize)."""
    n, dim = np.shape(points)
    pairs = float(n) * float(n)
    return WorkEstimate(
        flops=2.0 * pairs * dim + 2.0 * pairs,
        traffic_bytes=FLOAT_BYTES * (float(n) * dim + 2.0 * pairs),
    )


def linear_kernel() -> KernelFn:
    """k(x, z) = <x, z>."""

    def apply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.asarray(a) @ np.asarray(b).T

    return apply


def polynomial_kernel(degree: int = 3, coef0: float = 1.0,
                      gamma: float = 1.0) -> KernelFn:
    """k(x, z) = (gamma <x, z> + coef0)^degree — the suite's kernel."""
    if degree < 1:
        raise ValueError("degree must be >= 1")

    def apply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (gamma * (np.asarray(a) @ np.asarray(b).T) + coef0) ** degree

    return apply


def rbf_kernel(gamma: float = 0.5) -> KernelFn:
    """k(x, z) = exp(-gamma |x - z|^2)."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")

    def apply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        sq = (
            (a * a).sum(axis=1)[:, None]
            + (b * b).sum(axis=1)[None, :]
            - 2.0 * (a @ b.T)
        )
        return np.exp(-gamma * np.maximum(sq, 0.0))

    return apply


def _gram_matrix_ref(kernel: KernelFn, points: np.ndarray) -> np.ndarray:
    """Loop-faithful Gram construction: one kernel evaluation per pair.

    The pair loops mirror the C suite's matrix-ops nest; each entry is
    the kernel applied to a single (x_i, x_j) row pair, so the inner
    product never goes through the blocked full-matrix BLAS path.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"expected (n, d) points, got shape {points.shape}")
    n = points.shape[0]
    gram = np.empty((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(n):
            gram[i, j] = np.asarray(
                kernel(points[i : i + 1], points[j : j + 1])
            ).item()
    return 0.5 * (gram + gram.T)  # symmetrize against round-off


@register_kernel(
    "svm.kernel_matrix",
    paper_kernel="Matrix Ops (Gram construction)",
    apps=("svm",),
    ref=_gram_matrix_ref,
    rtol=1e-8,
    atol=1e-10,
    work=_work_gram_matrix,
)
def gram_matrix(kernel: KernelFn, points: np.ndarray) -> np.ndarray:
    """Symmetric Gram matrix K[i, j] = k(x_i, x_j).

    The whole-matrix kernel evaluation runs one blocked BLAS product;
    its summation order differs from the reference's per-pair inner
    products, hence the reduction-sized tolerance.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"expected (n, d) points, got shape {points.shape}")
    gram = kernel(points, points)
    return 0.5 * (gram + gram.T)  # symmetrize against round-off
