"""SVM: interior-point training and kernel classification."""

from .benchmark import BENCHMARK, DEGREE, DIM, KERNELS
from .ipm import IpmResult, IpmTrace, solve_svm_dual
from .kernels import (
    KernelFn,
    gram_matrix,
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
)
from .multiclass import OneVsRestSVM, multiclass_blobs
from .smo import SmoResult, solve_svm_dual_smo
from .svm import SupportVectorMachine

__all__ = [
    "BENCHMARK",
    "DEGREE",
    "DIM",
    "KERNELS",
    "IpmResult",
    "IpmTrace",
    "KernelFn",
    "OneVsRestSVM",
    "SmoResult",
    "SupportVectorMachine",
    "gram_matrix",
    "linear_kernel",
    "multiclass_blobs",
    "polynomial_kernel",
    "rbf_kernel",
    "solve_svm_dual",
    "solve_svm_dual_smo",
]
