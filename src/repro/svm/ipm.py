"""Primal-dual interior-point solver for the SVM dual QP.

The SD-VBS SVM trains with "the iterative interior point method to find
the solution of the Karush-Kuhn-Tucker conditions of the primal and dual
problems".  The dual problem solved here is the standard soft-margin QP

    minimize   (1/2) a^T Q a - 1^T a
    subject to y^T a = 0,   0 <= a <= C

with ``Q = (y y^T) * K``.  Each iteration forms the perturbed KKT system,
eliminates the bound multipliers, and solves the reduced Newton system by
conjugate gradients (the benchmark's "Conjugate Matrix" kernel) with a
block elimination for the single equality multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.profiler import KernelProfiler, ensure_profiler
from ..linalg.lstsq import conjugate_gradient


@dataclass
class IpmTrace:
    """Per-iteration diagnostics of the interior-point solve."""

    duality_gaps: List[float]
    residual_norms: List[float]

    @property
    def iterations(self) -> int:
        return len(self.duality_gaps)


@dataclass
class IpmResult:
    """Solution of the dual QP."""

    alpha: np.ndarray
    equality_multiplier: float
    trace: IpmTrace
    converged: bool


def solve_svm_dual(
    q_matrix: np.ndarray,
    labels: np.ndarray,
    c: float = 1.0,
    tol: float = 1e-6,
    max_iterations: int = 150,
    profiler: Optional[KernelProfiler] = None,
) -> IpmResult:
    """Solve the SVM dual QP by a primal-dual interior-point method.

    ``q_matrix`` is the label-signed Gram matrix ``(y y^T) * K`` (must be
    symmetric positive semidefinite); ``labels`` in {-1, +1}; ``c`` the
    box bound.  Returns the optimal ``alpha`` and the equality multiplier
    (which equals the decision-function bias up to sign).
    """
    profiler = ensure_profiler(profiler)
    q_matrix = np.asarray(q_matrix, dtype=np.float64)
    y = np.asarray(labels, dtype=np.float64)
    n = y.size
    if q_matrix.shape != (n, n):
        raise ValueError(f"Q of shape {q_matrix.shape} mismatches {n} labels")
    if c <= 0:
        raise ValueError("C must be positive")
    if not np.all(np.isin(y, (-1.0, 1.0))):
        raise ValueError("labels must be -1/+1")
    # Strictly interior start.
    alpha = np.full(n, 0.5 * c)
    # Project onto y^T a = 0 while staying interior.
    alpha -= y * (y @ alpha) / n
    alpha = np.clip(alpha, 0.1 * c, 0.9 * c)
    lam = 0.0
    lower = np.full(n, 0.1 * c)  # multiplier for a >= 0
    upper = np.full(n, 0.1 * c)  # multiplier for a <= C
    gaps: List[float] = []
    residuals: List[float] = []
    converged = False
    for _iteration in range(max_iterations):
        grad = q_matrix @ alpha - 1.0 + lam * y
        slack_low = alpha
        slack_up = c - alpha
        mu = (lower @ slack_low + upper @ slack_up) / (2.0 * n)
        gaps.append(float(mu))
        primal_res = float(abs(y @ alpha))
        dual_res = float(np.linalg.norm(grad - lower + upper))
        residuals.append(dual_res)
        if mu < tol and primal_res < tol and dual_res < tol * (1.0 + n):
            converged = True
            break
        sigma = 0.2  # centering parameter
        target = sigma * mu
        # Eliminated diagonal: D = z_l / a + z_u / (C - a).
        diag = lower / slack_low + upper / slack_up
        rhs = (
            -grad
            + lower
            - upper
            + (target - lower * slack_low) / slack_low
            - (target - upper * slack_up) / slack_up
        )

        ridge = 1e-10 * max(1.0, float(np.abs(q_matrix).max()))

        def kkt_matvec(v: np.ndarray) -> np.ndarray:
            # Tiny ridge keeps CG safe against round-off indefiniteness.
            return q_matrix @ v + (diag + ridge) * v

        with profiler.kernel("ConjugateMatrix"):
            # Block-eliminate the equality constraint:
            #   [H y][da]   [rhs      ]        H = Q + D
            #   [y' 0][dl] = [-y^T a   ]
            h_inv_rhs = conjugate_gradient(kkt_matvec, rhs, tol=1e-8,
                                           max_iter=4 * n)
            h_inv_y = conjugate_gradient(kkt_matvec, y, tol=1e-8,
                                         max_iter=4 * n)
            denom = float(y @ h_inv_y)
            if abs(denom) < 1e-14:
                break
            d_lam = (float(y @ h_inv_rhs) + float(y @ alpha)) / denom
            d_alpha = h_inv_rhs - d_lam * h_inv_y
        d_lower = (target - lower * slack_low) / slack_low - (
            lower / slack_low
        ) * d_alpha
        d_upper = (target - upper * slack_up) / slack_up + (
            upper / slack_up
        ) * d_alpha
        # Fraction-to-boundary step length.
        step = 1.0
        for vec, dvec in (
            (slack_low, d_alpha),
            (slack_up, -d_alpha),
            (lower, d_lower),
            (upper, d_upper),
        ):
            negative = dvec < 0
            if negative.any():
                step = min(step, float(
                    (0.95 * -vec[negative] / dvec[negative]).min()
                ))
        step = max(1e-8, min(1.0, step))
        alpha = alpha + step * d_alpha
        lam = lam + step * d_lam
        lower = lower + step * d_lower
        upper = upper + step * d_upper
        floor = 1e-12
        alpha = np.clip(alpha, floor, c - floor)
        lower = np.maximum(lower, floor)
        upper = np.maximum(upper, floor)
    return IpmResult(
        alpha=alpha,
        equality_multiplier=float(lam),
        trace=IpmTrace(duality_gaps=gaps, residual_norms=residuals),
        converged=converged,
    )
