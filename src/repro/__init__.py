"""repro — a Python reproduction of SD-VBS, the San Diego Vision
Benchmark Suite (IISWC 2009).

Nine vision applications (disparity, tracking, segmentation, SIFT,
localization, SVM, face detection, stitch, texture synthesis) built from
shared image-processing and linear-algebra kernels, plus the
characterization harness that regenerates the paper's tables and figures:
per-kernel hotspot profiles (Figure 3), input-size scaling (Figure 2),
and critical-path parallelism estimates (Table IV).

Quick start::

    from repro import run_suite, render_figure3
    result = run_suite(["disparity"], variants=[0])
    print(render_figure3(result))
"""

from .core import (
    ALL_SIZES,
    AggregatedRun,
    Benchmark,
    BenchmarkRun,
    InputSize,
    KernelProfiler,
    RunStats,
    SuiteResult,
    TraceRecorder,
    TraceSpan,
    all_benchmarks,
    get_benchmark,
    run_benchmark,
    run_suite,
)
from .core.report import (
    render_figure2,
    render_figure3,
    render_suite_summary,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_SIZES",
    "AggregatedRun",
    "Benchmark",
    "BenchmarkRun",
    "InputSize",
    "KernelProfiler",
    "RunStats",
    "SuiteResult",
    "TraceRecorder",
    "TraceSpan",
    "__version__",
    "all_benchmarks",
    "get_benchmark",
    "render_figure2",
    "render_figure3",
    "render_suite_summary",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "run_benchmark",
    "run_suite",
]
