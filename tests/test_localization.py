"""Tests for the Robot Localization (MCL) application."""

import math

import numpy as np
import pytest

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import robot_world
from repro.localization import (
    BENCHMARK,
    MonteCarloLocalizer,
    default_particle_count,
    localize,
    position_error,
    raycast_batch,
)


def empty_room(side=20):
    grid = np.zeros((side, side), dtype=np.int8)
    grid[0, :] = grid[-1, :] = grid[:, 0] = grid[:, -1] = 1
    return grid


class TestRaycast:
    def test_distance_to_wall(self):
        grid = empty_room(20)
        # Ray pointing +x from (10, 10): wall at column 19.
        dist = raycast_batch(grid, np.array([10.0]), np.array([10.0]),
                             np.array([0.0]), max_range=30.0)
        assert dist[0] == pytest.approx(9.0, abs=0.3)

    def test_four_directions_symmetric(self):
        grid = empty_room(21)
        angles = np.array([0.0, math.pi / 2, math.pi, -math.pi / 2])
        dist = raycast_batch(grid, np.full(4, 10.5), np.full(4, 10.5),
                             angles, max_range=30.0)
        assert dist.std() < 0.3

    def test_blocked_by_obstacle(self):
        grid = empty_room(20)
        grid[10, 14] = 1
        dist = raycast_batch(grid, np.array([10.5]), np.array([10.5]),
                             np.array([0.0]), max_range=30.0)
        assert dist[0] < 4.0

    def test_max_range_cap(self):
        grid = np.zeros((50, 50), dtype=np.int8)  # no walls at all
        dist = raycast_batch(grid, np.array([25.0]), np.array([25.0]),
                             np.array([0.3]), max_range=5.0)
        assert dist[0] == pytest.approx(5.0, abs=0.3)


class TestParticleSet:
    def test_initial_particles_in_free_space(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=2)
        localizer = MonteCarloLocalizer(world=world, n_particles=100)
        p = localizer.particles
        assert p.size == 100
        assert (world.grid[p.y.astype(int), p.x.astype(int)] == 0).all()
        assert p.weights.sum() == pytest.approx(1.0)

    def test_effective_sample_size(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=2)
        localizer = MonteCarloLocalizer(world=world, n_particles=50)
        assert localizer.particles.effective_sample_size() == \
            pytest.approx(50.0)
        localizer.particles.weights = np.zeros(50)
        localizer.particles.weights[0] = 1.0
        assert localizer.particles.effective_sample_size() == \
            pytest.approx(1.0)

    def test_too_few_particles(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=2)
        with pytest.raises(ValueError):
            MonteCarloLocalizer(world=world, n_particles=1)


class TestUpdates:
    def test_motion_update_moves_particles(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=2)
        localizer = MonteCarloLocalizer(world=world, n_particles=100, seed=1)
        before = localizer.particles.x.copy()
        localizer.motion_update(0.0, 1.0)
        assert not np.allclose(localizer.particles.x, before)

    def test_measurement_update_normalizes(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=2)
        localizer = MonteCarloLocalizer(world=world, n_particles=100, seed=2)
        localizer.measurement_update(world.measurements[0])
        assert localizer.particles.weights.sum() == pytest.approx(1.0)
        assert (localizer.particles.weights >= 0).all()

    def test_measurement_prefers_true_pose(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=4)
        localizer = MonteCarloLocalizer(world=world, n_particles=64, seed=3)
        # Plant one particle at the true pose after step 0.
        x, y, theta = world.true_poses[0]
        localizer.particles.x[0] = x
        localizer.particles.y[0] = y
        localizer.particles.theta[0] = theta
        localizer.measurement_update(world.measurements[0])
        assert localizer.particles.weights[0] == \
            localizer.particles.weights.max()

    def test_resample_uniform_weights(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=2)
        localizer = MonteCarloLocalizer(world=world, n_particles=80, seed=4)
        localizer.particles.weights = np.zeros(80)
        localizer.particles.weights[7] = 1.0
        anchor_x = localizer.particles.x[7]
        localizer.resample()
        p = localizer.particles
        assert p.weights.std() == pytest.approx(0.0, abs=1e-12)
        # Most particles cluster near the surviving ancestor.
        assert np.median(np.abs(p.x - anchor_x)) < 1.0


class TestLocalize:
    def test_tracking_converges(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=16)
        estimates = localize(world, n_particles=150, mode="tracking")
        assert position_error(estimates, world.true_poses) < 0.8

    def test_global_converges(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=40)
        estimates = localize(world, mode="global")
        assert position_error(estimates, world.true_poses) < 2.0

    def test_unknown_mode(self):
        world = robot_world(InputSize.SQCIF, 0, n_steps=2)
        with pytest.raises(ValueError):
            localize(world, mode="teleport")

    def test_default_particle_count_scales(self):
        small = robot_world(InputSize.SQCIF, 0, n_steps=1)
        large = robot_world(InputSize.CIF, 0, n_steps=1)
        assert default_particle_count(large) > default_particle_count(small)

    def test_position_error_mismatch(self):
        with pytest.raises(ValueError):
            position_error([(0.0, 0.0, 0.0)], [])


class TestBenchmarkWiring:
    def test_run_and_kernels(self):
        workload = BENCHMARK.setup(InputSize.SQCIF, 0)
        profiler = KernelProfiler()
        with profiler.run():
            out = BENCHMARK.run(workload, profiler)
        assert out["tracking_error"] < 0.8
        assert out["global_error"] < 2.5
        assert "ParticleFilter" in profiler.kernel_seconds
        assert "Sampling" in profiler.kernel_seconds
        # The particle filter dominates, per the paper's hotspot split.
        assert profiler.kernel_seconds["ParticleFilter"] > \
            profiler.kernel_seconds["Sampling"]

    def test_parallelism_rows(self):
        rows = {r.kernel: r for r in BENCHMARK.parallelism(InputSize.SQCIF)}
        assert set(rows) == {"ParticleFilter", "Sampling"}
        assert rows["ParticleFilter"].parallelism > 1.0
