"""Unit tests for the kernel profiler."""

import pytest

from repro.core.profiler import KernelProfiler, NullProfiler, ensure_profiler


class FakeClock:
    """Deterministic clock: each call advances by a scripted step."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_total_time_accumulates():
    clock = FakeClock()
    profiler = KernelProfiler(clock=clock)
    profiler.start()
    clock.advance(2.0)
    assert profiler.stop() == pytest.approx(2.0)


def test_run_context_manager():
    clock = FakeClock()
    profiler = KernelProfiler(clock=clock)
    with profiler.run():
        clock.advance(1.5)
    assert profiler.total_seconds == pytest.approx(1.5)


def test_double_start_raises():
    profiler = KernelProfiler()
    profiler.start()
    with pytest.raises(RuntimeError):
        profiler.start()


def test_stop_without_start_raises():
    with pytest.raises(RuntimeError):
        KernelProfiler().stop()


def test_kernel_attribution():
    clock = FakeClock()
    profiler = KernelProfiler(clock=clock)
    with profiler.kernel("A"):
        clock.advance(3.0)
    assert profiler.kernel_seconds["A"] == pytest.approx(3.0)
    assert profiler.kernel_calls["A"] == 1


def test_nested_kernels_are_exclusive():
    clock = FakeClock()
    profiler = KernelProfiler(clock=clock)
    with profiler.kernel("outer"):
        clock.advance(1.0)
        with profiler.kernel("inner"):
            clock.advance(2.0)
        clock.advance(0.5)
    assert profiler.kernel_seconds["inner"] == pytest.approx(2.0)
    assert profiler.kernel_seconds["outer"] == pytest.approx(1.5)


def test_same_kernel_reentrant_merges():
    clock = FakeClock()
    profiler = KernelProfiler(clock=clock)
    with profiler.kernel("A"):
        clock.advance(1.0)
    with profiler.kernel("A"):
        clock.advance(2.0)
    assert profiler.kernel_seconds["A"] == pytest.approx(3.0)
    assert profiler.kernel_calls["A"] == 2


def test_nested_same_name_does_not_double_count():
    clock = FakeClock()
    profiler = KernelProfiler(clock=clock)
    with profiler.kernel("A"):
        clock.advance(1.0)
        with profiler.kernel("A"):
            clock.advance(2.0)
    # Total charged to A should equal wall time, not more.
    assert profiler.kernel_seconds["A"] == pytest.approx(3.0)


def test_attributed_never_exceeds_wall():
    clock = FakeClock()
    profiler = KernelProfiler(clock=clock)
    with profiler.run():
        with profiler.kernel("A"):
            clock.advance(1.0)
            with profiler.kernel("B"):
                clock.advance(1.0)
        clock.advance(0.5)
    assert profiler.attributed_seconds() <= profiler.total_seconds + 1e-12


def test_reset_clears_everything():
    clock = FakeClock()
    profiler = KernelProfiler(clock=clock)
    with profiler.run():
        with profiler.kernel("A"):
            clock.advance(1.0)
    profiler.reset()
    assert profiler.kernel_seconds == {}
    assert profiler.total_seconds == 0.0


def test_null_profiler_records_nothing():
    profiler = NullProfiler()
    with profiler.kernel("A"):
        pass
    profiler.start()
    assert profiler.stop() == 0.0
    assert profiler.kernel_seconds == {}


def test_ensure_profiler():
    assert isinstance(ensure_profiler(None), NullProfiler)
    real = KernelProfiler()
    assert ensure_profiler(real) is real


def test_three_level_nesting_subtracts_children_at_each_level():
    clock = FakeClock()
    profiler = KernelProfiler(clock=clock)
    with profiler.kernel("a"):
        clock.advance(1.0)
        with profiler.kernel("b"):
            clock.advance(2.0)
            with profiler.kernel("c"):
                clock.advance(4.0)
            clock.advance(0.25)
        clock.advance(0.5)
    assert profiler.kernel_seconds["c"] == pytest.approx(4.0)
    assert profiler.kernel_seconds["b"] == pytest.approx(2.25)
    assert profiler.kernel_seconds["a"] == pytest.approx(1.5)
    assert profiler.attributed_seconds() == pytest.approx(7.75)


def test_same_kernel_at_three_depths_sums_to_wall_time():
    clock = FakeClock()
    profiler = KernelProfiler(clock=clock)
    with profiler.kernel("A"):
        clock.advance(1.0)
        with profiler.kernel("A"):
            clock.advance(2.0)
            with profiler.kernel("A"):
                clock.advance(4.0)
    assert profiler.kernel_seconds["A"] == pytest.approx(7.0)
    assert profiler.kernel_calls["A"] == 3


def test_reset_clears_recorder_linkage_state():
    from repro.core.tracing import TraceRecorder

    clock = FakeClock()
    recorder = TraceRecorder()
    profiler = KernelProfiler(clock=clock, recorder=recorder)
    profiler.start()
    clock.advance(1.0)
    profiler.reset()
    # The interrupted app span was closed (flagged abandoned) so the
    # recorder's nesting stack stays clean for the next run.
    abandoned = [s for s in recorder.spans if s.attrs.get("abandoned")]
    assert len(abandoned) == 1
    with profiler.run():
        with profiler.kernel("A"):
            clock.advance(1.0)
    fresh = [s for s in recorder.spans if not s.attrs.get("abandoned")]
    assert sorted(s.name for s in fresh) == ["A", "app"]
    kernel = next(s for s in fresh if s.name == "A")
    app = next(s for s in fresh if s.name == "app")
    assert kernel.depth == 1 and kernel.parent == app.seq


def test_exception_inside_kernel_still_attributes():
    clock = FakeClock()
    profiler = KernelProfiler(clock=clock)
    with pytest.raises(ValueError):
        with profiler.kernel("A"):
            clock.advance(1.0)
            raise ValueError("boom")
    assert profiler.kernel_seconds["A"] == pytest.approx(1.0)
