"""Public-API quality gates: exports resolve, docstrings exist.

A release-grade library keeps its public surface documented and its
``__all__`` lists honest; these tests enforce both across every package
in the reproduction.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.imgproc",
    "repro.linalg",
    "repro.disparity",
    "repro.tracking",
    "repro.segmentation",
    "repro.sift",
    "repro.localization",
    "repro.svm",
    "repro.face",
    "repro.stitch",
    "repro.texture",
]


def all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_unique(package_name):
    package = importlib.import_module(package_name)
    exports = list(package.__all__)
    assert len(exports) == len(set(exports)), f"duplicates in {package_name}"


@pytest.mark.parametrize("module_name", all_modules())
def test_module_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", all_modules())
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(member) or inspect.isclass(member)):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-export; documented at its definition site
        if not inspect.getdoc(member):
            missing.append(name)
    assert not missing, f"{module_name}: undocumented public: {missing}"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_benchmark_registry_complete():
    from repro.core import all_benchmarks

    for bench in all_benchmarks():
        assert bench.run.__doc__
        assert bench.setup.__doc__
        if bench.parallelism is not None:
            assert bench.parallelism.__doc__
