"""Tests for the SVM application."""

import numpy as np
import pytest

from repro.core import InputSize, KernelProfiler
from repro.core.inputs import svm_dataset
from repro.svm import (
    BENCHMARK,
    SupportVectorMachine,
    gram_matrix,
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
    solve_svm_dual,
)


def toy_problem(n=40, dim=3, margin=2.0, seed=0):
    rng = np.random.default_rng(seed)
    labels = np.where(rng.random(n) < 0.5, -1.0, 1.0)
    direction = np.ones(dim) / np.sqrt(dim)
    points = rng.standard_normal((n, dim)) + np.outer(labels * margin,
                                                      direction)
    return points, labels


class TestKernels:
    def test_linear_is_dot(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 4.0]])
        assert linear_kernel()(a, b)[0, 0] == pytest.approx(11.0)

    def test_polynomial_expansion(self):
        k = polynomial_kernel(degree=2, coef0=1.0, gamma=1.0)
        a = np.array([[1.0, 0.0]])
        b = np.array([[1.0, 0.0]])
        assert k(a, b)[0, 0] == pytest.approx(4.0)  # (1*1 + 1)^2

    def test_rbf_diagonal_ones(self):
        pts = np.random.default_rng(0).random((5, 3))
        gram = gram_matrix(rbf_kernel(0.7), pts)
        assert np.allclose(np.diag(gram), 1.0)

    def test_rbf_decays(self):
        k = rbf_kernel(1.0)
        near = k(np.zeros((1, 2)), np.array([[0.1, 0.0]]))[0, 0]
        far = k(np.zeros((1, 2)), np.array([[3.0, 0.0]]))[0, 0]
        assert near > far

    def test_gram_symmetric_psd(self):
        pts = np.random.default_rng(1).standard_normal((10, 4))
        gram = gram_matrix(linear_kernel(), pts)
        assert np.allclose(gram, gram.T)
        assert np.linalg.eigvalsh(gram).min() > -1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            polynomial_kernel(degree=0)
        with pytest.raises(ValueError):
            rbf_kernel(gamma=0.0)
        with pytest.raises(ValueError):
            gram_matrix(linear_kernel(), np.ones(3))


class TestInteriorPoint:
    def test_constraints_satisfied(self):
        points, labels = toy_problem()
        q = gram_matrix(linear_kernel(), points) * np.outer(labels, labels)
        result = solve_svm_dual(q, labels, c=1.0)
        alpha = result.alpha
        assert abs(labels @ alpha) < 1e-6
        assert (alpha >= -1e-9).all()
        assert (alpha <= 1.0 + 1e-9).all()

    def test_duality_gap_shrinks(self):
        points, labels = toy_problem(seed=1)
        q = gram_matrix(linear_kernel(), points) * np.outer(labels, labels)
        result = solve_svm_dual(q, labels, c=1.0)
        gaps = result.trace.duality_gaps
        assert gaps[-1] < 0.01 * gaps[0]

    def test_near_optimal_objective(self):
        points, labels = toy_problem(n=30, seed=2)
        q = gram_matrix(linear_kernel(), points) * np.outer(labels, labels)
        result = solve_svm_dual(q, labels, c=1.0)

        def objective(a):
            return 0.5 * a @ q @ a - a.sum()

        # Long projected-gradient reference (approximate optimum).
        a = np.full(labels.size, 0.5)
        for _ in range(30000):
            a -= 0.0005 * (q @ a - 1.0)
            a -= labels * (labels @ a) / labels.size
            a = np.clip(a, 0.0, 1.0)
        assert objective(result.alpha) <= objective(a) + 0.05

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            solve_svm_dual(np.eye(3), np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            solve_svm_dual(np.eye(2), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            solve_svm_dual(np.eye(2), np.array([1.0, -1.0]), c=0.0)


class TestSupportVectorMachine:
    def test_separable_training_accuracy(self):
        points, labels = toy_problem(n=60, margin=2.5, seed=3)
        machine = SupportVectorMachine(kernel=linear_kernel(), c=10.0)
        machine.fit(points, labels)
        assert machine.accuracy(points, labels) >= 0.95

    def test_generalization(self):
        train_x, train_y = toy_problem(n=80, margin=2.0, seed=4)
        test_x, test_y = toy_problem(n=60, margin=2.0, seed=5)
        machine = SupportVectorMachine(kernel=linear_kernel(), c=1.0)
        machine.fit(train_x, train_y)
        assert machine.accuracy(test_x, test_y) > 0.85

    def test_polynomial_solves_xor(self):
        # XOR is not linearly separable; a degree-2 kernel handles it.
        points = np.array(
            [[1.0, 1.0], [-1.0, -1.0], [1.0, -1.0], [-1.0, 1.0]] * 6
        )
        points = points + np.random.default_rng(6).normal(0, 0.1,
                                                          points.shape)
        labels = np.array([1.0, 1.0, -1.0, -1.0] * 6)
        machine = SupportVectorMachine(
            kernel=polynomial_kernel(degree=2, gamma=1.0), c=10.0
        )
        machine.fit(points, labels)
        assert machine.accuracy(points, labels) >= 0.9

    def test_support_vectors_subset(self):
        points, labels = toy_problem(n=50, seed=7)
        machine = SupportVectorMachine(kernel=linear_kernel(), c=1.0)
        machine.fit(points, labels)
        assert 0 < machine.support_alphas.size <= 50

    def test_decision_before_fit_raises(self):
        machine = SupportVectorMachine()
        with pytest.raises(RuntimeError):
            machine.decision(np.ones((1, 3)))

    def test_input_validation(self):
        machine = SupportVectorMachine()
        with pytest.raises(ValueError):
            machine.fit(np.ones((4, 2)), np.array([1.0, 1.0, 1.0, 1.0]))
        with pytest.raises(ValueError):
            machine.fit(np.ones((2, 2)), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            machine.fit(np.ones((3, 2)), np.array([1.0, -1.0]))


class TestBenchmarkWiring:
    def test_run_and_kernels(self):
        workload = BENCHMARK.setup(InputSize.SQCIF, 0)
        profiler = KernelProfiler()
        with profiler.run():
            out = BENCHMARK.run(workload, profiler)
        assert out["train_accuracy"] > 0.9
        assert out["test_accuracy"] > 0.6
        assert out["support_vectors"] > 0
        for kernel in ("MatrixOps", "Learning", "ConjugateMatrix"):
            assert kernel in profiler.kernel_seconds

    def test_dataset_scales_with_size(self):
        small = svm_dataset(InputSize.SQCIF, 0)
        large = svm_dataset(InputSize.CIF, 0)
        assert large.train_x.shape[0] > small.train_x.shape[0]

    def test_parallelism_ordering(self):
        rows = {r.kernel: r for r in BENCHMARK.parallelism(InputSize.SQCIF)}
        # Table IV: MatrixOps (1000x) > Learning (851x) > Conjugate (502x)
        assert rows["MatrixOps"].parallelism > rows["Learning"].parallelism
        assert rows["Learning"].parallelism > \
            rows["ConjugateMatrix"].parallelism
